"""Ablation bench: (k-1)-core pruning as a preprocessing step.

Every k-clique lives in the (k-1)-core, so pruning is solution-
invariant for the score-driven solvers while shrinking sparse graphs —
a cheap win the paper's C++ implementation gets implicitly from its
ordering phase.
"""

import pytest

from repro import Graph
from repro.core.api import find_disjoint_cliques
from repro.graph.generators import barabasi_albert, planted_partition
from repro.graph.kcore import prune_for_cliques


@pytest.fixture(scope="module")
def core_periphery():
    """Dense community core plus a large tree-like BA periphery.

    The periphery (attachment 2) has core number <= 2, so pruning for
    k = 4 strips it entirely while the planted communities survive —
    the regime where core-pruning pays.
    """
    core = planted_partition(800, 20, 0.35, 0.002, seed=31)
    periphery = barabasi_albert(5000, 2, seed=32)
    offset = core.n
    edges = list(core.edges())
    edges += [(u + offset, v + offset) for u, v in periphery.edges()]
    # Sparse attachment of the periphery to the core.
    edges += [(i, offset + i) for i in range(0, 200, 5)]
    return Graph(core.n + periphery.n, edges)


def test_prune_cost(benchmark, core_periphery):
    pruned, mask = benchmark(prune_for_cliques, core_periphery, 4)
    benchmark.extra_info["kept_nodes"] = int(mask.sum())
    benchmark.extra_info["kept_edges"] = pruned.m
    assert pruned.m < core_periphery.m / 2


@pytest.mark.parametrize("pruned_first", (False, True), ids=("raw", "core-pruned"))
def test_lp_with_and_without_pruning(benchmark, core_periphery, pruned_first):
    if pruned_first:
        graph, _ = prune_for_cliques(core_periphery, 4)
    else:
        graph = core_periphery
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(graph, 4, "lp"), rounds=2, iterations=1
    )
    benchmark.extra_info["size"] = result.size


def test_pruning_is_solution_invariant(core_periphery):
    pruned, _ = prune_for_cliques(core_periphery, 4)
    assert (
        find_disjoint_cliques(core_periphery, 4, "lp").sorted_cliques()
        == find_disjoint_cliques(pruned, 4, "lp").sorted_cliques()
    )


def build_core_periphery(smoke: bool):
    """The fixture graph at runner scale: dense core + tree periphery."""
    if smoke:
        core = planted_partition(300, 10, 0.35, 0.004, seed=31)
        periphery = barabasi_albert(1500, 2, seed=32)
        attach = range(0, 100, 5)
    else:
        core = planted_partition(800, 20, 0.35, 0.002, seed=31)
        periphery = barabasi_albert(5000, 2, seed=32)
        attach = range(0, 200, 5)
    offset = core.n
    edges = list(core.edges())
    edges += [(u + offset, v + offset) for u, v in periphery.edges()]
    edges += [(i, offset + i) for i in attach]
    return Graph(core.n + periphery.n, edges)


def cells(smoke: bool = False) -> list:
    """Runner cells: (k-1)-core pruning payoff and solution invariance."""
    from repro.bench.runner import CellSpec, check, ratio

    def run() -> dict:
        graph = build_core_periphery(smoke)
        pruned, mask = prune_for_cliques(graph, 4)
        raw = find_disjoint_cliques(graph, 4, "lp")
        on_pruned = find_disjoint_cliques(pruned, 4, "lp")
        return {
            "nodes": graph.n,
            "edges": graph.m,
            "kept_nodes": int(mask.sum()),
            "kept_edges": pruned.m,
            "solution_size": raw.size,
            "gate": {
                "prune_edge_reduction": ratio(graph.m / max(pruned.m, 1)),
                "solution_invariant": check(
                    raw.sorted_cliques() == on_pruned.sorted_cliques()
                ),
            },
        }

    config = {"k": 4, "core_seed": 31, "periphery_seed": 32,
              "scale": "smoke" if smoke else "full"}
    return [CellSpec("kcore", run, config)]
