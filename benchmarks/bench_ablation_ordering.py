"""Ablation bench: node-ordering sensitivity of the basic framework.

Section IV-A argues that both ascending- and descending-degree
orderings have failure modes and motivates the score ordering. This
ablation times HG under each ordering and records the quality spread.
"""

import numpy as np
import pytest

from repro.core.basic import basic_framework
from repro.core.api import find_disjoint_cliques

ORDERINGS = ("id", "degree", "degeneracy")


@pytest.mark.parametrize("order", ORDERINGS)
def test_hg_ordering_runtime(benchmark, hst, order):
    result = benchmark(basic_framework, hst, 4, order)
    benchmark.extra_info["size"] = result.size


def test_descending_degree_ordering(fb):
    """The paper's cautionary ordering: largest degree first."""
    rank = np.argsort(np.argsort(-fb.degrees, kind="stable")).astype(np.int64)
    descending = basic_framework(fb, 4, order=rank)
    ascending = basic_framework(fb, 4, order="degree")
    lp = find_disjoint_cliques(fb, 4, "lp")
    # The score-driven LP must beat (or match) every HG ordering variant.
    assert lp.size >= max(descending.size, ascending.size)


def test_ordering_spread_is_real(fbp):
    """Different orderings genuinely change |S| on clustered graphs."""
    sizes = {o: basic_framework(fbp, 4, order=o).size for o in ORDERINGS}
    assert max(sizes.values()) >= min(sizes.values())


def cells(smoke: bool = False) -> list:
    """Runner cells: HG ordering sensitivity vs the score-driven LP."""
    from repro.bench.experiments import run_ablation_ordering
    from repro.bench.runner import CellSpec, check, quality

    names = ["FTB", "HST"] if smoke else None
    k = 4

    def run() -> dict:
        result = run_ablation_ordering(names, k)
        lp_total = 0
        lp_at_least = True
        for row in result.data.values():
            lp = row["lp"]
            lp_total += lp
            if lp < max(row[o] for o in ORDERINGS):
                lp_at_least = False
        return {
            "sizes": result.data,
            "gate": {
                "lp_at_least_best_hg": check(lp_at_least),
                "lp_size_total": quality(lp_total),
            },
            "artefact": result.text,
        }

    config = {"names": list(names) if names else "all", "k": k,
              "orderings": list(ORDERINGS)}
    return [CellSpec("ordering", run, config)]
