"""Ablation bench: parallel HeapInit (Algorithm 3 line 11).

The paper initialises the heap "for each node u in parallel" (64
threads). In CPython the fork-based pool pays a per-call cost that only
amortises on larger graphs; this ablation records the trade-off and
pins the correctness property (identical output at any worker count).
"""

import pytest

from repro.core.lightweight import lightweight


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_heapinit_workers(benchmark, fbp, workers):
    result = benchmark.pedantic(
        lightweight, args=(fbp, 4), kwargs={"workers": workers},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["size"] = result.size


def test_worker_count_is_output_invariant(fbp):
    base = lightweight(fbp, 4, workers=1).sorted_cliques()
    for workers in (2, 4):
        assert lightweight(fbp, 4, workers=workers).sorted_cliques() == base


def cells(smoke: bool = False) -> list:
    """Runner cells: parallel HeapInit trade-off + worker invariance."""
    import time

    from repro.bench.runner import CellSpec, check, ratio
    from repro.graph import datasets

    name = "HST" if smoke else "FBP"
    workers = 2 if smoke else 4

    def run() -> dict:
        graph = datasets.load(name)
        start = time.perf_counter()
        seq = lightweight(graph, 4, workers=1)
        t_seq = time.perf_counter() - start
        start = time.perf_counter()
        par = lightweight(graph, 4, workers=workers)
        t_par = time.perf_counter() - start
        return {
            "sequential_s": t_seq,
            "parallel_s": t_par,
            "solution_size": seq.size,
            "workers": workers,
            "gate": {
                "parallel_speedup": ratio(t_seq / max(t_par, 1e-9)),
                "worker_invariant": check(
                    seq.sorted_cliques() == par.sorted_cliques()
                ),
            },
        }

    config = {"dataset": name, "k": 4, "workers": workers}
    return [CellSpec("heapinit_workers", run, config)]
