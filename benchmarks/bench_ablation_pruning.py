"""Ablation bench: the score-driven pruning strategy (L vs LP).

The paper's finding: pruning matters more as k grows (up to an order of
magnitude on LJ at k=6), while leaving the output untouched.
"""

import pytest

from repro.core.lightweight import lightweight

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("prune", (False, True), ids=("L", "LP"))
def test_lightweight_prune(benchmark, fb, k, prune):
    result = benchmark.pedantic(
        lightweight, args=(fb, k), kwargs={"prune": prune}, rounds=1, iterations=1
    )
    benchmark.extra_info["size"] = result.size
    benchmark.extra_info["branches_pruned"] = result.stats["branches_pruned"]


@pytest.mark.parametrize("k", (4, 6))
def test_pruning_preserves_output(fb, k):
    assert (
        lightweight(fb, k, prune=True).sorted_cliques()
        == lightweight(fb, k, prune=False).sorted_cliques()
    )


def test_pruning_reduces_findmin_work(fb):
    pruned = lightweight(fb, 5, prune=True)
    assert pruned.stats["branches_pruned"] > 0


def cells(smoke: bool = False) -> list:
    """Runner cells: L vs LP pruning speedup plus output invariance."""
    from repro.bench.experiments import run_ablation_pruning
    from repro.bench.runner import CellSpec, check, ratio
    from repro.graph import datasets

    names = ["FB"] if smoke else None
    ks = (3, 4) if smoke else KS

    def run() -> dict:
        result = run_ablation_pruning(names, ks)
        best = max(
            cell["l_seconds"] / max(cell["lp_seconds"], 1e-9)
            for cell in result.data.values()
        )
        fb = datasets.load("FB")
        with_prune = lightweight(fb, 4, prune=True)
        invariant = (
            with_prune.sorted_cliques()
            == lightweight(fb, 4, prune=False).sorted_cliques()
        )
        return {
            "timings": {f"{name}-k{k}": cell
                        for (name, k), cell in result.data.items()},
            "branches_pruned_fb_k4": with_prune.stats["branches_pruned"],
            "gate": {
                "output_invariant": check(invariant),
                "l_vs_lp_best": ratio(best),
            },
            "artefact": result.text,
        }

    config = {"names": list(names) if names else "all", "ks": list(ks)}
    return [CellSpec("pruning", run, config)]
