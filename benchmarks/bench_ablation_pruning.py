"""Ablation bench: the score-driven pruning strategy (L vs LP).

The paper's finding: pruning matters more as k grows (up to an order of
magnitude on LJ at k=6), while leaving the output untouched.
"""

import pytest

from repro.core.lightweight import lightweight

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("prune", (False, True), ids=("L", "LP"))
def test_lightweight_prune(benchmark, fb, k, prune):
    result = benchmark.pedantic(
        lightweight, args=(fb, k), kwargs={"prune": prune}, rounds=1, iterations=1
    )
    benchmark.extra_info["size"] = result.size
    benchmark.extra_info["branches_pruned"] = result.stats["branches_pruned"]


@pytest.mark.parametrize("k", (4, 6))
def test_pruning_preserves_output(fb, k):
    assert (
        lightweight(fb, k, prune=True).sorted_cliques()
        == lightweight(fb, k, prune=False).sorted_cliques()
    )


def test_pruning_reduces_findmin_work(fb):
    pruned = lightweight(fb, 5, prune=True)
    assert pruned.stats["branches_pruned"] > 0
