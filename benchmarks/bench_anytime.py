#!/usr/bin/env python
"""Anytime-protocol benchmark: quality-vs-time curves and preemptive goodput.

Two cells, recorded to a JSON artifact:

**Cell 1 — quality-vs-time curves.** Opens ``lp`` (mid-size synthetic
graph) and ``opt-bb`` (dense small-world graph, where branch-and-bound
actually has to work) as resumable tasks and samples ``(elapsed, |S|,
bound)`` every ``--chunk`` work units. The curves certify the anytime
contract empirically: ``|S|`` is monotone non-decreasing, the bound is
an upper envelope, and the final task answer equals the blocking
``Session.solve`` answer (solutions *and* stats for lp — serving a task
must never change the algorithm).

**Cell 2 — preemptive scheduler vs shed-at-dequeue.** The PR 4 wave
mix (one long normal-lane solve, then a burst of cheap tight-deadline
high-lane solves) against a single-worker server, run twice: with the
preemptive quantum enabled and with ``quantum=None`` (the pre-anytime
scheduler, where the burst can only be shed at dequeue once its
deadline passes behind the long solve). Metric: **deadline goodput**
(deadline-met requests per second). Expectation: preemption wins
(``--min-preempt-ratio``), because the burst now runs inside the long
solve's timeslices and the long solve still completes.

Usage::

    PYTHONPATH=src python benchmarks/bench_anytime.py --out BENCH_anytime.json

Standalone script (not collected by pytest); the CI bench-smoke job
runs it at reduced scale and uploads the artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import Session  # noqa: E402
from repro.errors import DeadlineExceededError  # noqa: E402
from repro.graph.generators import powerlaw_cluster, watts_strogatz  # noqa: E402
from repro.serve import Client, Server  # noqa: E402


def quality_curve(session: Session, k: int, method: str, chunk: int) -> dict:
    """Drive one task in ``chunk``-unit steps, sampling the anytime curve."""
    task = session.task(k, method)
    points = []
    start = time.perf_counter()
    while True:
        snapshot = task.step(max_work=chunk)
        points.append(
            {
                "t_s": round(time.perf_counter() - start, 5),
                "size": snapshot.size,
                "bound": snapshot.bound,
                "work": snapshot.work,
            }
        )
        if snapshot.done:
            break
    sizes = [p["size"] for p in points]
    assert sizes == sorted(sizes), "anytime |S| must be monotone"
    assert all(p["bound"] >= p["size"] for p in points), "bound must dominate"
    return {"method": method, "k": k, "points": points, "final": points[-1]}


def bench_curves(args) -> dict:
    """Cell 1: anytime curves for lp and opt-bb, pinned to blocking solves."""
    cells = {}

    graph = powerlaw_cluster(args.nodes, args.attach, args.triangle_p,
                             seed=args.seed)
    session = Session(graph)
    blocking = session.solve(args.k, "lp")
    cell = quality_curve(session, args.k, "lp", args.chunk)
    task_result = session.task(args.k, "lp").run()
    assert task_result.sorted_cliques() == blocking.sorted_cliques()
    assert task_result.stats == blocking.stats
    cell["matches_blocking"] = True
    cell["graph"] = {"n": graph.n, "m": graph.m}
    cells["lp"] = cell

    hard = watts_strogatz(args.bb_nodes, args.bb_degree, 0.1, seed=args.seed)
    hard_session = Session(hard)
    bb_blocking = hard_session.solve(3, "opt-bb")
    cell = quality_curve(hard_session, 3, "opt-bb", args.bb_chunk)
    assert cell["final"]["size"] == bb_blocking.size
    assert cell["final"]["bound"] == bb_blocking.size  # optimality certified
    cell["matches_blocking"] = True
    cell["graph"] = {"n": hard.n, "m": hard.m}
    cells["opt-bb"] = cell
    return cells


def run_waves(server: Server, client: Client, args, cheap_tenants) -> dict:
    """One wave-mix pass (PR 4 shape); returns goodput numbers."""
    ok, shed, partials, other = 0, 0, 0, 0
    start = time.perf_counter()
    for wave in range(args.waves):
        expensive = client.start(
            "solve", graph="big", k=4, method="lp",
            deadline=60.0, include_cliques=False,
        )
        while expensive.ticket.started_at is None and not expensive.done:
            time.sleep(0.001)
        pending = [expensive]
        for i in range(args.cheap_per_wave):
            tenant = cheap_tenants[
                (wave * args.cheap_per_wave + i) % len(cheap_tenants)
            ]
            pending.append(
                client.start(
                    "solve", graph=tenant, k=3, method="lp",
                    priority="high", deadline=args.cheap_deadline,
                    include_cliques=False,
                )
            )
        for call in pending:
            try:
                call.result(120)
            except DeadlineExceededError as exc:
                shed += 1
                if getattr(exc, "partial", None):
                    partials += 1
                continue
            except Exception:  # noqa: BLE001 - tallied, not expected
                other += 1
                continue
            ok += 1
    elapsed = time.perf_counter() - start
    stats = server.scheduler.info()
    return {
        "quantum": server.scheduler.quantum,
        "requests": args.waves * (1 + args.cheap_per_wave),
        "ok": ok,
        "shed_deadline": shed,
        "deadline_partials": partials,
        "errors": other,
        "preemptions": stats["preemptions"],
        "seconds": round(elapsed, 4),
        "goodput_per_sec": round(ok / elapsed, 2),
    }


def bench_preemption(args) -> dict:
    """Cell 2: preemptive timeslicing vs shed-at-dequeue, 1 worker each."""
    big = powerlaw_cluster(args.big_nodes, args.big_attach, args.triangle_p,
                           seed=args.seed)
    smalls = {
        f"small-{i}": powerlaw_cluster(args.small_nodes, 6, 0.6,
                                       seed=args.seed + 10 + i)
        for i in range(3)
    }
    results = {}
    for label, quantum in (("shed", None), ("preemptive", args.quantum)):
        server = Server(workers=1, queue_limit=1024, quantum=quantum)
        client = Client(server)
        client.register_graph("big", big)
        for name, graph in smalls.items():
            client.register_graph(name, graph)
        client.warm("big", [4])
        for name in smalls:
            client.warm(name, [3])
        results[label] = run_waves(server, client, args, list(smalls))
        server.close()
    results["preempt_vs_shed_x"] = round(
        results["preemptive"]["goodput_per_sec"]
        / max(results["shed"]["goodput_per_sec"], 1e-9),
        3,
    )
    return results


def build_parser() -> argparse.ArgumentParser:
    """CLI options (also the source of defaults for runner cells)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=8000,
                        help="cell-1 lp graph size")
    parser.add_argument("--attach", type=int, default=12)
    parser.add_argument("--triangle-p", type=float, default=0.85)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--chunk", type=int, default=500,
                        help="work units per curve sample")
    parser.add_argument("--bb-chunk", type=int, default=100,
                        help="work units per opt-bb curve sample (branch "
                             "expansions are much cheaper than FindMin calls)")
    parser.add_argument("--bb-nodes", type=int, default=64,
                        help="cell-1 opt-bb graph size (B&B cost grows "
                             "explosively past ~70 nodes at degree 6)")
    parser.add_argument("--bb-degree", type=int, default=6)
    parser.add_argument("--big-nodes", type=int, default=16000,
                        help="cell-2 expensive tenant size")
    parser.add_argument("--big-attach", type=int, default=16)
    parser.add_argument("--small-nodes", type=int, default=600,
                        help="cell-2 cheap tenant size")
    parser.add_argument("--waves", type=int, default=6)
    parser.add_argument("--cheap-per-wave", type=int, default=10)
    parser.add_argument("--cheap-deadline", type=float, default=0.25)
    parser.add_argument("--quantum", type=float, default=0.02,
                        help="cell-2 preemption timeslice")
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--min-preempt-ratio", type=float, default=1.0,
                        help="fail at or below this preemptive/shed goodput "
                             "ratio")
    parser.add_argument("--out", default="BENCH_anytime.json")
    return parser


def cells(smoke: bool = False) -> list:
    """Runner cells: anytime quality curves and preemptive goodput.

    The curves cell asserts monotone |S|, a dominating bound and
    task-equals-blocking identity in-band (``monotone_and_pinned``);
    the preemption cell carries the goodput ratio.
    """
    from repro.bench.runner import CellSpec, check, quality, ratio
    from repro.bench.workloads import seed_for

    args = build_parser().parse_args([])
    args.seed = seed_for("social_graph")
    if smoke:
        args.nodes, args.bb_nodes = 3000, 50
        args.big_nodes, args.big_attach = 6000, 12
        args.waves, args.cheap_per_wave = 3, 6

    def run_curves() -> dict:
        curves = bench_curves(args)
        return {
            "lp_samples": len(curves["lp"]["points"]),
            "lp_final": curves["lp"]["final"],
            "bb_samples": len(curves["opt-bb"]["points"]),
            "bb_final": curves["opt-bb"]["final"],
            "gate": {
                "monotone_and_pinned": check(True),
                "final_size_lp": quality(curves["lp"]["final"]["size"]),
            },
        }

    def run_preemption() -> dict:
        preempt = bench_preemption(args)
        return {
            "shed": preempt["shed"],
            "preemptive": preempt["preemptive"],
            "gate": {
                "preempt_vs_shed": ratio(preempt["preempt_vs_shed_x"]),
            },
        }

    curves_config = {"nodes": args.nodes, "attach": args.attach,
                     "triangle_p": args.triangle_p, "k": args.k,
                     "chunk": args.chunk, "bb_nodes": args.bb_nodes,
                     "bb_chunk": args.bb_chunk, "bb_degree": args.bb_degree,
                     "seed": args.seed}
    preempt_config = {"big_nodes": args.big_nodes, "big_attach": args.big_attach,
                      "small_nodes": args.small_nodes, "waves": args.waves,
                      "cheap_per_wave": args.cheap_per_wave,
                      "cheap_deadline": args.cheap_deadline,
                      "quantum": args.quantum, "seed": args.seed}
    return [
        CellSpec("curves", run_curves, curves_config),
        CellSpec("preemption", run_preemption, preempt_config),
    ]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    print(f"cell 1: anytime curves (lp n={args.nodes}, "
          f"opt-bb n={args.bb_nodes})")
    curves = bench_curves(args)
    for method, cell in curves.items():
        final = cell["final"]
        print(f"  {method:<7} samples={len(cell['points'])} "
              f"final |S|={final['size']} bound={final['bound']} "
              f"t={final['t_s']:.3f}s")

    print(f"cell 2: waves={args.waves}, 1 long + {args.cheap_per_wave} cheap "
          f"(deadline {args.cheap_deadline}s) per wave, 1 worker")
    preempt = bench_preemption(args)
    for label in ("shed", "preemptive"):
        row = preempt[label]
        print(f"  {label:<11} goodput={row['goodput_per_sec']:>7.2f}/s  "
              f"ok={row['ok']}/{row['requests']} shed={row['shed_deadline']} "
              f"partials={row['deadline_partials']} "
              f"preemptions={row['preemptions']}")
    print(f"  preemptive vs shed goodput: x{preempt['preempt_vs_shed_x']:.2f}")

    payload = {
        "bench": "anytime",
        "config": {
            "nodes": args.nodes,
            "attach": args.attach,
            "triangle_p": args.triangle_p,
            "k": args.k,
            "chunk": args.chunk,
            "bb_nodes": args.bb_nodes,
            "big_nodes": args.big_nodes,
            "small_nodes": args.small_nodes,
            "waves": args.waves,
            "cheap_per_wave": args.cheap_per_wave,
            "cheap_deadline": args.cheap_deadline,
            "quantum": args.quantum,
            "seed": args.seed,
            "python": platform.python_version(),
        },
        "curves": curves,
        "preemption": preempt,
        "headline": {
            "preempt_vs_shed_x": preempt["preempt_vs_shed_x"],
            "metric": "deadline goodput (ok requests/sec), 1 worker",
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
    print(f"wrote {args.out}")

    if preempt["preempt_vs_shed_x"] <= args.min_preempt_ratio:
        print(
            f"FAILED: preemptive goodput x{preempt['preempt_vs_shed_x']:.2f} "
            f"<= x{args.min_preempt_ratio}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
