#!/usr/bin/env python
"""Set-vs-CSR enumeration backend microbenchmark (the BENCH trajectory).

Times k-clique counting, node scores, listing and ``lightweight``
solves under both execution backends on a synthetic clique-rich graph,
and writes the measurements to a JSON artifact so the perf trajectory
accumulates across PRs. Every comparison first asserts that the two
backends produce identical results.

Two timing modes per operation:

``cold``
    The public one-shot call, including ordering and orientation — what
    a user pays for a single ad-hoc query.
``warm``
    The enumeration kernel over prebuilt session substrates
    (:class:`repro.core.session.Preprocessing`), which is what repeated
    solves against one graph pay — and the apples-to-apples comparison
    of the two kernels (both backends get their substrate for free).

Usage::

    PYTHONPATH=src python benchmarks/bench_backend.py \
        --nodes 10000 --ks 3 4 5 --repeats 3 --out BENCH_backend.json

This file is a standalone script (not collected by pytest); the CI
bench-smoke job runs it at reduced scale and uploads the artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cliques.counting import node_scores  # noqa: E402
from repro.cliques.listing import count_cliques, list_cliques  # noqa: E402
from repro.core.lightweight import lightweight  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.graph.generators import powerlaw_cluster  # noqa: E402


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def canonical(cliques) -> list[tuple[int, ...]]:
    return sorted(tuple(sorted(c)) for c in cliques)


def compare(rows: list, *, k: int, op: str, mode: str, sets_fn, csr_fn, repeats: int,
            check=lambda a, b: a == b) -> None:
    sets_s, sets_val = best_of(sets_fn, repeats)
    csr_s, csr_val = best_of(csr_fn, repeats)
    assert check(sets_val, csr_val), f"backend mismatch for {op} k={k} ({mode})"
    row = {
        "k": k,
        "op": op,
        "mode": mode,
        "sets_s": round(sets_s, 6),
        "csr_s": round(csr_s, 6),
        "speedup": round(sets_s / csr_s, 3) if csr_s else None,
    }
    rows.append(row)
    print(
        f"  {op:<8} {mode:<5} k={k}: sets={sets_s:8.4f}s  csr={csr_s:8.4f}s"
        f"  speedup={row['speedup']:.2f}x"
    )


def build_parser() -> argparse.ArgumentParser:
    """CLI options (also the source of defaults for runner cells)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10000)
    parser.add_argument("--attach", type=int, default=8,
                        help="preferential-attachment edges per node")
    parser.add_argument("--triangle-p", type=float, default=0.5,
                        help="triangle-closing probability (clique richness)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ks", type=int, nargs="+", default=[3, 4, 5])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_backend.json")
    return parser


def build_substrate(args):
    """The shared graph + warm substrates every comparison reads from."""
    graph = powerlaw_cluster(args.nodes, args.attach, args.triangle_p, seed=args.seed)
    graph.csr()  # one-time undirected CSR, shared by everything below
    # Warm substrates: both backends read from the same session cache.
    prep = Session(graph).prep
    dag = prep.oriented()
    prep.oriented_csr()
    return graph, dag


def run_k(graph, dag, k: int, repeats: int) -> list[dict]:
    """The seven backend comparisons for one clique size ``k``."""
    rows: list[dict] = []
    compare(
        rows, k=k, op="count", mode="cold", repeats=repeats,
        sets_fn=lambda k=k: count_cliques(graph, k, backend="sets"),
        csr_fn=lambda k=k: count_cliques(graph, k, backend="csr"),
    )
    compare(
        rows, k=k, op="count", mode="warm", repeats=repeats,
        sets_fn=lambda k=k: count_cliques(graph, k, backend="sets", dag=dag),
        csr_fn=lambda k=k: count_cliques(graph, k, backend="csr", dag=dag),
    )
    compare(
        rows, k=k, op="scores", mode="cold", repeats=repeats,
        sets_fn=lambda k=k: node_scores(graph, k, backend="sets"),
        csr_fn=lambda k=k: node_scores(graph, k, backend="csr"),
        check=lambda a, b: a.tolist() == b.tolist(),
    )
    compare(
        rows, k=k, op="scores", mode="warm", repeats=repeats,
        sets_fn=lambda k=k: node_scores(graph, k, backend="sets", dag=dag),
        csr_fn=lambda k=k: node_scores(graph, k, backend="csr", dag=dag),
        check=lambda a, b: a.tolist() == b.tolist(),
    )
    compare(
        rows, k=k, op="list", mode="cold", repeats=max(1, repeats - 1),
        sets_fn=lambda k=k: list_cliques(graph, k, backend="sets"),
        csr_fn=lambda k=k: list_cliques(graph, k, backend="csr"),
        check=lambda a, b: canonical(a) == canonical(b),
    )
    # Forced-CSR FindMin walk, and the phase-aware auto default.
    compare(
        rows, k=k, op="solve-csr", mode="cold", repeats=max(1, repeats - 1),
        sets_fn=lambda k=k: lightweight(graph, k, backend="sets"),
        csr_fn=lambda k=k: lightweight(graph, k, backend="csr"),
        check=lambda a, b: a.sorted_cliques() == b.sorted_cliques()
        and a.stats == b.stats,
    )
    compare(
        rows, k=k, op="solve-auto", mode="cold", repeats=max(1, repeats - 1),
        sets_fn=lambda k=k: lightweight(graph, k, backend="sets"),
        csr_fn=lambda k=k: lightweight(graph, k, backend="auto"),
        check=lambda a, b: a.sorted_cliques() == b.sorted_cliques(),
    )
    return rows


def cells(smoke: bool = False) -> list:
    """Runner cells: one per k, sharing one lazily built substrate.

    Every comparison asserts backend equality before reading a clock,
    so a cell that returns at all has verified the differential
    contract — ``backends_agree`` records that in the gate.
    """
    from repro.bench.runner import CellSpec, check, ratio
    from repro.bench.workloads import seed_for

    args = build_parser().parse_args([])
    args.seed = seed_for("synthetic_graph")
    if smoke:
        args.nodes, args.attach, args.repeats = 2000, 6, 2
        args.ks = [3, 4]
    shared: dict = {}

    def substrate():
        if not shared:
            shared["graph"], shared["dag"] = build_substrate(args)
        return shared["graph"], shared["dag"]

    def make_cell(k: int):
        def run() -> dict:
            graph, dag = substrate()
            rows = run_k(graph, dag, k, args.repeats)
            cold = next(r for r in rows
                        if r["op"] == "count" and r["mode"] == "cold")
            return {
                "rows": rows,
                "gate": {
                    "count_speedup_cold": ratio(cold["speedup"]),
                    "backends_agree": check(True),
                },
            }

        config = {"nodes": args.nodes, "attach": args.attach,
                  "triangle_p": args.triangle_p, "seed": args.seed,
                  "k": k, "repeats": args.repeats}
        return CellSpec(f"k{k}", run, config)

    return [make_cell(k) for k in args.ks]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    graph, dag = build_substrate(args)
    print(f"graph: n={graph.n} m={graph.m} (powerlaw_cluster, seed={args.seed})")

    rows: list[dict] = []
    for k in args.ks:
        rows.extend(run_k(graph, dag, k, args.repeats))

    count_speedups = {
        r["k"]: r["speedup"] for r in rows if r["op"] == "count" and r["mode"] == "cold"
    }
    payload = {
        "bench": "backend",
        "config": {
            "generator": "powerlaw_cluster",
            "nodes": graph.n,
            "edges": graph.m,
            "attach": args.attach,
            "triangle_p": args.triangle_p,
            "seed": args.seed,
            "ks": args.ks,
            "repeats": args.repeats,
            "python": platform.python_version(),
        },
        "results": rows,
        "headline": {
            "count_speedup_by_k": count_speedups,
            "count_speedup_min": min(count_speedups.values()),
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out} (min counting speedup: "
          f"{payload['headline']['count_speedup_min']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
