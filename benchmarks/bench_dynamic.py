#!/usr/bin/env python
"""Per-edge vs batched dynamic maintenance benchmark (the BENCH trajectory).

Times :meth:`DynamicDisjointCliques.apply` (per-edge, Algorithms 6/7)
against :meth:`apply_batch` (coalesce + one deferred repair pass per
batch) on the paper's Section VI-E workloads — deletion, insertion and
mixed — and writes updates/sec to a JSON artifact so the perf
trajectory accumulates across PRs.

Protocol, per (k, workload):

* one :class:`Session` per workload start graph supplies the initial
  static solve (shared across modes and repeats — the preprocessing is
  not on the clock);
* every mode starts from a freshly built, pre-stabilised maintainer
  (an empty ``apply_batch`` drains the latent swap opportunities of the
  static solve, so no mode gets credit or blame for them);
* per-edge applies the stream one update at a time; batched modes run
  one whole-stream batch and a chunked (``--chunk``) variant, both with
  the CSR refresh backend, plus a whole-stream ``sets`` run whose final
  solution must be *identical* to the CSR one (trajectory equality);
* all modes must land on the same final edge set; medians of
  ``--repeats`` runs are recorded.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic.py \
        --nodes 10000 --attach 24 --triangle-p 0.9 --ks 3 4 5 \
        --count 500 --repeats 3 --out BENCH_dynamic.json

This file is a standalone script (not collected by pytest); the CI
bench-smoke job runs it at reduced scale and uploads the artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import bench_workload, seed_for  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.dynamic.maintainer import DynamicDisjointCliques  # noqa: E402
from repro.graph.generators import powerlaw_cluster  # noqa: E402

WORKLOADS = ("deletion", "insertion", "mixed")


def timed_runs(build, run, repeats: int):
    """Median wall time of ``repeats`` runs, plus the last maintainer."""
    times = []
    dyn = None
    for _ in range(repeats):
        dyn = build()
        t0 = time.perf_counter()
        run(dyn)
        times.append(time.perf_counter() - t0)
    return statistics.median(times), dyn


def build_parser() -> argparse.ArgumentParser:
    """CLI options (also the source of defaults for runner cells)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10000)
    parser.add_argument("--attach", type=int, default=24,
                        help="preferential-attachment edges per node")
    parser.add_argument("--triangle-p", type=float, default=0.9,
                        help="triangle-closing probability (clique richness)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--ks", type=int, nargs="+", default=[3, 4, 5])
    parser.add_argument("--count", type=int, default=500,
                        help="sampled edges per workload (mixed applies 2x)")
    parser.add_argument("--chunk", type=int, default=128,
                        help="batch size of the chunked batched mode")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_dynamic.json")
    return parser


def run_workload(graph, workload: str, args,
                 echo=print) -> tuple[list[dict], dict[int, float]]:
    """Time every mode of one workload; returns rows + best batched speedup.

    Asserts in-band that all modes land on the same final edge set and
    that the csr/sets batched trajectories produce identical solutions.
    """
    rows: list[dict] = []
    best_speedups: dict[int, float] = {}
    start, updates = bench_workload(graph, workload, args.count)
    session = Session(start)
    for k in args.ks:
        initial = session.solve(k, method="lp")

        def build():
            dyn = DynamicDisjointCliques(
                start, k, initial=initial, validate_initial=False
            )
            dyn.apply_batch([])  # pre-stabilise: drain latent swaps
            return dyn

        modes = {
            "per-edge": lambda d: d.apply(updates),
            "batch-full-csr": lambda d: d.apply_batch(updates, backend="csr"),
            "batch-full-sets": lambda d: d.apply_batch(updates, backend="sets"),
            f"batch-{args.chunk}-csr": lambda d: d.apply(
                updates, batch_size=args.chunk, backend="csr"
            ),
        }
        results = {}
        edge_sets = {}
        solutions = {}
        for mode, run in modes.items():
            seconds, dyn = timed_runs(build, run, args.repeats)
            results[mode] = (seconds, dyn.size)
            edge_sets[mode] = frozenset(dyn.graph.edges())
            solutions[mode] = dyn.solution().sorted_cliques()
        assert len(set(edge_sets.values())) == 1, \
            f"modes diverged on the final graph ({workload}, k={k})"
        assert solutions["batch-full-csr"] == solutions["batch-full-sets"], \
            f"csr/sets trajectories diverged ({workload}, k={k})"

        per_edge_s = results["per-edge"][0]
        for mode, (seconds, size) in results.items():
            row = {
                "workload": workload,
                "k": k,
                "mode": mode,
                "updates": len(updates),
                "seconds": round(seconds, 6),
                "updates_per_sec": round(len(updates) / seconds, 1),
                "solution_size": size,
                "speedup_vs_per_edge": round(per_edge_s / seconds, 3),
            }
            rows.append(row)
            echo(
                f"  {workload:<9} k={k} {mode:<16} "
                f"{row['updates_per_sec']:>10.0f} up/s  "
                f"x{row['speedup_vs_per_edge']:.2f}  |S|={size}"
            )
        best = min(
            seconds for mode, (seconds, _) in results.items()
            if mode != "per-edge"
        )
        best_speedups[k] = round(per_edge_s / best, 3)
    return rows, best_speedups


def cells(smoke: bool = False) -> list:
    """Runner cells: one per workload, sharing one lazily built graph.

    The trajectory-equality asserts run in-band; ``modes_converge``
    records them in the gate, and the mixed cell carries the headline
    batched-speedup ratio.
    """
    from repro.bench.runner import CellSpec, check, ratio
    from repro.bench.workloads import seed_for

    args = build_parser().parse_args([])
    args.seed = seed_for("synthetic_graph")
    if smoke:
        args.nodes, args.attach, args.triangle_p = 1500, 8, 0.6
        args.ks, args.count, args.chunk, args.repeats = [3, 4], 60, 32, 1
    shared: dict = {}

    def graph():
        if not shared:
            shared["graph"] = powerlaw_cluster(
                args.nodes, args.attach, args.triangle_p, seed=args.seed
            )
        return shared["graph"]

    def make_cell(workload: str):
        def run() -> dict:
            rows, speedups = run_workload(
                graph(), workload, args, echo=lambda line: None
            )
            result = {
                "rows": rows,
                "best_batched_speedup_by_k": speedups,
                "gate": {"modes_converge": check(True)},
            }
            if workload == "mixed":
                result["gate"]["mixed_speedup"] = ratio(max(speedups.values()))
            return result

        config = {"nodes": args.nodes, "attach": args.attach,
                  "triangle_p": args.triangle_p, "seed": args.seed,
                  "ks": list(args.ks), "count": args.count,
                  "chunk": args.chunk, "repeats": args.repeats,
                  "workload": workload}
        return CellSpec(workload, run, config)

    return [make_cell(workload) for workload in WORKLOADS]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    graph = powerlaw_cluster(args.nodes, args.attach, args.triangle_p, seed=args.seed)
    print(f"graph: n={graph.n} m={graph.m} (powerlaw_cluster, seed={args.seed})")

    rows: list[dict] = []
    mixed_speedups: dict[int, float] = {}
    for workload in WORKLOADS:
        workload_rows, speedups = run_workload(graph, workload, args)
        rows.extend(workload_rows)
        if workload == "mixed":
            mixed_speedups = speedups

    payload = {
        "bench": "dynamic",
        "config": {
            "generator": "powerlaw_cluster",
            "nodes": graph.n,
            "edges": graph.m,
            "attach": args.attach,
            "triangle_p": args.triangle_p,
            "seed": args.seed,
            "ks": args.ks,
            "count": args.count,
            "chunk": args.chunk,
            "repeats": args.repeats,
            "python": platform.python_version(),
        },
        "results": rows,
        "headline": {
            "mixed_speedup_by_k": mixed_speedups,
            "mixed_speedup_max": max(mixed_speedups.values()),
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out} (best mixed batched speedup: "
          f"{payload['headline']['mixed_speedup_max']:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
