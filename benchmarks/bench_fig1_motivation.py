"""Figure 1(b) bench: the teaming-event motivation.

Reproduces the paper's opening claim on the synthetic conversion model:
teams that form full k-cliques convert best, and 6-edge (full) 4-player
teams beat 5-edge teams by ~25.6%. Also times the full team-building
pipeline (packing + residual rounds).
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

from teaming_event import (  # noqa: E402
    CONVERSION_BY_EDGES,
    intra_team_edges,
    teams_by_packing,
    teams_by_random,
    simulate_conversion,
)
from repro.graph.generators import powerlaw_cluster  # noqa: E402


@pytest.fixture(scope="module")
def social():
    return powerlaw_cluster(1200, 8, 0.55, seed=9)


def test_conversion_model_matches_paper_margin():
    """6-edge teams beat 5-edge teams by ~25.6% in the calibrated model."""
    margin = CONVERSION_BY_EDGES[6] / CONVERSION_BY_EDGES[5] - 1
    assert abs(margin - 0.256) < 0.03


def test_build_teams_lp(benchmark, social):
    teams = benchmark.pedantic(
        teams_by_packing, args=(social, "lp"), rounds=1, iterations=1
    )
    full = sum(
        1 for t in teams if len(t) == 4 and intra_team_edges(social, t) == 6
    )
    benchmark.extra_info["teams"] = len(teams)
    benchmark.extra_info["full_cliques"] = full
    assert full > 0


def test_lp_packing_beats_random_conversion(social):
    rng = np.random.default_rng(4)
    random_rate, _ = simulate_conversion(social, teams_by_random(social, rng), rng)
    lp_rate, _ = simulate_conversion(social, teams_by_packing(social, "lp"), rng)
    assert lp_rate > random_rate


def test_lp_at_least_matches_hg_full_teams(social):
    lp_teams = teams_by_packing(social, "lp")
    hg_teams = teams_by_packing(social, "hg")

    def full(teams):
        return sum(
            1 for t in teams if len(t) == 4 and intra_team_edges(social, t) == 6
        )

    assert full(lp_teams) >= full(hg_teams)


def cells(smoke: bool = False) -> list:
    """Runner cells: the Figure 1 motivation claims on one social graph."""
    from repro.bench.runner import CellSpec, check, quality
    from repro.bench.workloads import seed_for

    nodes = 400 if smoke else 1200
    graph_seed = seed_for("social_graph")

    def run() -> dict:
        graph = powerlaw_cluster(nodes, 8, 0.55, seed=graph_seed)
        margin = CONVERSION_BY_EDGES[6] / CONVERSION_BY_EDGES[5] - 1

        def full(teams):
            return sum(
                1 for t in teams
                if len(t) == 4 and intra_team_edges(graph, t) == 6
            )

        lp_teams = teams_by_packing(graph, "lp")
        hg_full = full(teams_by_packing(graph, "hg"))
        rng = np.random.default_rng(seed_for("conversion_rng"))
        random_rate, _ = simulate_conversion(
            graph, teams_by_random(graph, rng), rng
        )
        lp_rate, _ = simulate_conversion(graph, lp_teams, rng)
        return {
            "model_margin": round(margin, 4),
            "lp_conversion": round(lp_rate, 4),
            "random_conversion": round(random_rate, 4),
            "lp_teams": len(lp_teams),
            "gate": {
                "model_margin_calibrated": check(abs(margin - 0.256) < 0.03),
                "lp_beats_random": check(lp_rate > random_rate),
                "lp_at_least_hg_full_teams": check(full(lp_teams) >= hg_full),
                "lp_full_teams": quality(full(lp_teams)),
            },
        }

    config = {"nodes": nodes, "attach": 8, "triangle_p": 0.55,
              "graph_seed": graph_seed,
              "conversion_seed": seed_for("conversion_rng")}
    return [CellSpec("fig1", run, config)]
