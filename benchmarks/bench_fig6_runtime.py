"""Figure 6 bench: running time of each static algorithm vs k.

The paper's finding: HG is fastest and k-insensitive; GC pays clique
storage; L/LP sit between, growing with the clique count; OPT only
survives on toys. Each benchmark times one (dataset, k, method) cell.
"""

import pytest

from repro.core.api import find_disjoint_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("method", ("hg", "gc", "l", "lp"))
@pytest.mark.parametrize("k", KS)
def test_ftb_methods(benchmark, ftb, k, method):
    result = benchmark(find_disjoint_cliques, ftb, k, method)
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("method", ("hg", "lp"))
@pytest.mark.parametrize("k", KS)
def test_hst_methods(benchmark, hst, k, method):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(hst, k, method), rounds=2, iterations=1
    )
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("k", (3, 4))
def test_opt_on_tiny(benchmark, k):
    from repro.graph import datasets

    swallow = datasets.load("Swallow")
    result = benchmark(find_disjoint_cliques, swallow, k, "opt")
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("k", (3, 6))
def test_shape_hg_fastest(hst, k):
    """Sanity on the headline shape: HG beats LP in time on each cell."""
    import time

    start = time.perf_counter()
    find_disjoint_cliques(hst, k, "hg")
    hg_time = time.perf_counter() - start
    start = time.perf_counter()
    find_disjoint_cliques(hst, k, "lp")
    lp_time = time.perf_counter() - start
    assert hg_time < lp_time * 1.5  # HG never meaningfully slower


def smoke_static_plan(smoke: bool) -> dict:
    """The shared static-sweep parameters for Fig6/Table II/Table III.

    One plan (and one memoized sweep) backs all three suites, so the
    runner pays for the (dataset, k, method) grid exactly once per run.
    """
    if smoke:
        return {"names": ["FTB"], "ks": (3, 4),
                "time_budget": 10.0, "clique_budget": 50_000}
    from repro.bench.harness import DEFAULT_CLIQUE_BUDGET, DEFAULT_TIME_BUDGET
    from repro.graph import datasets

    return {"names": list(datasets.TABLE1_NAMES), "ks": KS,
            "time_budget": DEFAULT_TIME_BUDGET,
            "clique_budget": DEFAULT_CLIQUE_BUDGET}


def cells(smoke: bool = False) -> list:
    """Runner cells: regenerate Figure 6 from the shared static sweep."""
    from repro.bench.experiments import cached_static_sweep, run_fig6
    from repro.bench.runner import CellSpec, quality

    plan = smoke_static_plan(smoke)

    def run() -> dict:
        sweep = cached_static_sweep(
            plan["names"], plan["ks"],
            time_budget=plan["time_budget"],
            clique_budget=plan["clique_budget"],
        )
        result = run_fig6(sweep, plan["names"], plan["ks"])
        ok = sum(1 for cell in sweep.values() if cell.ok)
        return {
            "cells_total": len(sweep),
            "cells_with_result": ok,
            "gate": {"cells_ok_count": quality(ok)},
            "artefact": result.text,
        }

    config = {"names": plan["names"], "ks": list(plan["ks"]),
              "time_budget": plan["time_budget"],
              "clique_budget": plan["clique_budget"]}
    return [CellSpec("fig6", run, config)]
