"""Figure 6 bench: running time of each static algorithm vs k.

The paper's finding: HG is fastest and k-insensitive; GC pays clique
storage; L/LP sit between, growing with the clique count; OPT only
survives on toys. Each benchmark times one (dataset, k, method) cell.
"""

import pytest

from repro.core.api import find_disjoint_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("method", ("hg", "gc", "l", "lp"))
@pytest.mark.parametrize("k", KS)
def test_ftb_methods(benchmark, ftb, k, method):
    result = benchmark(find_disjoint_cliques, ftb, k, method)
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("method", ("hg", "lp"))
@pytest.mark.parametrize("k", KS)
def test_hst_methods(benchmark, hst, k, method):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(hst, k, method), rounds=2, iterations=1
    )
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("k", (3, 4))
def test_opt_on_tiny(benchmark, k):
    from repro.graph import datasets

    swallow = datasets.load("Swallow")
    result = benchmark(find_disjoint_cliques, swallow, k, "opt")
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("k", (3, 6))
def test_shape_hg_fastest(hst, k):
    """Sanity on the headline shape: HG beats LP in time on each cell."""
    import time

    start = time.perf_counter()
    find_disjoint_cliques(hst, k, "hg")
    hg_time = time.perf_counter() - start
    start = time.perf_counter()
    find_disjoint_cliques(hst, k, "lp")
    lp_time = time.perf_counter() - start
    assert hg_time < lp_time * 1.5  # HG never meaningfully slower
