"""Figure 7 bench: average update latency per workload vs k.

The paper's finding: single-update maintenance is micro/millisecond
scale — orders of magnitude below rebuild — and grows with k.

All update streams come from :mod:`repro.bench.workloads`, so these
benchmarks, Table VIII and the ``repro bench`` runner time identical
workloads.
"""

import pytest

from repro.bench.workloads import bench_workload
from repro.dynamic import DynamicDisjointCliques

COUNT = 60


@pytest.mark.parametrize("k", (3, 4))
def test_deletion_latency(benchmark, hst, k):
    _, updates = bench_workload(hst, "deletion", COUNT)

    def setup():
        return (DynamicDisjointCliques(hst, k),), {}

    def run(dyn):
        dyn.apply(updates)

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["updates_per_round"] = COUNT


@pytest.mark.parametrize("k", (3, 4))
def test_insertion_latency(benchmark, hst, k):
    _, deletions = bench_workload(hst, "deletion", COUNT)
    insertions = [("insert", u, v) for _, u, v in deletions]

    def setup():
        dyn = DynamicDisjointCliques(hst, k)
        dyn.apply(deletions)
        return (dyn,), {}

    def run(dyn):
        dyn.apply(insertions)

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["updates_per_round"] = COUNT


@pytest.mark.parametrize("k", (3, 4))
def test_mixed_latency(benchmark, hst, k):
    start_graph, updates = bench_workload(hst, "mixed", COUNT)

    def setup():
        return (DynamicDisjointCliques(start_graph, k),), {}

    def run(dyn):
        dyn.apply(updates)

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["updates_per_round"] = 2 * COUNT


def test_update_beats_rebuild_by_orders_of_magnitude(hst):
    """One maintained update must cost << one rebuild (paper: the OR
    rebuild equals ~millions of update operations)."""
    import time

    _, updates = bench_workload(hst, "deletion", COUNT)
    dyn = DynamicDisjointCliques(hst, 4)
    start = time.perf_counter()
    dyn.apply(updates)
    per_update = (time.perf_counter() - start) / COUNT

    from repro.core.api import find_disjoint_cliques

    start = time.perf_counter()
    find_disjoint_cliques(dyn.graph.snapshot(), 4, "lp")
    rebuild = time.perf_counter() - start
    assert rebuild > 30 * per_update


def smoke_dynamic_plan(smoke: bool) -> dict:
    """Shared dynamic-sweep parameters for Figure 7 and Table VIII."""
    if smoke:
        return {"names": ["FTB"], "ks": (3, 4), "count": 40}
    from repro.bench.harness import scaled
    from repro.graph import datasets

    return {"names": list(datasets.TABLE1_NAMES), "ks": (3, 4, 5, 6),
            "count": scaled(200, minimum=10)}


def cells(smoke: bool = False) -> list:
    """Runner cells: Figure 7 plus the rebuild-vs-update latency ratio."""
    import time

    from repro.bench.experiments import cached_dynamic_sweep, run_fig7
    from repro.bench.runner import CellSpec, ratio
    from repro.core.api import find_disjoint_cliques
    from repro.graph import datasets

    plan = smoke_dynamic_plan(smoke)

    def run() -> dict:
        sweep = cached_dynamic_sweep(plan["names"], plan["ks"], plan["count"])
        result = run_fig7(sweep, plan["names"], plan["ks"])
        # Direct differential measurement (same protocol as the pytest
        # test): one maintained update vs one rebuild on the first
        # dataset of the plan.
        graph = datasets.load(plan["names"][0])
        count = min(plan["count"], graph.m // 4)
        _, updates = bench_workload(graph, "deletion", count)
        dyn = DynamicDisjointCliques(graph, 4)
        start = time.perf_counter()
        dyn.apply(updates)
        per_update = (time.perf_counter() - start) / count
        start = time.perf_counter()
        find_disjoint_cliques(dyn.graph.snapshot(), 4, "lp")
        rebuild = time.perf_counter() - start
        return {
            "per_update_s": per_update,
            "rebuild_s": rebuild,
            "gate": {
                "rebuild_vs_update": ratio(rebuild / max(per_update, 1e-12)),
            },
            "artefact": result.text,
        }

    config = {"names": plan["names"], "ks": list(plan["ks"]),
              "count": plan["count"]}
    return [CellSpec("fig7", run, config)]
