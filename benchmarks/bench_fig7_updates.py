"""Figure 7 bench: average update latency per workload vs k.

The paper's finding: single-update maintenance is micro/millisecond
scale — orders of magnitude below rebuild — and grows with k.
"""

import pytest

from repro.dynamic import DynamicDisjointCliques
from repro.dynamic.workload import deletion_workload, mixed_workload

COUNT = 60


@pytest.mark.parametrize("k", (3, 4))
def test_deletion_latency(benchmark, hst, k):
    updates = deletion_workload(hst, COUNT, seed=11)

    def setup():
        return (DynamicDisjointCliques(hst, k),), {}

    def run(dyn):
        dyn.apply(updates)

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["updates_per_round"] = COUNT


@pytest.mark.parametrize("k", (3, 4))
def test_insertion_latency(benchmark, hst, k):
    deletions = deletion_workload(hst, COUNT, seed=11)
    insertions = [("insert", u, v) for _, u, v in deletions]

    def setup():
        dyn = DynamicDisjointCliques(hst, k)
        dyn.apply(deletions)
        return (dyn,), {}

    def run(dyn):
        dyn.apply(insertions)

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["updates_per_round"] = COUNT


@pytest.mark.parametrize("k", (3, 4))
def test_mixed_latency(benchmark, hst, k):
    start_graph, updates = mixed_workload(hst, COUNT, seed=12)

    def setup():
        return (DynamicDisjointCliques(start_graph, k),), {}

    def run(dyn):
        dyn.apply(updates)

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    benchmark.extra_info["updates_per_round"] = 2 * COUNT


def test_update_beats_rebuild_by_orders_of_magnitude(hst):
    """One maintained update must cost << one rebuild (paper: the OR
    rebuild equals ~millions of update operations)."""
    import time

    updates = deletion_workload(hst, COUNT, seed=13)
    dyn = DynamicDisjointCliques(hst, 4)
    start = time.perf_counter()
    dyn.apply(updates)
    per_update = (time.perf_counter() - start) / COUNT

    from repro.core.api import find_disjoint_cliques

    start = time.perf_counter()
    find_disjoint_cliques(dyn.graph.snapshot(), 4, "lp")
    rebuild = time.perf_counter() - start
    assert rebuild > 30 * per_update
