#!/usr/bin/env python
"""Process-tier benchmark: parallel solves vs sequential, pool fan-out.

Drives the :mod:`repro.parallel` shared-memory tier and records three
cells to a JSON artifact. Every parallel solve is asserted equal to its
sequential twin before any clock is read — the tier's contract is
*identical solutions for any worker count*, so a speedup that changed
the answer would be meaningless.

**Cell 1 — parallel HeapInit (``lp``, 1 vs N workers).** The same
``lightweight`` solve on a mid-size powerlaw graph, once sequential and
once fanned out over ``--workers`` processes attaching to the shared
oriented-CSR substrate. Solutions *and* stats must match bit for bit.

**Cell 2 — branch-and-bound subtree fan-out (``opt-bb``).**
``exact_optimum_bb`` vs :func:`repro.parallel.parallel_exact_bb` on a
small dense G(n, p) instance (B&B cost grows exponentially with n, so
the graph is deliberately tiny). Solutions must be identical including
clique order; node counts differ by incumbent-broadcast timing and are
recorded, not pinned.

**Cell 3 — pool solve throughput.** A batch of whole solves submitted
through :meth:`repro.parallel.pool.ProcessSolvePool.submit_solve`
(workers re-solve against a session rebuilt zero-copy on the shared
graph CSR) vs the same batch run inline on one warm session.

Honest-numbers note: this box reports ``os.cpu_count()`` in the config
block. On a single core the process tier cannot beat a warm sequential
loop — the value measured there is isolation and checkpoint
portability, not wall-clock — so ``--min-scaling`` defaults to 0.0 and
the speedup columns are recorded as observed, never synthesised.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_parallel.json

This file is a standalone script (not collected by pytest); the CI
bench-smoke job runs it at reduced scale and uploads the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.exact_bb import exact_optimum_bb  # noqa: E402
from repro.core.lightweight import lightweight  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.graph.generators import erdos_renyi_gnp, powerlaw_cluster  # noqa: E402
from repro.parallel import parallel_exact_bb  # noqa: E402
from repro.parallel.context import resolve_context  # noqa: E402
from repro.parallel.pool import ProcessSolvePool  # noqa: E402


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def assert_same_solution(label: str, expected, actual) -> None:
    """Hard-fail the bench if a parallel solve diverged from sequential."""
    if expected != actual:
        raise AssertionError(
            f"{label}: parallel solution diverged from sequential\n"
            f"  sequential: {expected}\n"
            f"  parallel:   {actual}"
        )


def bench_heapinit(args) -> dict:
    """Cell 1: lightweight lp, workers=1 vs workers=N, equality-pinned."""
    graph = powerlaw_cluster(args.nodes, args.attach, args.triangle_p,
                             seed=args.seed)
    t_seq, seq = best_of(lambda: lightweight(graph, args.k, workers=1),
                         args.repeats)
    t_par, par = best_of(
        lambda: lightweight(graph, args.k, workers=args.workers,
                            start_method=args.start_method),
        args.repeats,
    )
    assert_same_solution("heapinit solutions",
                         seq.sorted_cliques(), par.sorted_cliques())
    assert_same_solution("heapinit stats", seq.stats, par.stats)
    return {
        "graph": {"n": graph.n, "m": graph.m},
        "k": args.k,
        "solution_size": len(seq.cliques),
        "sequential_s": t_seq,
        "parallel_s": t_par,
        "workers": args.workers,
        "speedup_x": t_seq / t_par if t_par else 0.0,
        "stats_pinned": True,
    }


def bench_exact_bb(args) -> dict:
    """Cell 2: opt-bb drive-to-completion vs subtree fan-out."""
    graph = erdos_renyi_gnp(args.bb_nodes, args.bb_p, seed=args.seed + 1)
    t_seq, seq = best_of(lambda: exact_optimum_bb(graph, args.k),
                         args.repeats)
    t_par, par = best_of(
        lambda: parallel_exact_bb(graph, args.k, workers=args.workers,
                                  start_method=args.start_method),
        args.repeats,
    )
    # Bit-identical including order; nodes_expanded is timing-dependent.
    assert_same_solution("opt-bb solutions",
                         [sorted(c) for c in seq.cliques],
                         [sorted(c) for c in par.cliques])
    return {
        "graph": {"n": graph.n, "m": graph.m},
        "k": args.k,
        "solution_size": len(seq.cliques),
        "sequential_s": t_seq,
        "parallel_s": t_par,
        "workers": args.workers,
        "speedup_x": t_seq / t_par if t_par else 0.0,
        "sequential_nodes_expanded": seq.stats.get("nodes_expanded"),
        "parallel_nodes_expanded": par.stats.get("nodes_expanded"),
        "subtree_tasks": par.stats.get("subtree_tasks"),
        "incumbent_broadcasts": par.stats.get("incumbent_broadcasts"),
    }


def bench_pool_throughput(args) -> dict:
    """Cell 3: whole-solve fan-out through ProcessSolvePool.submit_solve."""
    graph = powerlaw_cluster(args.nodes, args.attach, args.triangle_p,
                             seed=args.seed + 2)
    requests = [(k, method)
                for _ in range(args.batch_rounds)
                for k in (args.k, args.k + 1)
                for method in ("lp", "gc")]

    session = Session(graph)
    session.warm([args.k, args.k + 1])  # both configs get warm substrates
    start = time.perf_counter()
    inline = [session.solve(k, method) for k, method in requests]
    t_inline = time.perf_counter() - start

    with ProcessSolvePool(session, workers=args.workers,
                          start_method=args.start_method) as pool:
        pool.submit_solve(args.k, "lp").result()  # spin-up off the clock
        start = time.perf_counter()
        futures = [pool.submit_solve(k, method) for k, method in requests]
        payloads = [future.result() for future in futures]
        t_pool = time.perf_counter() - start

    for (k, method), direct, payload in zip(requests, inline, payloads):
        assert_same_solution(
            f"pool solve k={k} method={method}",
            [sorted(clique) for clique in direct.cliques],
            payload["cliques"],
        )
    return {
        "graph": {"n": graph.n, "m": graph.m},
        "requests": len(requests),
        "inline_s": t_inline,
        "pool_s": t_pool,
        "inline_requests_per_sec": len(requests) / t_inline if t_inline else 0.0,
        "pool_requests_per_sec": len(requests) / t_pool if t_pool else 0.0,
        "workers": args.workers,
        "throughput_x": t_inline / t_pool if t_pool else 0.0,
    }


def build_parser() -> argparse.ArgumentParser:
    """CLI options (also the source of defaults for runner cells)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=6000,
                        help="cell-1/3 powerlaw graph size")
    parser.add_argument("--attach", type=int, default=6)
    parser.add_argument("--triangle-p", type=float, default=0.6)
    parser.add_argument("--k", type=int, default=3,
                        help="clique size (cell 3 also runs k+1)")
    parser.add_argument("--bb-nodes", type=int, default=40,
                        help="cell-2 G(n, p) size (B&B is exponential)")
    parser.add_argument("--bb-p", type=float, default=0.3)
    parser.add_argument("--workers", type=int, default=2,
                        help="parallel configuration for every cell")
    parser.add_argument("--batch-rounds", type=int, default=3,
                        help="cell-3 repetitions of the 4-request mix")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--start-method", default="auto",
                        choices=("auto", "fork", "spawn", "forkserver"))
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-scaling", type=float, default=0.0,
                        help="fail below this speedup on every cell "
                             "(0.0 = equality-check only; single-core "
                             "boxes cannot beat a warm sequential loop)")
    parser.add_argument("--out", default="BENCH_parallel.json")
    return parser


def cells(smoke: bool = False) -> list:
    """Runner cells: the three process-tier comparisons.

    Every parallel solve is asserted equal to its sequential twin
    in-band before any clock is read (``solutions_pinned``); on
    single-core machines the ratios are recorded as observed and only
    coverage is gated cross-mode.
    """
    from repro.bench.runner import CellSpec, check, ratio

    args = build_parser().parse_args([])
    if smoke:
        args.nodes, args.bb_nodes = 1200, 30
        args.repeats, args.batch_rounds, args.workers = 1, 1, 2

    def run_heapinit() -> dict:
        cell = bench_heapinit(args)
        cell["gate"] = {
            "heapinit_speedup": ratio(cell["speedup_x"]),
            "solutions_pinned": check(True),
        }
        return cell

    def run_bb() -> dict:
        cell = bench_exact_bb(args)
        cell["gate"] = {
            "exact_bb_speedup": ratio(cell["speedup_x"]),
            "solutions_pinned": check(True),
        }
        return cell

    def run_pool() -> dict:
        cell = bench_pool_throughput(args)
        cell["gate"] = {
            "pool_throughput": ratio(cell["throughput_x"]),
            "solutions_pinned": check(True),
        }
        return cell

    config = {"nodes": args.nodes, "attach": args.attach,
              "triangle_p": args.triangle_p, "k": args.k,
              "bb_nodes": args.bb_nodes, "bb_p": args.bb_p,
              "workers": args.workers, "batch_rounds": args.batch_rounds,
              "repeats": args.repeats, "seed": args.seed,
              "start_method": args.start_method}
    return [
        CellSpec("heapinit", run_heapinit, config),
        CellSpec("exact_bb", run_bb, config),
        CellSpec("pool_throughput", run_pool, config),
    ]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    start_method = resolve_context(args.start_method).get_start_method()
    print(f"cpus={os.cpu_count()} start_method={start_method} "
          f"workers={args.workers}")

    print(f"cell 1: lp heapinit, n={args.nodes} k={args.k}, "
          f"1 vs {args.workers} workers")
    heapinit_cell = bench_heapinit(args)
    print(f"  sequential {heapinit_cell['sequential_s']:.3f}s  "
          f"parallel {heapinit_cell['parallel_s']:.3f}s  "
          f"speedup x{heapinit_cell['speedup_x']:.2f}  "
          f"(solutions + stats pinned)")

    print(f"cell 2: opt-bb, G({args.bb_nodes}, {args.bb_p}) k={args.k}")
    bb_cell = bench_exact_bb(args)
    print(f"  sequential {bb_cell['sequential_s']:.3f}s  "
          f"parallel {bb_cell['parallel_s']:.3f}s  "
          f"speedup x{bb_cell['speedup_x']:.2f}  "
          f"tasks={bb_cell['subtree_tasks']}")

    print(f"cell 3: pool fan-out, {4 * args.batch_rounds} solves")
    pool_cell = bench_pool_throughput(args)
    print(f"  inline {pool_cell['inline_requests_per_sec']:.2f} req/s  "
          f"pool {pool_cell['pool_requests_per_sec']:.2f} req/s  "
          f"scaling x{pool_cell['throughput_x']:.2f}")

    payload = {
        "bench": "parallel",
        "config": {
            "nodes": args.nodes,
            "attach": args.attach,
            "triangle_p": args.triangle_p,
            "k": args.k,
            "bb_nodes": args.bb_nodes,
            "bb_p": args.bb_p,
            "workers": args.workers,
            "batch_rounds": args.batch_rounds,
            "repeats": args.repeats,
            "seed": args.seed,
            "start_method": start_method,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "heapinit": heapinit_cell,
        "exact_bb": bb_cell,
        "pool_throughput": pool_cell,
        "headline": {
            "heapinit_speedup_x": heapinit_cell["speedup_x"],
            "exact_bb_speedup_x": bb_cell["speedup_x"],
            "pool_throughput_x": pool_cell["throughput_x"],
            "solutions_pinned": "all cells asserted equal to sequential",
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
    print(f"wrote {args.out}")

    failures = []
    for name, cell, key in (("heapinit", heapinit_cell, "speedup_x"),
                            ("opt-bb", bb_cell, "speedup_x"),
                            ("pool", pool_cell, "throughput_x")):
        if cell[key] < args.min_scaling:
            failures.append(f"{name} x{cell[key]:.2f} < x{args.min_scaling}")
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
