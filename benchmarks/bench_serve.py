#!/usr/bin/env python
"""Serving-layer benchmark: warm pool vs cold sessions, worker scaling.

Drives the in-process :class:`repro.serve.client.Client` (which speaks
the real NDJSON schemas, so serialisation is on the clock) and records
two cells to a JSON artifact:

**Cell 1 — warm pool vs cold sessions (same graph).** A mixed
solve/count/bounds request stream over one mid-size tenant, repeated
for ``--rounds`` rounds. *cold* clears the session pool before every
request, so each one pays the full preprocessing bill; *warm* keeps the
pool, so repeats hit cached substrates. Every served solve is asserted
identical to a direct ``Session.solve`` — serving must be a transport,
never a different algorithm. Expectation: warm throughput ≥ 2x cold
(``--min-warm-ratio``).

**Cell 2 — scheduler scaling on a multi-graph mix.** Wave traffic
against four tenants: one expensive solve (big graph, generous
deadline, ``normal`` lane) followed by a burst of cheap solves (small
graphs, tight deadline, ``high`` lane), all submitted asynchronously.
Run once with 1 worker and once with ``--workers``. The scaling metric
is **deadline goodput** (deadline-met requests per second): on
multi-core machines extra workers also raise raw throughput, but on a
single core the honest and still-real win is that cheap requests get
GIL timeslices instead of being starved behind the long solve, so they
meet deadlines that a 1-worker queue blows. Expectation: goodput
scaling > 1x (``--min-scaling``). Cheap-request latency percentiles
(from scheduler ticket timestamps) are recorded for both configs.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json

This file is a standalone script (not collected by pytest); the CI
bench-smoke job runs it at reduced scale and uploads the artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import Session  # noqa: E402
from repro.errors import DeadlineExceededError  # noqa: E402
from repro.graph.generators import powerlaw_cluster  # noqa: E402
from repro.serve import Client, Server  # noqa: E402

#: Cell-1 request mix: what a tenant repeatedly asks about one graph.
MIX = (
    ("solve", 3, "lp"),
    ("count", 3, None),
    ("solve", 3, "gc"),
    ("bounds", 3, None),
    ("solve", 4, "lp"),
    ("count", 4, None),
    ("solve", 4, "gc"),
    ("bounds", 4, None),
)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 100])."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[index]


def run_mix_request(client: Client, kind: str, k: int, method: str | None):
    if kind == "solve":
        return client.solve("tenant", k, method)
    if kind == "count":
        return client.count("tenant", k)
    return client.bounds("tenant", k)


def bench_warm_vs_cold(graph, rounds: int) -> dict:
    """Cell 1: identical request stream, pooled vs per-request sessions."""
    reference = {}
    session = Session(graph)
    for kind, k, method in MIX:
        if kind == "solve":
            reference[(k, method)] = [
                list(c) for c in session.solve(k, method).sorted_cliques()
            ]

    results = {}
    for mode in ("cold", "warm"):
        server = Server(workers=1, queue_limit=256)
        client = Client(server)
        client.register_graph("tenant", graph)
        latencies = []
        round_times = []
        for _ in range(rounds):
            round_start = time.perf_counter()
            for kind, k, method in MIX:
                if mode == "cold":
                    server.pool.clear()
                t0 = time.perf_counter()
                payload = run_mix_request(client, kind, k, method)
                latencies.append(time.perf_counter() - t0)
                if kind == "solve":
                    assert payload["cliques"] == reference[(k, method)], (
                        f"serving diverged from direct Session.solve "
                        f"({mode}, {method}, k={k})"
                    )
            round_times.append(time.perf_counter() - round_start)
        server.close()
        requests = rounds * len(MIX)
        # Throughput from the median round: robust to one-off noise
        # spikes (GC, background load) that would skew an aggregate.
        median_round = statistics.median(round_times)
        results[mode] = {
            "requests": requests,
            "seconds": round(sum(round_times), 4),
            "median_round_s": round(median_round, 4),
            "requests_per_sec": round(len(MIX) / median_round, 2),
            "latency_p50_ms": round(1e3 * percentile(latencies, 50), 3),
            "latency_p90_ms": round(1e3 * percentile(latencies, 90), 3),
            "latency_p99_ms": round(1e3 * percentile(latencies, 99), 3),
        }
    results["warm_vs_cold_x"] = round(
        results["warm"]["requests_per_sec"] / results["cold"]["requests_per_sec"], 3
    )
    return results


def run_waves(
    server: Server,
    client: Client,
    waves: int,
    cheap_per_wave: int,
    cheap_tenants: list[str],
    cheap_deadline: float,
) -> dict:
    """Submit the wave traffic; return goodput and latency numbers.

    Each wave models an interactive burst arriving while a long
    analytics solve is *already running*: the expensive request is
    submitted first and the wave waits for a worker to pick it up
    before the cheap burst lands. With one worker that is classic
    head-of-line blocking (the burst can only be served after the long
    solve, far past its deadline); with N workers the high lane drains
    concurrently.
    """
    ok, shed, other = 0, 0, 0
    cheap_latencies = []
    start = time.perf_counter()
    for wave in range(waves):
        expensive = client.start(
            "solve", graph="big", k=4, method="lp",
            deadline=60.0, include_cliques=False,
        )
        while expensive.ticket.started_at is None and not expensive.done:
            time.sleep(0.001)
        pending = [expensive]
        for i in range(cheap_per_wave):
            tenant = cheap_tenants[(wave * cheap_per_wave + i) % len(cheap_tenants)]
            pending.append(
                client.start(
                    "solve", graph=tenant, k=3, method="lp",
                    priority="high", deadline=cheap_deadline,
                    include_cliques=False,
                )
            )
        for index, call in enumerate(pending):
            try:
                call.result(120)
            except DeadlineExceededError:
                shed += 1
                continue
            except Exception:  # noqa: BLE001 - tallied, not expected
                other += 1
                continue
            ok += 1
            ticket = call.ticket
            if index > 0 and ticket.finished_at is not None:
                cheap_latencies.append(ticket.finished_at - ticket.submitted_at)
    elapsed = time.perf_counter() - start
    stats = server.scheduler.info()
    return {
        "workers": stats["workers"],
        "requests": waves * (1 + cheap_per_wave),
        "ok": ok,
        "shed_deadline": shed,
        "errors": other,
        "seconds": round(elapsed, 4),
        "goodput_per_sec": round(ok / elapsed, 2),
        "cheap_latency_p50_ms": round(
            1e3 * percentile(cheap_latencies, 50), 3
        ) if cheap_latencies else None,
        "cheap_latency_p99_ms": round(
            1e3 * percentile(cheap_latencies, 99), 3
        ) if cheap_latencies else None,
    }


def bench_worker_scaling(args) -> dict:
    """Cell 2: the same wave traffic under 1 vs N scheduler workers."""
    big = powerlaw_cluster(
        args.big_nodes, args.big_attach, args.triangle_p, seed=args.seed
    )
    smalls = {
        f"small-{i}": powerlaw_cluster(
            args.small_nodes, 6, 0.6, seed=args.seed + 10 + i
        )
        for i in range(3)
    }
    results = {}
    for workers in (1, args.workers):
        server = Server(workers=workers, queue_limit=1024)
        client = Client(server)
        client.register_graph("big", big)
        for name, graph in smalls.items():
            client.register_graph(name, graph)
        client.warm("big", [4])
        for name in smalls:
            client.warm(name, [3])
        results[f"workers-{workers}"] = run_waves(
            server,
            client,
            args.waves,
            args.cheap_per_wave,
            list(smalls),
            args.cheap_deadline,
        )
        server.close()
    one = results["workers-1"]["goodput_per_sec"]
    many = results[f"workers-{args.workers}"]["goodput_per_sec"]
    results["goodput_scaling_x"] = round(many / one, 3)
    return results


def build_parser() -> argparse.ArgumentParser:
    """CLI options (also the source of defaults for runner cells)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=4000,
                        help="cell-1 tenant graph size")
    parser.add_argument("--attach", type=int, default=12)
    parser.add_argument("--triangle-p", type=float, default=0.85)
    parser.add_argument("--rounds", type=int, default=10,
                        help="cell-1 repetitions of the request mix")
    parser.add_argument("--big-nodes", type=int, default=16000,
                        help="cell-2 expensive tenant size")
    parser.add_argument("--big-attach", type=int, default=16)
    parser.add_argument("--small-nodes", type=int, default=600,
                        help="cell-2 cheap tenant size")
    parser.add_argument("--waves", type=int, default=6)
    parser.add_argument("--cheap-per-wave", type=int, default=10)
    parser.add_argument("--cheap-deadline", type=float, default=0.25,
                        help="deadline (s) on cheap wave requests")
    parser.add_argument("--workers", type=int, default=4,
                        help="cell-2 N-worker configuration")
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--min-warm-ratio", type=float, default=2.0,
                        help="fail below this warm/cold throughput ratio")
    parser.add_argument("--min-scaling", type=float, default=1.0,
                        help="fail at or below this goodput scaling")
    parser.add_argument("--out", default="BENCH_serve.json")
    return parser


def cells(smoke: bool = False) -> list:
    """Runner cells: warm-vs-cold pool and scheduler goodput scaling.

    The warm/cold cell asserts every served solve equal to a direct
    ``Session.solve`` in-band (``served_matches_direct``); cross-mode
    gating treats the throughput ratios as coverage-only.
    """
    from repro.bench.runner import CellSpec, check, ratio
    from repro.bench.workloads import seed_for

    args = build_parser().parse_args([])
    args.seed = seed_for("social_graph")
    if smoke:
        args.nodes, args.rounds = 2000, 3
        args.big_nodes, args.big_attach = 6000, 12
        args.waves, args.cheap_per_wave = 3, 6

    def run_pool() -> dict:
        graph = powerlaw_cluster(args.nodes, args.attach, args.triangle_p,
                                 seed=args.seed)
        pool_cell = bench_warm_vs_cold(graph, args.rounds)
        return {
            "cold": pool_cell["cold"],
            "warm": pool_cell["warm"],
            "gate": {
                "warm_vs_cold": ratio(pool_cell["warm_vs_cold_x"]),
                "served_matches_direct": check(True),
            },
        }

    def run_scaling() -> dict:
        scaling_cell = bench_worker_scaling(args)
        return {
            "workers_1": scaling_cell["workers-1"],
            f"workers_{args.workers}": scaling_cell[f"workers-{args.workers}"],
            "gate": {
                "worker_scaling": ratio(scaling_cell["goodput_scaling_x"]),
            },
        }

    pool_config = {"nodes": args.nodes, "attach": args.attach,
                   "triangle_p": args.triangle_p, "rounds": args.rounds,
                   "seed": args.seed}
    scaling_config = {"big_nodes": args.big_nodes, "big_attach": args.big_attach,
                      "small_nodes": args.small_nodes, "waves": args.waves,
                      "cheap_per_wave": args.cheap_per_wave,
                      "cheap_deadline": args.cheap_deadline,
                      "workers": args.workers, "seed": args.seed}
    return [
        CellSpec("warm_vs_cold", run_pool, pool_config),
        CellSpec("worker_scaling", run_scaling, scaling_config),
    ]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    graph = powerlaw_cluster(args.nodes, args.attach, args.triangle_p,
                             seed=args.seed)
    print(f"cell 1 tenant: n={graph.n} m={graph.m}; "
          f"mix of {len(MIX)} requests x {args.rounds} rounds")
    pool_cell = bench_warm_vs_cold(graph, args.rounds)
    for mode in ("cold", "warm"):
        row = pool_cell[mode]
        print(f"  {mode:<5} {row['requests_per_sec']:>8.2f} req/s  "
              f"p50={row['latency_p50_ms']:.1f}ms p99={row['latency_p99_ms']:.1f}ms")
    print(f"  warm pool speedup: x{pool_cell['warm_vs_cold_x']:.2f}")

    print(f"cell 2: waves={args.waves}, 1 expensive + {args.cheap_per_wave} "
          f"cheap (deadline {args.cheap_deadline}s) per wave")
    scaling_cell = bench_worker_scaling(args)
    for key in (f"workers-1", f"workers-{args.workers}"):
        row = scaling_cell[key]
        p50 = row["cheap_latency_p50_ms"]
        print(f"  {key:<10} goodput={row['goodput_per_sec']:>7.2f}/s  "
              f"ok={row['ok']}/{row['requests']} shed={row['shed_deadline']} "
              f"cheap-p50={p50 if p50 is not None else 'n/a'}ms")
    print(f"  goodput scaling: x{scaling_cell['goodput_scaling_x']:.2f} "
          f"(deadline-met requests/sec, {args.workers} vs 1 workers)")

    payload = {
        "bench": "serve",
        "config": {
            "generator": "powerlaw_cluster",
            "nodes": args.nodes,
            "attach": args.attach,
            "triangle_p": args.triangle_p,
            "rounds": args.rounds,
            "mix": [list(entry) for entry in MIX],
            "big_nodes": args.big_nodes,
            "small_nodes": args.small_nodes,
            "waves": args.waves,
            "cheap_per_wave": args.cheap_per_wave,
            "cheap_deadline": args.cheap_deadline,
            "workers": args.workers,
            "seed": args.seed,
            "python": platform.python_version(),
        },
        "warm_vs_cold": pool_cell,
        "worker_scaling": scaling_cell,
        "headline": {
            "warm_vs_cold_x": pool_cell["warm_vs_cold_x"],
            "worker_scaling_x": scaling_cell["goodput_scaling_x"],
            "worker_scaling_metric": "deadline goodput (ok requests/sec)",
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
    print(f"wrote {args.out}")

    failures = []
    if pool_cell["warm_vs_cold_x"] < args.min_warm_ratio:
        failures.append(
            f"warm pool speedup x{pool_cell['warm_vs_cold_x']:.2f} "
            f"< x{args.min_warm_ratio}"
        )
    if scaling_cell["goodput_scaling_x"] <= args.min_scaling:
        failures.append(
            f"goodput scaling x{scaling_cell['goodput_scaling_x']:.2f} "
            f"<= x{args.min_scaling}"
        )
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
