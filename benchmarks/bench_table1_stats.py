"""Table I bench: per-k clique counting on the dataset registry.

Regenerates the dataset-statistics table; the benchmark target is the
counting kernel (node scores are computed by the same enumeration).
"""

import pytest

from repro.cliques import count_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
def test_count_cliques_ftb(benchmark, ftb, k):
    count = benchmark(count_cliques, ftb, k)
    benchmark.extra_info["clique_count"] = count
    assert count >= 0


@pytest.mark.parametrize("k", KS)
def test_count_cliques_hst(benchmark, hst, k):
    count = benchmark(count_cliques, hst, k)
    benchmark.extra_info["clique_count"] = count


@pytest.mark.parametrize("k", (3, 4))
def test_count_cliques_fbp(benchmark, fbp, k):
    count = benchmark(count_cliques, fbp, k)
    benchmark.extra_info["clique_count"] = count


def test_table1_rows_are_stable(ftb, hst):
    """The registry is seeded: Table I cells must be bit-stable."""
    assert ftb.n == 115 and ftb.m == 517
    assert count_cliques(ftb, 3) == 424
    assert count_cliques(ftb, 4) == 188
    assert hst.n == 1858
