"""Table I bench: per-k clique counting on the dataset registry.

Regenerates the dataset-statistics table; the benchmark target is the
counting kernel (node scores are computed by the same enumeration).
"""

import pytest

from repro.cliques import count_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
def test_count_cliques_ftb(benchmark, ftb, k):
    count = benchmark(count_cliques, ftb, k)
    benchmark.extra_info["clique_count"] = count
    assert count >= 0


@pytest.mark.parametrize("k", KS)
def test_count_cliques_hst(benchmark, hst, k):
    count = benchmark(count_cliques, hst, k)
    benchmark.extra_info["clique_count"] = count


@pytest.mark.parametrize("k", (3, 4))
def test_count_cliques_fbp(benchmark, fbp, k):
    count = benchmark(count_cliques, fbp, k)
    benchmark.extra_info["clique_count"] = count


def test_table1_rows_are_stable(ftb, hst):
    """The registry is seeded: Table I cells must be bit-stable."""
    assert ftb.n == 115 and ftb.m == 517
    assert count_cliques(ftb, 3) == 424
    assert count_cliques(ftb, 4) == 188
    assert hst.n == 1858


def cells(smoke: bool = False) -> list:
    """Runner cells: regenerate Table I plus the registry stability gate."""
    from repro.bench.experiments import run_table1
    from repro.bench.runner import CellSpec, check, quality
    from repro.graph import datasets

    names = ["FTB", "HST"] if smoke else None
    ks = (3, 4) if smoke else KS

    def run() -> dict:
        result = run_table1(names, ks)
        ftb = datasets.load("FTB")
        stable = (
            ftb.n == 115 and ftb.m == 517
            and count_cliques(ftb, 3) == 424
            and count_cliques(ftb, 4) == 188
            and datasets.load("HST").n == 1858
        )
        total = sum(
            row[f"k{k}"] for row in result.data.values() for k in ks
        )
        return {
            "datasets": {name: {"n": row["n"], "m": row["m"]}
                         for name, row in result.data.items()},
            "gate": {
                "registry_stable": check(stable),
                "clique_count_total": quality(total),
            },
            "artefact": result.text,
        }

    config = {"names": list(names) if names else "all", "ks": list(ks)}
    return [CellSpec("table1", run, config)]
