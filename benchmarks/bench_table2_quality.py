"""Table II bench: solution quality (|S|) per algorithm.

The paper's finding: GC == LP (Theorem 4 under fixed orderings), both
within a few % of OPT, and up to 13.3% above HG on clique-rich graphs.
"""

import pytest

from repro.core.api import find_disjoint_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
def test_lp_vs_hg_quality(benchmark, fb, k):
    lp = benchmark.pedantic(
        find_disjoint_cliques, args=(fb, k, "lp"), rounds=1, iterations=1
    )
    hg = find_disjoint_cliques(fb, k, "hg")
    benchmark.extra_info["lp_size"] = lp.size
    benchmark.extra_info["hg_size"] = hg.size
    benchmark.extra_info["gain_pct"] = round(100 * (lp.size - hg.size) / hg.size, 2)
    # The paper's headline: LP at least matches HG on clique-rich graphs
    # (up to +13.3%); allow a tiny slack for heuristic noise.
    assert lp.size >= hg.size * 0.98


@pytest.mark.parametrize("k", (3, 4, 5))
def test_gc_equals_lp(benchmark, ftb, k):
    gc = benchmark.pedantic(
        find_disjoint_cliques, args=(ftb, k, "gc"), rounds=1, iterations=1
    )
    lp = find_disjoint_cliques(ftb, k, "lp")
    assert gc.sorted_cliques() == lp.sorted_cliques()


@pytest.mark.parametrize("k", (4, 5))
def test_lp_close_to_opt_on_tiny(benchmark, k):
    from repro.graph import datasets

    graph = datasets.load("Tortoise")
    lp = benchmark.pedantic(
        find_disjoint_cliques, args=(graph, k, "lp"), rounds=1, iterations=1
    )
    opt = find_disjoint_cliques(graph, k, "opt")
    benchmark.extra_info["lp"] = lp.size
    benchmark.extra_info["opt"] = opt.size
    assert lp.size >= opt.size - 1  # paper Table IV: ER <= 8%
