"""Table II bench: solution quality (|S|) per algorithm.

The paper's finding: GC == LP (Theorem 4 under fixed orderings), both
within a few % of OPT, and up to 13.3% above HG on clique-rich graphs.
"""

import pytest

from repro.core.api import find_disjoint_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
def test_lp_vs_hg_quality(benchmark, fb, k):
    lp = benchmark.pedantic(
        find_disjoint_cliques, args=(fb, k, "lp"), rounds=1, iterations=1
    )
    hg = find_disjoint_cliques(fb, k, "hg")
    benchmark.extra_info["lp_size"] = lp.size
    benchmark.extra_info["hg_size"] = hg.size
    benchmark.extra_info["gain_pct"] = round(100 * (lp.size - hg.size) / hg.size, 2)
    # The paper's headline: LP at least matches HG on clique-rich graphs
    # (up to +13.3%); allow a tiny slack for heuristic noise.
    assert lp.size >= hg.size * 0.98


@pytest.mark.parametrize("k", (3, 4, 5))
def test_gc_equals_lp(benchmark, ftb, k):
    gc = benchmark.pedantic(
        find_disjoint_cliques, args=(ftb, k, "gc"), rounds=1, iterations=1
    )
    lp = find_disjoint_cliques(ftb, k, "lp")
    assert gc.sorted_cliques() == lp.sorted_cliques()


@pytest.mark.parametrize("k", (4, 5))
def test_lp_close_to_opt_on_tiny(benchmark, k):
    from repro.graph import datasets

    graph = datasets.load("Tortoise")
    lp = benchmark.pedantic(
        find_disjoint_cliques, args=(graph, k, "lp"), rounds=1, iterations=1
    )
    opt = find_disjoint_cliques(graph, k, "opt")
    benchmark.extra_info["lp"] = lp.size
    benchmark.extra_info["opt"] = opt.size
    assert lp.size >= opt.size - 1  # paper Table IV: ER <= 8%


def cells(smoke: bool = False) -> list:
    """Runner cells: Table II from the shared sweep + GC==LP identity."""
    from repro.bench.experiments import cached_static_sweep, run_table2
    from repro.bench.runner import CellSpec, check, load_bench_module, quality
    from repro.graph import datasets

    plan = load_bench_module("bench_fig6_runtime").smoke_static_plan(smoke)

    def run() -> dict:
        sweep = cached_static_sweep(
            plan["names"], plan["ks"],
            time_budget=plan["time_budget"],
            clique_budget=plan["clique_budget"],
        )
        result = run_table2(sweep, plan["names"], plan["ks"])
        lp_total = 0
        lp_at_least_hg = True
        for name in plan["names"]:
            for k in plan["ks"]:
                hg = sweep.get((name, k, "hg"))
                lp = sweep.get((name, k, "lp"))
                if lp and lp.ok:
                    lp_total += lp.value
                if hg and hg.ok and lp and lp.ok and lp.value < hg.value * 0.98:
                    lp_at_least_hg = False
        # Differential identity, stronger than matching sizes: GC and LP
        # must return the *same cliques* under the shared ordering.
        ftb = datasets.load("FTB")
        gc_equals_lp = (
            find_disjoint_cliques(ftb, 3, "gc").sorted_cliques()
            == find_disjoint_cliques(ftb, 3, "lp").sorted_cliques()
        )
        return {
            "lp_size_by_cell": {
                f"{name}-k{k}": sweep[(name, k, "lp")].value
                for name in plan["names"] for k in plan["ks"]
                if sweep.get((name, k, "lp")) and sweep[(name, k, "lp")].ok
            },
            "gate": {
                "gc_equals_lp": check(gc_equals_lp),
                "lp_at_least_hg": check(lp_at_least_hg),
                "lp_size_total": quality(lp_total),
            },
            "artefact": result.text,
        }

    config = {"names": plan["names"], "ks": list(plan["ks"])}
    return [CellSpec("table2", run, config)]
