"""Table III bench: peak memory per algorithm.

The paper's finding: HG and LP stay O(n+m); GC's footprint scales with
the clique count and eventually OOMs. Peaks are measured with
tracemalloc around a single solve.
"""

import tracemalloc

import pytest

from repro.core.api import find_disjoint_cliques
from repro.errors import OutOfMemoryError


def peak_mb(fn) -> float:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / (1024 * 1024)


@pytest.mark.parametrize("method", ("hg", "gc", "lp"))
def test_memory_profile_hst(benchmark, hst, method):
    peak = benchmark.pedantic(
        peak_mb,
        args=(lambda: find_disjoint_cliques(hst, 4, method),),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["peak_mb"] = round(peak, 2)


def test_gc_memory_dominates_lp(fb):
    """On the clique-rich FB dataset at k=3, GC's stored cliques must
    cost several times LP's O(n+m) working set."""
    gc_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "gc"))
    lp_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "lp"))
    hg_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "hg"))
    assert gc_peak > 2 * lp_peak
    assert hg_peak <= lp_peak * 1.5 + 1


def test_gc_ooms_under_budget(fb):
    """With the default clique budget, GC must OOM on FB at k=5 (420K
    cliques > 250K budget) — the paper's Table III outcome."""
    from repro.bench.harness import DEFAULT_CLIQUE_BUDGET

    with pytest.raises(OutOfMemoryError):
        find_disjoint_cliques(fb, 5, "gc", max_cliques=DEFAULT_CLIQUE_BUDGET)


def test_lp_survives_where_gc_dies(benchmark, fb):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(fb, 5, "lp"), rounds=1, iterations=1
    )
    assert result.size > 0
