"""Table III bench: peak memory per algorithm.

The paper's finding: HG and LP stay O(n+m); GC's footprint scales with
the clique count and eventually OOMs. Peaks are measured with
tracemalloc around a single solve.
"""

import tracemalloc

import pytest

from repro.core.api import find_disjoint_cliques
from repro.errors import OutOfMemoryError


def peak_mb(fn) -> float:
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / (1024 * 1024)


@pytest.mark.parametrize("method", ("hg", "gc", "lp"))
def test_memory_profile_hst(benchmark, hst, method):
    peak = benchmark.pedantic(
        peak_mb,
        args=(lambda: find_disjoint_cliques(hst, 4, method),),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["peak_mb"] = round(peak, 2)


def test_gc_memory_dominates_lp(fb):
    """On the clique-rich FB dataset at k=3, GC's stored cliques must
    cost several times LP's O(n+m) working set."""
    gc_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "gc"))
    lp_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "lp"))
    hg_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "hg"))
    assert gc_peak > 2 * lp_peak
    assert hg_peak <= lp_peak * 1.5 + 1


def test_gc_ooms_under_budget(fb):
    """With the default clique budget, GC must OOM on FB at k=5 (420K
    cliques > 250K budget) — the paper's Table III outcome."""
    from repro.bench.harness import DEFAULT_CLIQUE_BUDGET

    with pytest.raises(OutOfMemoryError):
        find_disjoint_cliques(fb, 5, "gc", max_cliques=DEFAULT_CLIQUE_BUDGET)


def test_lp_survives_where_gc_dies(benchmark, fb):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(fb, 5, "lp"), rounds=1, iterations=1
    )
    assert result.size > 0


def cells(smoke: bool = False) -> list:
    """Runner cells: Table III artefact plus the FB memory-shape gate."""
    from repro.bench.experiments import cached_static_sweep, run_table3
    from repro.bench.harness import DEFAULT_CLIQUE_BUDGET
    from repro.bench.runner import CellSpec, check, load_bench_module
    from repro.graph import datasets

    plan = load_bench_module("bench_fig6_runtime").smoke_static_plan(smoke)

    def run_artefact() -> dict:
        sweep = cached_static_sweep(
            plan["names"], plan["ks"],
            time_budget=plan["time_budget"],
            clique_budget=plan["clique_budget"],
        )
        result = run_table3(sweep, plan["names"], plan["ks"])
        peaks = {
            f"{name}-k{k}-{method}": round(cell.peak_mb, 2)
            for (name, k, method), cell in sweep.items()
            if cell.ok and cell.peak_mb
        }
        return {"peak_mb_by_cell": peaks, "artefact": result.text}

    def run_memory_shape() -> dict:
        fb = datasets.load("FB")
        gc_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "gc"))
        lp_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "lp"))
        hg_peak = peak_mb(lambda: find_disjoint_cliques(fb, 3, "hg"))
        try:
            find_disjoint_cliques(fb, 5, "gc", max_cliques=DEFAULT_CLIQUE_BUDGET)
            gc_ooms = False
        except OutOfMemoryError:
            gc_ooms = True
        return {
            "gc_peak_mb": round(gc_peak, 2),
            "lp_peak_mb": round(lp_peak, 2),
            "hg_peak_mb": round(hg_peak, 2),
            "gate": {
                "gc_dominates_lp": check(gc_peak > 2 * lp_peak),
                "hg_within_lp_band": check(hg_peak <= lp_peak * 1.5 + 1),
                "gc_ooms_at_budget": check(gc_ooms),
            },
        }

    return [
        CellSpec("table3", run_artefact,
                 {"names": plan["names"], "ks": list(plan["ks"])}),
        CellSpec("memory_shape_fb", run_memory_shape,
                 {"dataset": "FB", "k": 3,
                  "clique_budget": DEFAULT_CLIQUE_BUDGET}),
    ]
