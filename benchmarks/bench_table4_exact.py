"""Table IV bench: LP vs the exact solution on small datasets.

The paper's finding: LP matches OPT in most cells (error ratio <= 8%),
while OPT itself times out even on tiny graphs at k=3.
"""

import pytest

from repro.core.api import find_disjoint_cliques
from repro.graph import datasets

SMALL = ("Swallow", "Tortoise", "Lizard", "Voles")


@pytest.mark.parametrize("name", SMALL)
@pytest.mark.parametrize("k", (4, 5))
def test_lp_error_ratio(benchmark, name, k):
    graph = datasets.load(name)
    lp = benchmark(find_disjoint_cliques, graph, k, "lp")
    opt = find_disjoint_cliques(graph, k, "opt")
    benchmark.extra_info["lp"] = lp.size
    benchmark.extra_info["opt"] = opt.size
    error = 0.0 if opt.size == 0 else (opt.size - lp.size) / opt.size
    benchmark.extra_info["error_ratio_pct"] = round(100 * error, 1)
    assert error <= 0.34  # paper: <= 8% typical; generous band for scale


@pytest.mark.parametrize("name", ("Swallow", "Tortoise"))
def test_opt_runtime_small(benchmark, name):
    graph = datasets.load(name)
    result = benchmark(find_disjoint_cliques, graph, 4, "opt")
    benchmark.extra_info["opt_size"] = result.size
