"""Table IV bench: LP vs the exact solution on small datasets.

The paper's finding: LP matches OPT in most cells (error ratio <= 8%),
while OPT itself times out even on tiny graphs at k=3.
"""

import pytest

from repro.core.api import find_disjoint_cliques
from repro.graph import datasets

SMALL = ("Swallow", "Tortoise", "Lizard", "Voles")


@pytest.mark.parametrize("name", SMALL)
@pytest.mark.parametrize("k", (4, 5))
def test_lp_error_ratio(benchmark, name, k):
    graph = datasets.load(name)
    lp = benchmark(find_disjoint_cliques, graph, k, "lp")
    opt = find_disjoint_cliques(graph, k, "opt")
    benchmark.extra_info["lp"] = lp.size
    benchmark.extra_info["opt"] = opt.size
    error = 0.0 if opt.size == 0 else (opt.size - lp.size) / opt.size
    benchmark.extra_info["error_ratio_pct"] = round(100 * error, 1)
    assert error <= 0.34  # paper: <= 8% typical; generous band for scale


@pytest.mark.parametrize("name", ("Swallow", "Tortoise"))
def test_opt_runtime_small(benchmark, name):
    graph = datasets.load(name)
    result = benchmark(find_disjoint_cliques, graph, 4, "opt")
    benchmark.extra_info["opt_size"] = result.size


def cells(smoke: bool = False) -> list:
    """Runner cells: Table IV, gating LP against the exact optimum."""
    from repro.bench.experiments import run_table4
    from repro.bench.runner import CellSpec, check, quality

    names = ["Swallow", "Tortoise"] if smoke else None
    ks = (4, 5) if smoke else (3, 4, 5, 6)
    time_budget = 10.0 if smoke else 60.0

    def run() -> dict:
        result = run_table4(names, ks, time_budget=time_budget)
        lp_total = 0
        within_band = True
        for per_k in result.data.values():
            for cell in per_k.values():
                lp_total += cell["lp"]
                opt = cell["opt"]
                if isinstance(opt, int) and opt > 0:
                    if (opt - cell["lp"]) / opt > 0.34:
                        within_band = False
        return {
            "grid": result.data,
            "gate": {
                "lp_within_band": check(within_band),
                "lp_size_total": quality(lp_total),
            },
            "artefact": result.text,
        }

    config = {"names": list(names) if names else "all", "ks": list(ks),
              "time_budget": time_budget}
    return [CellSpec("table4", run, config)]
