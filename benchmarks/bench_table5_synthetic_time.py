"""Table V bench: runtime scalability on synthetic Watts-Strogatz graphs.

The paper's finding: runtimes grow with density; HG stays k-insensitive
while GC/LP track the clique count. Scaled from the paper's n=1M to
n=400 here (pure-Python substrate; see DESIGN.md §4).
"""

import pytest

from repro.core.api import find_disjoint_cliques
from repro.graph.generators import watts_strogatz

N = 400


@pytest.fixture(scope="module")
def ws_graphs():
    return {deg: watts_strogatz(N, deg, 0.3, seed=7) for deg in (8, 16, 32)}


@pytest.mark.parametrize("degree", (8, 16, 32))
@pytest.mark.parametrize("method", ("hg", "lp"))
def test_ws_k3(benchmark, ws_graphs, degree, method):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(ws_graphs[degree], 3, method),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("method", ("hg", "gc", "lp"))
def test_ws_degree16_k4(benchmark, ws_graphs, method):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(ws_graphs[16], 4, method),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["size"] = result.size


def test_hg_runtime_k_insensitive(ws_graphs):
    """HG's cost must stay nearly flat in k (paper Table V)."""
    import time

    g = ws_graphs[16]
    times = []
    for k in (3, 4, 5, 6):
        start = time.perf_counter()
        find_disjoint_cliques(g, k, "hg")
        times.append(time.perf_counter() - start)
    assert max(times) < 10 * min(times)
