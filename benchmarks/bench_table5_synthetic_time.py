"""Table V bench: runtime scalability on synthetic Watts-Strogatz graphs.

The paper's finding: runtimes grow with density; HG stays k-insensitive
while GC/LP track the clique count. Scaled from the paper's n=1M to
n=400 here (pure-Python substrate; see DESIGN.md §4).
"""

import pytest

from repro.core.api import find_disjoint_cliques
from repro.graph.generators import watts_strogatz

N = 400


@pytest.fixture(scope="module")
def ws_graphs():
    return {deg: watts_strogatz(N, deg, 0.3, seed=7) for deg in (8, 16, 32)}


@pytest.mark.parametrize("degree", (8, 16, 32))
@pytest.mark.parametrize("method", ("hg", "lp"))
def test_ws_k3(benchmark, ws_graphs, degree, method):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(ws_graphs[degree], 3, method),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["size"] = result.size


@pytest.mark.parametrize("method", ("hg", "gc", "lp"))
def test_ws_degree16_k4(benchmark, ws_graphs, method):
    result = benchmark.pedantic(
        find_disjoint_cliques, args=(ws_graphs[16], 4, method),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["size"] = result.size


def test_hg_runtime_k_insensitive(ws_graphs):
    """HG's cost must stay nearly flat in k (paper Table V)."""
    import time

    g = ws_graphs[16]
    times = []
    for k in (3, 4, 5, 6):
        start = time.perf_counter()
        find_disjoint_cliques(g, k, "hg")
        times.append(time.perf_counter() - start)
    assert max(times) < 10 * min(times)


def smoke_synthetic_plan(smoke: bool) -> dict:
    """Shared Watts-Strogatz sweep parameters for Tables V and VI."""
    if smoke:
        return {"degrees": (8, 16), "n": 300, "ks": (3, 4)}
    from repro.bench.harness import scaled

    return {"degrees": (8, 16, 32, 64), "n": scaled(1000, minimum=100),
            "ks": (3, 4, 5, 6)}


def cells(smoke: bool = False) -> list:
    """Runner cells: Table V runtimes from the shared synthetic sweep."""
    from repro.bench.experiments import cached_synthetic_sweep, run_table5
    from repro.bench.runner import CellSpec, check, quality

    plan = smoke_synthetic_plan(smoke)

    def run() -> dict:
        sweep = cached_synthetic_sweep(plan["degrees"], plan["n"], plan["ks"])
        result = run_table5(sweep, plan["degrees"], plan["ks"])
        top_degree = max(plan["degrees"])
        hg_times = [
            sweep[(top_degree, k, "hg")].seconds
            for k in plan["ks"]
            if sweep.get((top_degree, k, "hg"))
            and sweep[(top_degree, k, "hg")].ok
        ]
        insensitive = bool(hg_times) and max(hg_times) < 10 * max(
            min(hg_times), 1e-9
        )
        ok = sum(1 for cell in sweep.values() if cell.ok)
        return {
            "cells_total": len(sweep),
            "cells_with_result": ok,
            "gate": {
                "hg_k_insensitive": check(insensitive),
                "cells_ok_count": quality(ok),
            },
            "artefact": result.text,
        }

    config = {"degrees": list(plan["degrees"]), "n": plan["n"],
              "ks": list(plan["ks"])}
    return [CellSpec("table5", run, config)]
