"""Table VI bench: |S| on synthetic Watts-Strogatz graphs.

The paper's finding: |S| shrinks as k grows and grows with density;
GC and LP agree (Theorem 4) and differ from HG by a few percent.
"""

import pytest

from repro.core.api import find_disjoint_cliques
from repro.graph.generators import watts_strogatz

N = 400


@pytest.fixture(scope="module")
def ws16():
    return watts_strogatz(N, 16, 0.3, seed=7)


@pytest.mark.parametrize("k", (3, 4, 5))
def test_sizes_per_k(benchmark, ws16, k):
    lp = benchmark.pedantic(
        find_disjoint_cliques, args=(ws16, k, "lp"), rounds=1, iterations=1
    )
    hg = find_disjoint_cliques(ws16, k, "hg")
    gc = find_disjoint_cliques(ws16, k, "gc")
    benchmark.extra_info.update(
        {"hg": hg.size, "gc_delta": gc.size - hg.size, "lp_delta": lp.size - hg.size}
    )
    assert gc.size == lp.size  # Theorem 4 under the shared clique key


def test_size_decreases_with_k(ws16):
    sizes = [find_disjoint_cliques(ws16, k, "lp").size for k in (3, 4, 5, 6)]
    assert sizes == sorted(sizes, reverse=True)


def test_size_increases_with_density():
    sparse = watts_strogatz(N, 8, 0.3, seed=7)
    dense = watts_strogatz(N, 32, 0.3, seed=7)
    assert (
        find_disjoint_cliques(dense, 4, "lp").size
        > find_disjoint_cliques(sparse, 4, "lp").size
    )
