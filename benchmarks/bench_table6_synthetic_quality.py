"""Table VI bench: |S| on synthetic Watts-Strogatz graphs.

The paper's finding: |S| shrinks as k grows and grows with density;
GC and LP agree (Theorem 4) and differ from HG by a few percent.
"""

import pytest

from repro.core.api import find_disjoint_cliques
from repro.graph.generators import watts_strogatz

N = 400


@pytest.fixture(scope="module")
def ws16():
    return watts_strogatz(N, 16, 0.3, seed=7)


@pytest.mark.parametrize("k", (3, 4, 5))
def test_sizes_per_k(benchmark, ws16, k):
    lp = benchmark.pedantic(
        find_disjoint_cliques, args=(ws16, k, "lp"), rounds=1, iterations=1
    )
    hg = find_disjoint_cliques(ws16, k, "hg")
    gc = find_disjoint_cliques(ws16, k, "gc")
    benchmark.extra_info.update(
        {"hg": hg.size, "gc_delta": gc.size - hg.size, "lp_delta": lp.size - hg.size}
    )
    assert gc.size == lp.size  # Theorem 4 under the shared clique key


def test_size_decreases_with_k(ws16):
    sizes = [find_disjoint_cliques(ws16, k, "lp").size for k in (3, 4, 5, 6)]
    assert sizes == sorted(sizes, reverse=True)


def test_size_increases_with_density():
    sparse = watts_strogatz(N, 8, 0.3, seed=7)
    dense = watts_strogatz(N, 32, 0.3, seed=7)
    assert (
        find_disjoint_cliques(dense, 4, "lp").size
        > find_disjoint_cliques(sparse, 4, "lp").size
    )


def cells(smoke: bool = False) -> list:
    """Runner cells: Table VI quality from the shared synthetic sweep."""
    from repro.bench.experiments import cached_synthetic_sweep, run_table6
    from repro.bench.runner import CellSpec, check, load_bench_module, quality

    plan = load_bench_module("bench_table5_synthetic_time").smoke_synthetic_plan(smoke)

    def run() -> dict:
        sweep = cached_synthetic_sweep(plan["degrees"], plan["n"], plan["ks"])
        result = run_table6(sweep, plan["degrees"], plan["ks"])
        lp_total = 0
        gc_equals_lp = True
        for degree in plan["degrees"]:
            for k in plan["ks"]:
                gc = sweep.get((degree, k, "gc"))
                lp = sweep.get((degree, k, "lp"))
                if lp and lp.ok:
                    lp_total += lp.value
                if gc and gc.ok and lp and lp.ok and gc.value != lp.value:
                    gc_equals_lp = False
        return {
            "lp_size_by_cell": {
                f"deg{degree}-k{k}": sweep[(degree, k, "lp")].value
                for degree in plan["degrees"] for k in plan["ks"]
                if sweep.get((degree, k, "lp")) and sweep[(degree, k, "lp")].ok
            },
            "gate": {
                "gc_equals_lp": check(gc_equals_lp),
                "lp_size_total": quality(lp_total),
            },
            "artefact": result.text,
        }

    config = {"degrees": list(plan["degrees"]), "n": plan["n"],
              "ks": list(plan["ks"])}
    return [CellSpec("table6", run, config)]
