"""Table VII bench: candidate-index construction time and size.

The paper's finding: the index is cheap to build and small — its strict
candidate definition (free nodes + one owner) keeps it far below the
clique count (e.g. 1.92M candidates vs 75.2B 6-cliques on Orkut).
"""

import pytest

from repro.dynamic import DynamicDisjointCliques
from repro.cliques import count_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
def test_index_build_ftb(benchmark, ftb, k):
    dyn = benchmark(DynamicDisjointCliques, ftb, k)
    benchmark.extra_info["index_size"] = dyn.index_size
    benchmark.extra_info["solution_size"] = dyn.size


@pytest.mark.parametrize("k", (3, 4))
def test_index_build_hst(benchmark, hst, k):
    dyn = benchmark.pedantic(
        DynamicDisjointCliques, args=(hst, k), rounds=2, iterations=1
    )
    benchmark.extra_info["index_size"] = dyn.index_size


@pytest.mark.parametrize("k", (3, 4))
def test_index_far_smaller_than_clique_count(fb, k):
    """The index must stay well below the total clique population."""
    dyn = DynamicDisjointCliques(fb, k)
    total = count_cliques(fb, k)
    assert dyn.index_size < total / 2


def cells(smoke: bool = False) -> list:
    """Runner cells: Table VII index builds + the compactness gate."""
    from repro.bench.experiments import run_table7
    from repro.bench.runner import CellSpec, check, quality
    from repro.graph import datasets

    names = ["FTB", "HST"] if smoke else None
    ks = (3, 4) if smoke else KS

    def run() -> dict:
        result = run_table7(names, ks)
        index_total = sum(
            cell["index_size"] for per_k in result.data.values()
            for cell in per_k.values()
        )
        ftb = datasets.load("FTB")
        compact = (
            DynamicDisjointCliques(ftb, 3).index_size
            < count_cliques(ftb, 3) / 2
        )
        return {
            "index_size_by_cell": {
                f"{name}-k{k}": per_k[k]["index_size"]
                for name, per_k in result.data.items() for k in per_k
            },
            "gate": {
                "index_below_clique_count": check(compact),
                "index_size_total": quality(index_total),
            },
            "artefact": result.text,
        }

    config = {"names": list(names) if names else "all", "ks": list(ks)}
    return [CellSpec("table7", run, config)]
