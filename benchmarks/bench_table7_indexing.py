"""Table VII bench: candidate-index construction time and size.

The paper's finding: the index is cheap to build and small — its strict
candidate definition (free nodes + one owner) keeps it far below the
clique count (e.g. 1.92M candidates vs 75.2B 6-cliques on Orkut).
"""

import pytest

from repro.dynamic import DynamicDisjointCliques
from repro.cliques import count_cliques

KS = (3, 4, 5, 6)


@pytest.mark.parametrize("k", KS)
def test_index_build_ftb(benchmark, ftb, k):
    dyn = benchmark(DynamicDisjointCliques, ftb, k)
    benchmark.extra_info["index_size"] = dyn.index_size
    benchmark.extra_info["solution_size"] = dyn.size


@pytest.mark.parametrize("k", (3, 4))
def test_index_build_hst(benchmark, hst, k):
    dyn = benchmark.pedantic(
        DynamicDisjointCliques, args=(hst, k), rounds=2, iterations=1
    )
    benchmark.extra_info["index_size"] = dyn.index_size


@pytest.mark.parametrize("k", (3, 4))
def test_index_far_smaller_than_clique_count(fb, k):
    """The index must stay well below the total clique population."""
    dyn = DynamicDisjointCliques(fb, k)
    total = count_cliques(fb, k)
    assert dyn.index_size < total / 2
