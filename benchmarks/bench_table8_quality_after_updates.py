"""Table VIII bench: |S| drift after update streams vs rebuild.

The paper's finding: after 10K-scale update workloads the maintained
solution stays within a fraction of a percent of a from-scratch rebuild
(and occasionally beats it thanks to swap local search).

All update streams come from :mod:`repro.bench.workloads`, so these
benchmarks, Figure 7 and the ``repro bench`` runner time identical
workloads.
"""

import pytest

from repro.bench.workloads import bench_workload
from repro.core.api import find_disjoint_cliques
from repro.dynamic import DynamicDisjointCliques

COUNT = 80


@pytest.mark.parametrize("k", (3, 4))
def test_drift_after_deletions(benchmark, hst, k):
    _, updates = bench_workload(hst, "deletion", COUNT)

    def run():
        dyn = DynamicDisjointCliques(hst, k)
        dyn.apply(updates)
        return dyn

    dyn = benchmark.pedantic(run, rounds=1, iterations=1)
    rebuilt = find_disjoint_cliques(dyn.graph.snapshot(), k, "lp")
    drift = dyn.size - rebuilt.size
    benchmark.extra_info.update({"maintained": dyn.size, "rebuilt": rebuilt.size, "drift": drift})
    assert abs(drift) <= max(3, rebuilt.size // 20)


@pytest.mark.parametrize("k", (3, 4))
def test_drift_after_mixed(benchmark, hst, k):
    start_graph, updates = bench_workload(hst, "mixed", COUNT)

    def run():
        dyn = DynamicDisjointCliques(start_graph, k)
        dyn.apply(updates)
        return dyn

    dyn = benchmark.pedantic(run, rounds=1, iterations=1)
    rebuilt = find_disjoint_cliques(dyn.graph.snapshot(), k, "lp")
    drift = dyn.size - rebuilt.size
    benchmark.extra_info.update({"maintained": dyn.size, "rebuilt": rebuilt.size, "drift": drift})
    assert abs(drift) <= max(3, rebuilt.size // 20)


def test_insertions_never_shrink_solution(hst):
    """Edge insertions can only help: |S| must be monotone under the
    insertion workload (paper: sizes increase slightly)."""
    _, deletions = bench_workload(hst, "deletion", COUNT)
    dyn = DynamicDisjointCliques(hst, 3)
    dyn.apply(deletions)
    before = dyn.size
    dyn.apply([("insert", u, v) for _, u, v in deletions])
    assert dyn.size >= before


def cells(smoke: bool = False) -> list:
    """Runner cells: Table VIII drift from the shared dynamic sweep."""
    from repro.bench.experiments import cached_dynamic_sweep, run_table8
    from repro.bench.runner import CellSpec, check, load_bench_module, quality

    plan = load_bench_module("bench_fig7_updates").smoke_dynamic_plan(smoke)

    def run() -> dict:
        sweep = cached_dynamic_sweep(plan["names"], plan["ks"], plan["count"])
        result = run_table8(sweep, plan["names"], plan["ks"])
        drift_total = 0
        bounded = True
        for cell in sweep.values():
            drift = abs(int(cell["size"]) - int(cell["rebuild"]))
            drift_total += drift
            if drift > max(3, int(cell["rebuild"]) // 20):
                bounded = False
        return {
            "drift_by_cell": {
                f"{name}-k{k}-{workload}":
                    int(cell["size"]) - int(cell["rebuild"])
                for (name, k, workload), cell in sweep.items()
            },
            "gate": {
                "drift_bounded": check(bounded),
                "drift_total_abs": quality(drift_total),
            },
            "artefact": result.text,
        }

    config = {"names": plan["names"], "ks": list(plan["ks"]),
              "count": plan["count"]}
    return [CellSpec("table8", run, config)]
