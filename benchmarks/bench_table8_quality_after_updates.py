"""Table VIII bench: |S| drift after update streams vs rebuild.

The paper's finding: after 10K-scale update workloads the maintained
solution stays within a fraction of a percent of a from-scratch rebuild
(and occasionally beats it thanks to swap local search).
"""

import pytest

from repro.core.api import find_disjoint_cliques
from repro.dynamic import DynamicDisjointCliques
from repro.dynamic.workload import deletion_workload, mixed_workload

COUNT = 80


@pytest.mark.parametrize("k", (3, 4))
def test_drift_after_deletions(benchmark, hst, k):
    updates = deletion_workload(hst, COUNT, seed=21)

    def run():
        dyn = DynamicDisjointCliques(hst, k)
        dyn.apply(updates)
        return dyn

    dyn = benchmark.pedantic(run, rounds=1, iterations=1)
    rebuilt = find_disjoint_cliques(dyn.graph.snapshot(), k, "lp")
    drift = dyn.size - rebuilt.size
    benchmark.extra_info.update({"maintained": dyn.size, "rebuilt": rebuilt.size, "drift": drift})
    assert abs(drift) <= max(3, rebuilt.size // 20)


@pytest.mark.parametrize("k", (3, 4))
def test_drift_after_mixed(benchmark, hst, k):
    start_graph, updates = mixed_workload(hst, COUNT, seed=22)

    def run():
        dyn = DynamicDisjointCliques(start_graph, k)
        dyn.apply(updates)
        return dyn

    dyn = benchmark.pedantic(run, rounds=1, iterations=1)
    rebuilt = find_disjoint_cliques(dyn.graph.snapshot(), k, "lp")
    drift = dyn.size - rebuilt.size
    benchmark.extra_info.update({"maintained": dyn.size, "rebuilt": rebuilt.size, "drift": drift})
    assert abs(drift) <= max(3, rebuilt.size // 20)


def test_insertions_never_shrink_solution(hst):
    """Edge insertions can only help: |S| must be monotone under the
    insertion workload (paper: sizes increase slightly)."""
    deletions = deletion_workload(hst, COUNT, seed=23)
    dyn = DynamicDisjointCliques(hst, 3)
    dyn.apply(deletions)
    before = dyn.size
    dyn.apply([("insert", u, v) for _, u, v in deletions])
    assert dyn.size >= before
