"""Shared fixtures and helpers for the benchmark suite.

Each ``bench_*`` file regenerates one of the paper's tables or figures
(see DESIGN.md §5). Benchmarks run at reduced scale so the whole suite
finishes in minutes; the full-scale artefacts for EXPERIMENTS.md come
from ``python -m repro.bench.experiments all`` or — with manifests and
a regression gate — ``python -m repro bench --reproduce-all``.

Seeds and update streams are canonical: every benchmark draws them from
:mod:`repro.bench.workloads` (directly or via the fixtures below), so
the pytest-driven benchmarks and the ``repro bench`` runner measure
identical workloads.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workloads import bench_workload, seed_manifest  # noqa: E402
from repro.graph import datasets  # noqa: E402


@pytest.fixture(scope="session")
def ftb():
    """Tiny Football-like dataset (115 nodes)."""
    return datasets.load("FTB")


@pytest.fixture(scope="session")
def hst():
    """Small Hamsterster-like dataset (1.9K nodes)."""
    return datasets.load("HST")


@pytest.fixture(scope="session")
def fb():
    """Dense clique-rich Facebook-like dataset (1.2K nodes)."""
    return datasets.load("FB")


@pytest.fixture(scope="session")
def fbp():
    """Medium FBPages-like dataset (4K nodes)."""
    return datasets.load("FBP")


@pytest.fixture(scope="session")
def bench_seeds():
    """The canonical seed manifest every benchmark stream derives from."""
    return seed_manifest()


@pytest.fixture(scope="session")
def workload_factory():
    """Canonical workload builder: ``(graph, kind, count) -> (start, updates)``.

    The same entry point the ``repro bench`` runner records into its
    manifests, so fixtures and runner cells share seeds by construction.
    """
    return bench_workload
