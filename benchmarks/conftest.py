"""Shared fixtures and helpers for the benchmark suite.

Each ``bench_*`` file regenerates one of the paper's tables or figures
(see DESIGN.md §5). Benchmarks run at reduced scale so the whole suite
finishes in minutes; the full-scale artefacts for EXPERIMENTS.md come
from ``python -m repro.bench.experiments all``.
"""

import pytest

from repro.graph import datasets


@pytest.fixture(scope="session")
def ftb():
    """Tiny Football-like dataset (115 nodes)."""
    return datasets.load("FTB")


@pytest.fixture(scope="session")
def hst():
    """Small Hamsterster-like dataset (1.9K nodes)."""
    return datasets.load("HST")


@pytest.fixture(scope="session")
def fb():
    """Dense clique-rich Facebook-like dataset (1.2K nodes)."""
    return datasets.load("FB")


@pytest.fixture(scope="session")
def fbp():
    """Medium FBPages-like dataset (4K nodes)."""
    return datasets.load("FBP")
