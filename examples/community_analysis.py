"""Community seeding on classic real-world graphs via disjoint k-cliques.

k-cliques are a standard community-detection primitive (paper refs
[1]-[5]). A maximum *disjoint* k-clique set gives non-overlapping dense
seeds: every seed is a fully-connected group and no person is claimed by
two seeds. This example runs the LP solver on the classic networks that
ship with networkx (karate club, les misérables, florentine families)
and reports seed statistics plus Theorem 2's degree-bound quality.

Run:  python examples/community_analysis.py   (requires networkx)
"""

from repro import Session
from repro.cliques import build_clique_graph, node_scores
from repro.core.scores import degree_bounds
from repro.graph.datasets import networkx_classic


def analyse(session: Session, name: str, k: int) -> None:
    """Pack disjoint k-cliques in one classic graph and report.

    The session is shared across the k values queried for one graph, so
    orientations are reused and each k pays its score pass only once.
    """
    graph = session.graph
    result = session.solve(k, method="lp")
    coverage = 100 * result.coverage(graph.n)
    print(
        f"{name:<16} n={graph.n:3d} m={graph.m:4d} k={k}: "
        f"{result.size:3d} disjoint cliques, {coverage:5.1f}% coverage"
    )
    for clique in result.sorted_cliques()[:3]:
        print(f"    seed: {clique}")


def theorem2_check(name: str, k: int) -> None:
    """Show that the cheap clique score brackets the true clique degree."""
    graph = networkx_classic(name)
    scores = node_scores(graph, k)
    clique_graph = build_clique_graph(graph, k)
    worst_gap = 0.0
    for index, clique in enumerate(clique_graph.cliques):
        lo, hi = degree_bounds(clique, scores, k)
        degree = clique_graph.degree_of(index)
        assert lo <= degree <= hi, (clique, lo, degree, hi)
        worst_gap = max(worst_gap, hi - lo)
    print(
        f"\nTheorem 2 on {name} (k={k}): all {clique_graph.num_cliques} "
        f"clique degrees inside their score bounds (widest bracket: "
        f"{worst_gap:.0f})"
    )


def main() -> None:
    try:
        import networkx  # noqa: F401
    except ImportError:
        print("this example needs networkx (pip install networkx)")
        return

    print("--- disjoint-clique community seeds ---")
    for name in ("karate", "les_miserables", "florentine"):
        session = Session(networkx_classic(name))
        for k in (3, 4):
            analyse(session, name, k)
    theorem2_check("karate", 3)


if __name__ == "__main__":
    main()
