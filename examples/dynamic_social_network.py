"""Dynamic maintenance under a live friendship stream (paper Section V).

Real social graphs change constantly — the paper reports that at least
1% of all edges churn per day in the Tencent MOBA network. This example
maintains a disjoint 4-clique teaming under a mixed update stream and
compares against periodically rebuilding from scratch:

* per-update latency (microseconds) vs full rebuild latency,
* |S| drift between the maintained and rebuilt solutions.

Run:  python examples/dynamic_social_network.py
"""

import time

import numpy as np

from repro import find_disjoint_cliques
from repro.dynamic import DynamicDisjointCliques
from repro.graph.generators import powerlaw_cluster

K = 4
UPDATES = 400


def main() -> None:
    rng = np.random.default_rng(17)
    graph = powerlaw_cluster(2500, 8, 0.5, seed=23)
    print(f"social network: {graph.n} nodes, {graph.m} edges, k={K}")

    start = time.perf_counter()
    dyn = DynamicDisjointCliques(graph, K)
    build_seconds = time.perf_counter() - start
    print(
        f"initial solve + index build: {build_seconds:.2f}s, "
        f"|S|={dyn.size}, index={dyn.index_size} candidates\n"
    )

    # Mixed stream: ~1% of edges churn; deletions interleaved with
    # re-insertions of previously deleted edges (friendships reforming).
    edges = list(graph.edges())
    picks = list(rng.choice(len(edges), size=UPDATES // 2, replace=False))
    deleted: list[tuple[int, int]] = []
    latencies = []
    checkpoint_every = UPDATES // 4
    for step in range(1, UPDATES + 1):
        if step % 2 or not deleted:
            u, v = edges[picks.pop()]
            op = "delete"
        else:
            u, v = deleted.pop(0)
            op = "insert"
        start = time.perf_counter()
        if op == "delete":
            dyn.delete_edge(u, v)
            deleted.append((u, v))
        else:
            dyn.insert_edge(u, v)
        latencies.append(time.perf_counter() - start)

        if step % checkpoint_every == 0:
            snapshot = dyn.graph.snapshot()
            start = time.perf_counter()
            rebuilt = find_disjoint_cliques(snapshot, K, method="lp")
            rebuild_seconds = time.perf_counter() - start
            print(
                f"after {step:4d} updates: maintained |S|={dyn.size:4d} "
                f"(rebuild {rebuilt.size:4d}, drift {dyn.size - rebuilt.size:+d}); "
                f"rebuild cost {rebuild_seconds * 1000:.0f}ms"
            )

    lat = np.array(latencies)
    print(
        f"\nupdate latency: mean={lat.mean() * 1e6:.0f}us  "
        f"p50={np.percentile(lat, 50) * 1e6:.0f}us  "
        f"p99={np.percentile(lat, 99) * 1e6:.0f}us"
    )
    print(
        f"one rebuild costs the same as "
        f"~{build_seconds / lat.mean():,.0f} maintained updates"
    )
    print(f"swap stats: {dyn.stats}")


if __name__ == "__main__":
    main()
