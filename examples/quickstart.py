"""Quickstart: find a near-optimal maximum set of disjoint k-cliques.

Builds a small social-style graph, opens one solver :class:`Session` on
it, runs every heuristic through the shared preprocessing caches (batch
API with a progress hook included), shows the legacy one-shot function
as the compatibility path, and finishes with the dynamic maintainer
reacting to edge updates.

Run:  python examples/quickstart.py
"""

from repro import Session, find_disjoint_cliques, verify_solution
from repro.dynamic import DynamicDisjointCliques
from repro.graph.generators import powerlaw_cluster


def main() -> None:
    # A 600-node social-style graph with strong triadic closure.
    graph = powerlaw_cluster(600, 6, 0.6, seed=42)
    print(f"graph: {graph.n} nodes, {graph.m} edges")

    # One session per graph: node scores, clique listings and DAG
    # orientations are computed once and shared by every solve.
    session = Session(graph)

    k = 4
    print(f"\n--- static solvers through one session, k={k} ---")
    for method in ("hg", "gc", "l", "lp"):
        result = session.solve(k, method=method)
        verify_solution(graph, k, result.cliques)  # raises if invalid
        print(
            f"{method.upper():>3}: {result.size:4d} disjoint {k}-cliques, "
            f"covering {100 * result.coverage(graph.n):.1f}% of nodes"
        )
    info = session.cache_info()
    print(
        f"shared work: {info['clique_listings']} clique listing(s), "
        f"{info['score_passes']} score pass(es), {info['cache_hits']} cache hits"
    )

    # Batch queries share the same caches; the deadline bounds the whole
    # batch and the hook reports progress as solves complete.
    print("\n--- solve_many: k = 3, 4, 5 with a progress hook ---")
    session.solve_many(
        [3, 4, 5],
        deadline=60.0,
        on_progress=lambda done, total, req, res: print(
            f"  [{done}/{total}] k={req.k} {req.method}: |S|={res.size}"
        ),
    )

    # Legacy compatibility path: the one-shot function (delegates to a
    # throwaway session — fine when a graph is only solved once).
    lp = find_disjoint_cliques(graph, k, method="lp")
    print(f"\nfirst three LP cliques: {lp.sorted_cliques()[:3]}")

    print(f"\n--- dynamic maintenance, k={k} ---")
    dyn = DynamicDisjointCliques(graph, k)
    print(f"initial |S| = {dyn.size}, candidate index size = {dyn.index_size}")

    # Break one clique and watch the maintainer repair the solution.
    victim = sorted(next(iter(dyn.solution().cliques)))
    u, v = victim[0], victim[1]
    dyn.delete_edge(u, v)
    print(f"after deleting edge ({u}, {v}) inside a clique: |S| = {dyn.size}")
    dyn.insert_edge(u, v)
    print(f"after restoring it:                         |S| = {dyn.size}")


if __name__ == "__main__":
    main()
