"""Quickstart: find a near-optimal maximum set of disjoint k-cliques.

Builds a small social-style graph, runs every solver, validates and
compares the results, and shows the dynamic maintainer reacting to edge
updates.

Run:  python examples/quickstart.py
"""

from repro import Graph, find_disjoint_cliques, verify_solution
from repro.dynamic import DynamicDisjointCliques
from repro.graph.generators import powerlaw_cluster


def main() -> None:
    # A 600-node social-style graph with strong triadic closure.
    graph: Graph = powerlaw_cluster(600, 6, 0.6, seed=42)
    print(f"graph: {graph.n} nodes, {graph.m} edges")

    k = 4
    print(f"\n--- static solvers, k={k} ---")
    for method in ("hg", "gc", "l", "lp"):
        result = find_disjoint_cliques(graph, k, method=method)
        verify_solution(graph, k, result.cliques)  # raises if invalid
        print(
            f"{method.upper():>3}: {result.size:4d} disjoint {k}-cliques, "
            f"covering {100 * result.coverage(graph.n):.1f}% of nodes"
        )

    lp = find_disjoint_cliques(graph, k, method="lp")
    print(f"\nfirst three LP cliques: {lp.sorted_cliques()[:3]}")

    print(f"\n--- dynamic maintenance, k={k} ---")
    dyn = DynamicDisjointCliques(graph, k)
    print(f"initial |S| = {dyn.size}, candidate index size = {dyn.index_size}")

    # Break one clique and watch the maintainer repair the solution.
    victim = sorted(next(iter(dyn.solution().cliques)))
    u, v = victim[0], victim[1]
    dyn.delete_edge(u, v)
    print(f"after deleting edge ({u}, {v}) inside a clique: |S| = {dyn.size}")
    dyn.insert_edge(u, v)
    print(f"after restoring it:                         |S| = {dyn.size}")


if __name__ == "__main__":
    main()
