"""Roommate allocation on a preference graph (paper application [7]).

Dorm rooms have ``k`` beds. Students name the peers they are willing to
share a room with, forming an undirected *preference graph* (an edge
means mutual acceptance). A perfect room is a k-clique — everyone in it
accepts everyone else — so maximising the number of fully-compatible
rooms is exactly the maximum disjoint k-clique problem.

This example allocates rooms with the paper's LP solver, compares
against the greedy HG baseline and a naive first-fit, and reports the
compatibility statistics of the resulting allocation.

Run:  python examples/roommate_allocation.py
"""

import numpy as np

from repro import Graph, find_disjoint_cliques
from repro.graph.generators import planted_partition

ROOM_SIZE = 3  # beds per room


def preference_graph(n_students: int, seed: int) -> Graph:
    """Synthetic preferences: friend circles plus sparse cross links."""
    return planted_partition(
        n_students, communities=n_students // 12, p_in=0.55, p_out=0.02, seed=seed
    )


def first_fit_rooms(graph: Graph) -> list[list[int]]:
    """Naive baseline: walk students in id order, room with any two
    mutually-acceptable unassigned friends if possible."""
    assigned: set[int] = set()
    rooms: list[list[int]] = []
    for u in range(graph.n):
        if u in assigned:
            continue
        friends = [v for v in sorted(graph.neighbors(u)) if v not in assigned]
        placed = False
        for i, a in enumerate(friends):
            for b in friends[i + 1 :]:
                if graph.has_edge(a, b):
                    rooms.append([u, a, b])
                    assigned |= {u, a, b}
                    placed = True
                    break
            if placed:
                break
    return rooms


def clique_rooms(graph: Graph, method: str) -> list[list[int]]:
    """Rooms from a disjoint k-clique packing."""
    result = find_disjoint_cliques(graph, ROOM_SIZE, method=method)
    return [sorted(c) for c in result.cliques]


def allocation_report(graph: Graph, rooms: list[list[int]], label: str) -> None:
    """Print perfect-room count and average intra-room compatibility."""
    perfect = sum(1 for room in rooms if graph.is_clique(room))
    pairs = sum(
        1
        for room in rooms
        for i, a in enumerate(room)
        for b in room[i + 1 :]
        if graph.has_edge(a, b)
    )
    total_pairs = sum(len(r) * (len(r) - 1) // 2 for r in rooms)
    housed = sum(len(r) for r in rooms)
    compat = 100 * pairs / total_pairs if total_pairs else 0.0
    print(
        f"{label:<12} rooms={len(rooms):4d} perfect={perfect:4d} "
        f"housed={housed:4d}/{graph.n} compatibility={compat:5.1f}%"
    )


def main() -> None:
    rng = np.random.default_rng(3)
    graph = preference_graph(600, seed=int(rng.integers(1 << 30)))
    print(
        f"preference graph: {graph.n} students, {graph.m} mutual acceptances, "
        f"rooms of {ROOM_SIZE}\n"
    )
    allocation_report(graph, first_fit_rooms(graph), "first-fit")
    allocation_report(graph, clique_rooms(graph, "hg"), "HG packing")
    allocation_report(graph, clique_rooms(graph, "lp"), "LP packing")

    # Any students the packing leaves out get grouped from the residual
    # graph (the paper's iterative residual recipe).
    lp_rooms = clique_rooms(graph, "lp")
    covered = {u for room in lp_rooms for u in room}
    residual = graph.remove_nodes(covered)
    pairs = find_disjoint_cliques(residual, 2, method="lp")
    print(
        f"\nresidual round: {pairs.size} compatible pairs found for the "
        f"{graph.n - len(covered)} students left over"
    )


if __name__ == "__main__":
    main()
