"""Game matchmaking through the serving layer (pool + scheduler + feeds).

A matchmaking service for a team game: squads of k=4 mutual friends.
The server holds one warm session per region graph in its
:class:`~repro.serve.pool.SessionPool`, a dynamic feed tracks the live
region as friendships form and break, and all solve traffic flows
through the in-process :class:`~repro.serve.client.Client` exactly as
NDJSON clients would over ``python -m repro serve``:

* **lobby ticks** — repeated ``solve`` requests over the live regions
  (warm after the first tick: the pool reuses node scores and
  orientations instead of recomputing them);
* **friendship churn** — ``feed_push`` traffic buffered into the
  batched dynamic-update engine, flushed by the feed's size policy;
* **priority lanes** — squad solves ride ``high`` while an analytics
  ``bounds`` query rides ``low`` and never delays matchmaking.

Run:  python examples/serving_matchmaker.py
"""

import numpy as np

from repro.graph.generators import powerlaw_cluster
from repro.serve import Client, Server

K = 4
TICKS = 3
CHURN_PER_TICK = 60


def main() -> None:
    rng = np.random.default_rng(29)
    regions = {
        "eu-west": powerlaw_cluster(1500, 10, 0.7, seed=31),
        "us-east": powerlaw_cluster(1200, 9, 0.7, seed=32),
    }

    with Server(workers=2, max_sessions=8, queue_limit=32) as server:
        client = Client(server)
        for name, graph in regions.items():
            reg = client.register_graph(name, graph)
            print(
                f"region {name}: {reg['n']} players, {reg['m']} friendships "
                f"({reg['fingerprint'][:14]}...)"
            )

        # The live region streams friendship churn through a feed;
        # batches of 32 go through the coalesced dynamic-update engine.
        feed = client.feed_open(
            "eu-west", k=K, policy={"max_updates": 32, "backend": "auto"}
        )["feed"]
        print(f"matchmaker feed open: {feed}, initial squads="
              f"{client.feed_solution(feed, include_cliques=False)['size']}\n")

        edges = sorted(regions["eu-west"].edges())
        broken: list[tuple[int, int]] = []
        for tick in range(1, TICKS + 1):
            # Friendship churn: break some edges, reconcile older breaks.
            updates = []
            picks = rng.choice(len(edges), size=CHURN_PER_TICK, replace=False)
            for index in picks:
                u, v = edges[index]
                updates.append(("delete", u, v))
            while broken:
                updates.append(("insert", *broken.pop()))
            broken = [(u, v) for op, u, v in updates if op == "delete"]
            pushed = client.feed_push(feed, updates)
            squads = client.feed_solution(feed, include_cliques=False)["size"]

            # Matchmaking tick: high-priority squad solves per region,
            # low-priority analytics riding the same scheduler.
            lobby = {
                name: client.solve(name, K, priority="high",
                                   include_cliques=False)["size"]
                for name in regions
            }
            analytics = client.bounds("us-east", K, priority="low")
            print(
                f"tick {tick}: churn={len(updates)} "
                f"(flushed={pushed['flushed']}) live-squads={squads} | "
                f"lobby {lobby} | OPT<={analytics['best']} (us-east)"
            )

        stats = client.stats()
        pool, sched = stats["pool"], stats["scheduler"]
        print(
            f"\npool: {pool['sessions']} sessions, "
            f"{pool['hits']} hits / {pool['misses']} misses "
            f"({pool['bytes'] / 1e6:.1f} MB resident)"
        )
        print(
            f"scheduler: {sched['completed']} completed, "
            f"{sched['shed_overload']} shed, workers={sched['workers']}"
        )
        final = client.feed_close(feed)
        print(f"feed closed: final live squads={final['final_size']}")


if __name__ == "__main__":
    main()
