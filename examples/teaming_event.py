"""Teaming event simulation — the paper's motivating application (Fig. 1).

In the Tencent MOBA teaming event, every player joins a team of up to
``k = 4`` members; teams whose members are all mutual friends (a
4-clique, 6 intra-team edges) convert best — 25.6% better than 5-edge
teams. This example simulates that pipeline end to end:

1. generate a social network,
2. build teams three ways — random assignment, greedy HG packing, and
   the paper's LP packing (remaining players are packed iteratively on
   the residual graph, as the introduction describes),
3. simulate conversion with probability increasing in intra-team edge
   count (calibrated so 6-edge teams beat 5-edge teams by ~25.6%),
4. report conversion per strategy and the Figure 1(b)-style histogram.

Run:  python examples/teaming_event.py
"""

import numpy as np

from repro import Graph, find_disjoint_cliques
from repro.graph.generators import powerlaw_cluster

TEAM_SIZE = 4
# Conversion probability by intra-team edge count (0..6 edges for k=4);
# 0.58 / 0.73 reproduces the paper's "6-edge teams win by 25.6%".
CONVERSION_BY_EDGES = {0: 0.18, 1: 0.24, 2: 0.31, 3: 0.38, 4: 0.47, 5: 0.58, 6: 0.73}


def intra_team_edges(graph: Graph, team: list[int]) -> int:
    """Number of friendship edges inside a team."""
    return sum(
        1
        for i, u in enumerate(team)
        for v in team[i + 1 :]
        if graph.has_edge(u, v)
    )


def teams_by_random(graph: Graph, rng: np.random.Generator) -> list[list[int]]:
    """Baseline: random assignment into teams of TEAM_SIZE."""
    players = rng.permutation(graph.n).tolist()
    return [players[i : i + TEAM_SIZE] for i in range(0, graph.n, TEAM_SIZE)]


def teams_by_packing(graph: Graph, method: str) -> list[list[int]]:
    """Disjoint k-clique packing, then iterative residual packing.

    Exactly the paper's deployment recipe: pack 4-cliques, remove the
    covered players, re-pack the residual graph with smaller cliques
    (k=3, then matched pairs), and finally group leftovers arbitrarily.
    """
    teams: list[list[int]] = []
    covered: set[int] = set()
    residual = graph
    for k in (4, 3, 2):
        result = find_disjoint_cliques(residual, k, method=method)
        for clique in result.cliques:
            teams.append(sorted(clique))
            covered |= clique
        residual = residual.remove_nodes(covered)
    leftovers = [u for u in range(graph.n) if u not in covered]
    for i in range(0, len(leftovers), TEAM_SIZE):
        teams.append(leftovers[i : i + TEAM_SIZE])
    return teams


def simulate_conversion(
    graph: Graph, teams: list[list[int]], rng: np.random.Generator
) -> tuple[float, dict[int, tuple[int, float]]]:
    """Per-player conversion simulation; returns (rate, by-edge-count stats)."""
    converted = 0
    players = 0
    by_edges: dict[int, list[int]] = {e: [] for e in CONVERSION_BY_EDGES}
    for team in teams:
        edges = intra_team_edges(graph, team)
        p = CONVERSION_BY_EDGES.get(min(edges, 6), 0.18)
        wins = int(rng.binomial(len(team), p))
        converted += wins
        players += len(team)
        if len(team) == TEAM_SIZE:
            by_edges[edges].append(wins / len(team))
    stats = {
        e: (len(rates), float(np.mean(rates)) if rates else 0.0)
        for e, rates in by_edges.items()
    }
    return converted / players, stats


def main() -> None:
    rng = np.random.default_rng(2025)
    graph = powerlaw_cluster(2000, 8, 0.55, seed=9)
    print(f"social network: {graph.n} players, {graph.m} friendships\n")

    strategies = {
        "random teams": teams_by_random(graph, rng),
        "HG packing": teams_by_packing(graph, "hg"),
        "LP packing": teams_by_packing(graph, "lp"),
    }
    print(f"{'strategy':<14} {'teams':>6} {'full 4-cliques':>15} {'conversion':>11}")
    for name, teams in strategies.items():
        full = sum(
            1
            for t in teams
            if len(t) == TEAM_SIZE and intra_team_edges(graph, t) == 6
        )
        rate, by_edges = simulate_conversion(graph, teams, rng)
        print(f"{name:<14} {len(teams):>6} {full:>15} {100 * rate:>10.1f}%")

    print("\nFigure 1(b) reproduction (LP packing, 4-player teams):")
    _, by_edges = simulate_conversion(graph, strategies["LP packing"], rng)
    print(f"{'intra-team edges':>17} {'teams':>7} {'conversion':>11}")
    for edges in sorted(by_edges):
        count, rate = by_edges[edges]
        bar = "#" * int(40 * rate)
        print(f"{edges:>17} {count:>7} {100 * rate:>10.1f}% {bar}")


if __name__ == "__main__":
    main()
