from setuptools import find_packages, setup

setup(
    name="repro-disjoint-kcliques",
    version="0.6.0",
    description=(
        "Reproduction of 'Finding Near-Optimal Maximum Set of Disjoint "
        "k-Cliques in Real-World Social Networks' (ICDE 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: the package ships inline type information.
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
)
