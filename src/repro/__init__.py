"""repro — maximum sets of disjoint k-cliques in large graphs.

A full reproduction of "Finding Near-Optimal Maximum Set of Disjoint
k-Cliques in Real-World Social Networks" (ICDE 2025): the static
algorithms HG / GC / L / LP and the exact baseline OPT, the dynamic
candidate-index maintenance with swap operations, every substrate they
depend on (clique listing, clique graph, exact MIS, blossom matching),
and a benchmark harness regenerating the paper's tables and figures.

Quickstart
----------
>>> from repro import Graph, find_disjoint_cliques
>>> g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
>>> result = find_disjoint_cliques(g, k=3, method="lp")
>>> result.size
2
"""

from repro.graph.graph import Graph
from repro.graph.dynamic import DynamicGraph
from repro.core.api import METHODS, find_disjoint_cliques
from repro.core.result import CliqueSetResult, is_maximal, is_valid, verify_solution

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "DynamicGraph",
    "find_disjoint_cliques",
    "METHODS",
    "CliqueSetResult",
    "verify_solution",
    "is_valid",
    "is_maximal",
    "__version__",
]
