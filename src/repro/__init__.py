"""repro — maximum sets of disjoint k-cliques in large graphs.

A full reproduction of "Finding Near-Optimal Maximum Set of Disjoint
k-Cliques in Real-World Social Networks" (ICDE 2025): the static
algorithms HG / GC / L / LP and the exact baselines OPT / OPT-BB, the
dynamic candidate-index maintenance with swap operations, every
substrate they depend on (clique listing, clique graph, exact MIS,
blossom matching), and a benchmark harness regenerating the paper's
tables and figures.

Quickstart
----------
The session API binds to one graph and reuses preprocessing (node
scores, clique listings, DAG orientations) across solves — the right
entry point whenever a graph is queried more than once:

>>> from repro import Graph, Session
>>> g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
>>> session = Session(g)
>>> session.solve(k=3, method="lp").size
2
>>> session.solve(k=3, method="gc").size   # reuses the k=3 scores
2

Batches share the same caches, with an optional deadline and progress
hook::

    results = session.solve_many([3, 4, (4, "opt")], deadline=60.0)

For one-shot calls the legacy function remains the compatibility path:

>>> from repro import find_disjoint_cliques
>>> find_disjoint_cliques(g, k=3, method="lp").size
2

Methods are first-class registry objects with typed options; inspect
them via ``REGISTRY`` or ``python -m repro methods``.
"""

from repro.graph.graph import Graph
from repro.graph.dynamic import DynamicGraph
from repro.core.api import METHODS, find_disjoint_cliques
from repro.core.registry import (
    REGISTRY,
    Method,
    SolveOptions,
    SolverRegistry,
)
from repro.core.result import CliqueSetResult, is_maximal, is_valid, verify_solution
from repro.core.session import Session, SolveRequest
from repro.core.task import SolveTask, TaskSnapshot

__version__ = "1.1.0"

__all__ = [
    "Graph",
    "DynamicGraph",
    "Session",
    "SolveRequest",
    "SolveTask",
    "TaskSnapshot",
    "Method",
    "SolveOptions",
    "SolverRegistry",
    "REGISTRY",
    "find_disjoint_cliques",
    "METHODS",
    "CliqueSetResult",
    "verify_solution",
    "is_valid",
    "is_maximal",
    "__version__",
]
