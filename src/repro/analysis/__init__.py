"""Solution-quality analysis: certified bounds and method comparison."""

from repro.analysis.bounds import (
    OptimumBounds,
    approximation_certificate,
    optimum_upper_bounds,
)
from repro.analysis.compare import MethodComparison, compare_methods

__all__ = [
    "OptimumBounds",
    "optimum_upper_bounds",
    "approximation_certificate",
    "compare_methods",
    "MethodComparison",
]
