"""Certified upper bounds on the optimum |S| (solution-quality analysis).

NP-hardness rules out computing the optimum at scale, but cheap upper
bounds certify how close a heuristic solution is. Three bounds, each
sound (proofs in docstrings) and each computable without the clique
graph:

* **node bound** — every clique consumes k distinct *clique-capable*
  nodes (nodes with non-zero score), so ``OPT <= capable / k``;
* **count bound** — trivially ``OPT <= #k-cliques``;
* **fractional-degree bound** — peeling argument: scanning cliques in
  ascending clique-degree order, each chosen clique forbids at most its
  degree's worth of others; Lemma 1's structure gives the usable form
  ``OPT <= capable_score_mass / k`` refined per connected region. We
  implement its practical surrogate, the *score bound*: each chosen
  clique in the optimum has total node budget ``sum s_n(u) >= k``, and
  the budgets of disjoint cliques never share a node, hence
  ``OPT <= (#nodes u with s_n(u) > 0 weighted by 1) / k`` — identical to
  the node bound — or, sharper, one can spend ``min(s_n(u), 1)`` per
  node. The extra sharpening implemented here is *component-wise*
  rounding: the bound is summed per connected component of the
  clique-capable subgraph with a floor per component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.cliques.counting import node_scores
from repro.cliques.listing import count_cliques


@dataclass(frozen=True)
class OptimumBounds:
    """Upper bounds on the optimal number of disjoint k-cliques."""

    node_bound: int
    count_bound: int
    component_bound: int

    @property
    def best(self) -> int:
        """The tightest of the bounds."""
        return min(self.node_bound, self.count_bound, self.component_bound)


def _capable_components(graph: Graph, capable: list[bool]) -> list[int]:
    """Sizes of connected components of the capable-node subgraph."""
    seen = [False] * graph.n
    sizes: list[int] = []
    for start in range(graph.n):
        if seen[start] or not capable[start]:
            continue
        stack = [start]
        seen[start] = True
        size = 0
        while stack:
            u = stack.pop()
            size += 1
            for v in graph.neighbors(u):
                if capable[v] and not seen[v]:
                    seen[v] = True
                    stack.append(v)
        sizes.append(size)
    return sizes


def optimum_upper_bounds(
    graph: Graph,
    k: int,
    scores: np.ndarray | None = None,
    total_cliques: int | None = None,
) -> OptimumBounds:
    """Compute all certified upper bounds on the optimum.

    Soundness: a node with score 0 is in no k-clique, so every clique of
    any solution lives inside the capable subgraph; disjoint cliques in
    one connected component consume k nodes each, giving the per
    component floor ``|component| // k``; summing components dominates
    the plain node bound. The count bound is immediate.

    ``scores`` / ``total_cliques`` accept precomputed values (e.g. from
    a session cache) and skip the corresponding enumeration passes.
    """
    if scores is None:
        scores = node_scores(graph, k)
    capable = [bool(s) for s in scores]
    capable_count = sum(capable)
    if total_cliques is None:
        total_cliques = count_cliques(graph, k)
    component_bound = sum(
        size // k for size in _capable_components(graph, capable)
    )
    return OptimumBounds(
        node_bound=capable_count // k,
        count_bound=total_cliques,
        component_bound=component_bound,
    )


def approximation_certificate(graph: Graph, k: int, solution_size: int) -> float:
    """A certified approximation factor for a given solution size.

    Returns ``bound / solution_size`` using the best upper bound — a
    number that is *guaranteed* to dominate ``OPT / solution_size``.
    Theorem 3 guarantees the true factor is at most ``k`` for any
    maximal solution; in practice this certificate is far smaller.
    Returns ``inf`` for an empty solution on a graph that has cliques.
    """
    bounds = optimum_upper_bounds(graph, k)
    if solution_size == 0:
        return 0.0 if bounds.best == 0 else float("inf")
    return bounds.best / solution_size
