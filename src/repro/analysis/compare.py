"""Side-by-side method comparison with validity checks and certificates.

``compare_methods`` runs several solvers on one instance, validates all
outputs, computes the certified optimality gap from
:mod:`repro.analysis.bounds`, and reports timing — the programmatic
equivalent of one row of the paper's Table II, usable on any graph.

All methods run through one :class:`~repro.core.session.Session`, so
shared preprocessing (node scores, clique listings) is computed once
for the whole comparison instead of once per method; pass a session
directly to also reuse caches from earlier solves on the same graph.
The reported per-method ``seconds`` therefore time the solve proper,
with shared preprocessing amortised across the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.graph.graph import Graph
from repro.core.result import verify_solution
from repro.core.session import Session
from repro.analysis.bounds import optimum_upper_bounds


@dataclass
class MethodComparison:
    """One solver's row in a comparison run."""

    method: str
    size: int
    seconds: float
    coverage: float
    certificate: float
    stats: dict[str, float] = field(default_factory=dict)


def compare_methods(
    graph: Union[Graph, Session],
    k: int,
    methods: Sequence[str] = ("hg", "lp"),
    validate: bool = True,
) -> list[MethodComparison]:
    """Run each method and report size, time, coverage and certificate.

    ``graph`` may be a :class:`Graph` (a fresh session is created) or an
    existing :class:`Session` whose caches should be reused. The
    certificate is ``best_upper_bound / size`` — a guaranteed bound on
    how far the solution can be from optimal (see
    :func:`repro.analysis.bounds.approximation_certificate`).
    """
    session = graph if isinstance(graph, Session) else Session(graph)
    graph = session.graph
    bounds = optimum_upper_bounds(
        graph,
        k,
        scores=session.prep.scores(k),
        total_cliques=session.prep.clique_count(k),
    )
    rows: list[MethodComparison] = []
    for method in methods:
        start = time.perf_counter()
        result = session.solve(k, method)
        elapsed = time.perf_counter() - start
        if validate:
            verify_solution(graph, k, result.cliques)
        certificate = (
            float("inf")
            if result.size == 0 and bounds.best > 0
            else (bounds.best / result.size if result.size else 0.0)
        )
        rows.append(
            MethodComparison(
                method=method,
                size=result.size,
                seconds=elapsed,
                coverage=result.coverage(graph.n),
                certificate=certificate,
                stats=dict(result.stats),
            )
        )
    return rows
