"""Benchmark harness: budgets, table rendering, experiment runners."""

from repro.bench.harness import (
    BENCH_SCALE,
    DEFAULT_CLIQUE_BUDGET,
    DEFAULT_TIME_BUDGET,
    CellOutcome,
    run_cell,
    run_cell_subprocess,
    scaled,
)
from repro.bench.plotting import ascii_log_chart, sparkline
from repro.bench.tables import (
    format_count,
    format_micros,
    format_seconds,
    render_series,
    render_table,
)

__all__ = [
    "CellOutcome",
    "run_cell",
    "run_cell_subprocess",
    "scaled",
    "BENCH_SCALE",
    "DEFAULT_TIME_BUDGET",
    "DEFAULT_CLIQUE_BUDGET",
    "format_count",
    "format_seconds",
    "format_micros",
    "render_table",
    "render_series",
    "ascii_log_chart",
    "sparkline",
]
