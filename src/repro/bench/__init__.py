"""Benchmark harness: budgets, table rendering, experiment runners."""

from repro.bench.harness import (
    BENCH_SCALE,
    DEFAULT_CLIQUE_BUDGET,
    DEFAULT_TIME_BUDGET,
    CellOutcome,
    run_cell,
    run_cell_subprocess,
    scaled,
)
from repro.bench.plotting import ascii_log_chart, sparkline
from repro.bench.runner import (
    CellSpec,
    GateThresholds,
    SuiteSpec,
    check,
    gate_run,
    load_run,
    quality,
    ratio,
    run_suites,
    suite_names,
)
from repro.bench.tables import (
    format_count,
    format_micros,
    format_seconds,
    render_series,
    render_table,
)
from repro.bench.workloads import bench_workload, seed_for, seed_manifest, stream_seed

__all__ = [
    "CellOutcome",
    "run_cell",
    "run_cell_subprocess",
    "scaled",
    "BENCH_SCALE",
    "DEFAULT_TIME_BUDGET",
    "DEFAULT_CLIQUE_BUDGET",
    "CellSpec",
    "SuiteSpec",
    "GateThresholds",
    "ratio",
    "quality",
    "check",
    "run_suites",
    "gate_run",
    "load_run",
    "suite_names",
    "bench_workload",
    "stream_seed",
    "seed_for",
    "seed_manifest",
    "format_count",
    "format_seconds",
    "format_micros",
    "render_table",
    "render_series",
    "ascii_log_chart",
    "sparkline",
]
