"""Experiment runners regenerating every table and figure of the paper.

Each ``run_*`` function reproduces one evaluation artefact (see
DESIGN.md §5 for the full index) at the scaled-down dataset sizes of
:mod:`repro.graph.datasets`, returning an :class:`ExperimentResult` whose
``text`` is a paper-style table and whose ``data`` is the raw grid.

The static sweep (Figure 6 runtime, Table II quality, Table III space)
shares one :func:`run_static_sweep` pass. Budgets come from
:mod:`repro.bench.harness` and produce the paper's ``OOT``/``OOM``
markers instead of results.

CLI::

    python -m repro.bench.experiments all          # everything
    python -m repro.bench.experiments table1 fig7  # selected artefacts
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.graph import datasets
from repro.graph.generators import watts_strogatz
from repro.cliques.counting import clique_profile
from repro.core.api import find_disjoint_cliques
from repro.core.session import Session
from repro.dynamic.maintainer import DynamicDisjointCliques
from repro.dynamic.workload import (
    deletion_workload,
    insertion_workload,
    mixed_workload,
)
from repro.bench.harness import (
    DEFAULT_CLIQUE_BUDGET,
    DEFAULT_TIME_BUDGET,
    CellOutcome,
    run_cell,
    run_cell_subprocess,
    run_solve_cell,
    scaled,
)
from repro.bench.tables import (
    format_count,
    format_micros,
    format_seconds,
    render_series,
    render_table,
)
from repro.bench.workloads import seed_for, stream_seed

KS = (3, 4, 5, 6)
STATIC_METHODS = ("opt", "hg", "gc", "l", "lp")
OPT_CLIQUE_CAP = 20_000


@dataclass
class ExperimentResult:
    """A regenerated artefact: identifier, rendered text and raw data."""

    name: str
    text: str
    data: Any = field(repr=False, default=None)

    def __str__(self) -> str:
        return self.text


# ----------------------------------------------------------------------
# Table I — dataset statistics
# ----------------------------------------------------------------------
def run_table1(names: Sequence[str] | None = None, ks: Sequence[int] = KS) -> ExperimentResult:
    """Dataset statistics: n, m and the number of k-cliques per k."""
    names = list(names or datasets.TABLE1_NAMES)
    rows = []
    data = {}
    for name in names:
        graph = datasets.load(name)
        profile = clique_profile(graph, ks)
        data[name] = {"n": graph.n, "m": graph.m, **{f"k{k}": c for k, c in profile.items()}}
        rows.append(
            [name, format_count(graph.n), format_count(graph.m)]
            + [format_count(profile[k]) for k in ks]
        )
    text = render_table(
        "Table I: statistics of datasets (scaled substitutes)",
        ["Name", "n", "m"] + [f"k={k}" for k in ks],
        rows,
    )
    return ExperimentResult("table1", text, data)


# ----------------------------------------------------------------------
# Static sweep shared by Figure 6 / Table II / Table III
# ----------------------------------------------------------------------
def _run_static_cell(
    session: Session,
    k: int,
    method: str,
    time_budget: float,
    clique_budget: int,
    trace_memory: bool,
) -> CellOutcome:
    """One (dataset, k, method) cell with the right budget mechanism.

    All methods for a graph share one session, so the clique listing and
    node scores are computed by at most one cell each and reused by the
    rest — the remaining cell time is the solver proper.
    """
    if method == "opt":
        # Cheap feasibility probe first: the clique-graph baseline stores
        # every clique, so a large clique count is an immediate OOM —
        # exactly the paper's outcome for OPT beyond tiny graphs.
        probe = run_cell(
            lambda: session.prep.clique_count(k), time_budget=time_budget
        )
        if not probe.ok:
            return probe
        if probe.value > OPT_CLIQUE_CAP:
            return CellOutcome(marker="OOM", seconds=probe.seconds)
        # The forked child inherits the session's caches copy-on-write.
        return run_cell_subprocess(
            lambda: session.solve(k, "opt", time_budget=time_budget).size,
            time_budget=time_budget,
        )
    outcome = run_solve_cell(
        session,
        k,
        method,
        time_budget=time_budget,
        max_cliques=clique_budget,
        trace_memory=trace_memory,
    )
    if outcome.ok:
        outcome.extra["size"] = outcome.value.size
        outcome.value = outcome.value.size
    return outcome


def run_static_sweep(
    names: Sequence[str] | None = None,
    ks: Sequence[int] = KS,
    methods: Sequence[str] = STATIC_METHODS,
    time_budget: float = DEFAULT_TIME_BUDGET,
    clique_budget: int = DEFAULT_CLIQUE_BUDGET,
    trace_memory: bool = True,
) -> dict[tuple[str, int, str], CellOutcome]:
    """Run every (dataset, k, method) cell once; the basis of Fig6/T2/T3."""
    names = list(names or datasets.TABLE1_NAMES)
    grid: dict[tuple[str, int, str], CellOutcome] = {}
    for name in names:
        session = Session(datasets.load(name))
        for k in ks:
            for method in methods:
                grid[(name, k, method)] = _run_static_cell(
                    session, k, method, time_budget, clique_budget, trace_memory
                )
    return grid


def run_fig6(
    sweep: dict | None = None, names: Sequence[str] | None = None, ks: Sequence[int] = KS,
    **kwargs: Any,
) -> ExperimentResult:
    """Figure 6: average running time per algorithm with varying k."""
    from repro.bench.plotting import ascii_log_chart

    names = list(names or datasets.TABLE1_NAMES)
    sweep = sweep if sweep is not None else run_static_sweep(names, ks, **kwargs)
    blocks = []
    for name in names:
        series = {}
        raw = {}
        for method in STATIC_METHODS:
            cells = [sweep.get((name, k, method)) for k in ks]
            series[method.upper()] = [
                c.marker if (c and c.marker) else (format_seconds(c.seconds) if c else "-")
                for c in cells
            ]
            raw[method.upper()] = [
                c.marker if (c and c.marker) else (c.seconds if c else "-")
                for c in cells
            ]
        blocks.append(
            render_series(f"Figure 6({name}): running time vs k", "k", list(ks), series, fmt=str)
        )
        blocks.append(
            ascii_log_chart(f"Figure 6({name})", "k", list(ks), raw, unit="s")
        )
    return ExperimentResult("fig6", "\n\n".join(blocks), sweep)


def run_table2(
    sweep: dict | None = None, names: Sequence[str] | None = None, ks: Sequence[int] = KS,
    **kwargs: Any,
) -> ExperimentResult:
    """Table II: |S| per algorithm (GC/LP shown as delta vs HG)."""
    names = list(names or datasets.TABLE1_NAMES)
    sweep = sweep if sweep is not None else run_static_sweep(names, ks, **kwargs)
    columns = ["Name"]
    for k in ks:
        columns += [f"OPT k={k}", f"HG k={k}", f"GC(d) k={k}", f"LP(d) k={k}"]
    rows = []
    for name in names:
        row = [name]
        for k in ks:
            opt = sweep.get((name, k, "opt"))
            hg = sweep.get((name, k, "hg"))
            gc = sweep.get((name, k, "gc"))
            lp = sweep.get((name, k, "lp"))
            hg_size = hg.value if (hg and hg.ok) else None

            def delta(cell):
                if cell is None:
                    return "-"
                if cell.marker:
                    return cell.marker
                if hg_size is None:
                    return str(cell.value)
                return f"{cell.value - hg_size:+d}"

            row.append(opt.display() if opt else "-")
            row.append(hg.display() if hg else "-")
            row.append(delta(gc))
            row.append(delta(lp))
        rows.append(row)
    text = render_table(
        "Table II: size of S (GC/LP as delta vs HG)", columns, rows
    )
    return ExperimentResult("table2", text, sweep)


def run_table3(
    sweep: dict | None = None, names: Sequence[str] | None = None, ks: Sequence[int] = KS,
    **kwargs: Any,
) -> ExperimentResult:
    """Table III: peak traced memory per algorithm (MB)."""
    names = list(names or datasets.TABLE1_NAMES)
    sweep = sweep if sweep is not None else run_static_sweep(names, ks, **kwargs)
    columns = ["Name"]
    shown = ("hg", "gc", "lp")
    for k in ks:
        columns += [f"{m.upper()} k={k}" for m in shown]
    rows = []
    for name in names:
        row = [name]
        for k in ks:
            for method in shown:
                cell = sweep.get((name, k, method))
                if cell is None:
                    row.append("-")
                elif cell.marker:
                    row.append(cell.marker)
                else:
                    row.append(f"{cell.peak_mb:.1f}")
        rows.append(row)
    text = render_table(
        "Table III: peak traced memory in MB", columns, rows,
        note="tracemalloc peaks; OPT omitted (runs in a subprocess)",
    )
    return ExperimentResult("table3", text, sweep)


# ----------------------------------------------------------------------
# Table IV — LP vs exact on small graphs
# ----------------------------------------------------------------------
def run_table4(
    names: Sequence[str] | None = None,
    ks: Sequence[int] = KS,
    time_budget: float = DEFAULT_TIME_BUDGET,
) -> ExperimentResult:
    """Table IV: LP vs OPT with error ratio on small datasets."""
    names = list(names or datasets.SMALL_EXACT_NAMES)
    columns = ["Dataset", "n", "m"]
    for k in ks:
        columns += [f"LP k={k}", f"OPT k={k}", f"ER k={k}"]
    rows = []
    data = {}
    for name in names:
        graph = datasets.load(name)
        session = Session(graph)
        row = [name, graph.n, graph.m]
        data[name] = {}
        for k in ks:
            lp = session.solve(k, "lp")
            opt_cell = run_cell_subprocess(
                lambda: session.solve(
                    k, "opt", time_budget=time_budget, max_cliques=OPT_CLIQUE_CAP
                ).size,
                time_budget=time_budget,
            )
            if opt_cell.ok:
                opt_size = opt_cell.value
                err = 0.0 if opt_size == 0 else (opt_size - lp.size) / opt_size
                row += [lp.size, opt_size, f"{100 * err:.1f}%"]
            else:
                row += [lp.size, opt_cell.marker, "-"]
            data[name][k] = {
                "lp": lp.size,
                "opt": opt_cell.value if opt_cell.ok else opt_cell.marker,
            }
        rows.append(row)
    text = render_table("Table IV: comparison with exact solution", columns, rows)
    return ExperimentResult("table4", text, data)


# ----------------------------------------------------------------------
# Tables V & VI — synthetic Watts-Strogatz sweep
# ----------------------------------------------------------------------
def run_synthetic_sweep(
    degrees: Sequence[int] = (8, 16, 32, 64),
    n: int | None = None,
    ks: Sequence[int] = KS,
    rewire_p: float = 0.3,
    seed: int | None = None,
    time_budget: float = DEFAULT_TIME_BUDGET,
    clique_budget: int = DEFAULT_CLIQUE_BUDGET,
) -> dict[tuple[int, int, str], CellOutcome]:
    """The paper's synthetic scalability sweep (scaled to ``n`` nodes).

    ``seed=None`` uses the canonical ``synthetic_graph`` stream from
    :mod:`repro.bench.workloads`, keeping this sweep comparable with the
    pytest-driven synthetic benchmarks.
    """
    n = n if n is not None else scaled(1000, minimum=100)
    seed = seed if seed is not None else seed_for("synthetic_graph")
    grid: dict[tuple[int, int, str], CellOutcome] = {}
    for degree in degrees:
        session = Session(watts_strogatz(n, degree, rewire_p, seed=seed))
        for k in ks:
            for method in ("hg", "gc", "lp"):
                grid[(degree, k, method)] = _run_static_cell(
                    session, k, method, time_budget, clique_budget, trace_memory=False
                )
    return grid


def run_table5(
    sweep: dict | None = None,
    degrees: Sequence[int] = (8, 16, 32, 64),
    ks: Sequence[int] = KS,
    **kwargs: Any,
) -> ExperimentResult:
    """Table V: running time on synthetic Watts-Strogatz graphs."""
    sweep = sweep if sweep is not None else run_synthetic_sweep(degrees, ks=ks, **kwargs)
    columns = ["Degree"] + [f"{m.upper()} k={k}" for k in ks for m in ("hg", "gc", "lp")]
    rows = []
    for degree in degrees:
        row = [degree]
        for k in ks:
            for method in ("hg", "gc", "lp"):
                cell = sweep.get((degree, k, method))
                row.append(
                    cell.marker if (cell and cell.marker)
                    else (format_seconds(cell.seconds) if cell else "-")
                )
        rows.append(row)
    text = render_table("Table V: running time on synthetic datasets", columns, rows)
    return ExperimentResult("table5", text, sweep)


def run_table6(
    sweep: dict | None = None,
    degrees: Sequence[int] = (8, 16, 32, 64),
    ks: Sequence[int] = KS,
    **kwargs: Any,
) -> ExperimentResult:
    """Table VI: |S| on synthetic Watts-Strogatz graphs (deltas vs HG)."""
    sweep = sweep if sweep is not None else run_synthetic_sweep(degrees, ks=ks, **kwargs)
    columns = ["Degree"]
    for k in ks:
        columns += [f"HG k={k}", f"GC(d) k={k}", f"LP(d) k={k}"]
    rows = []
    for degree in degrees:
        row = [degree]
        for k in ks:
            hg = sweep.get((degree, k, "hg"))
            hg_size = hg.value if (hg and hg.ok) else None
            row.append(hg.display() if hg else "-")
            for method in ("gc", "lp"):
                cell = sweep.get((degree, k, method))
                if cell is None:
                    row.append("-")
                elif cell.marker:
                    row.append(cell.marker)
                elif hg_size is None:
                    row.append(str(cell.value))
                else:
                    row.append(f"{cell.value - hg_size:+d}")
        rows.append(row)
    text = render_table("Table VI: size of S on synthetic datasets", columns, rows)
    return ExperimentResult("table6", text, sweep)


# ----------------------------------------------------------------------
# Table VII — index construction
# ----------------------------------------------------------------------
def run_table7(names: Sequence[str] | None = None, ks: Sequence[int] = KS) -> ExperimentResult:
    """Table VII: candidate-index build time and size."""
    names = list(names or datasets.TABLE1_NAMES)
    columns = ["Dataset"] + [f"time k={k}" for k in ks] + [f"size k={k}" for k in ks]
    rows = []
    data = {}
    for name in names:
        graph = datasets.load(name)
        times, sizes = [], []
        data[name] = {}
        for k in ks:
            start = time.perf_counter()
            dyn = DynamicDisjointCliques(graph, k, method="lp")
            elapsed = time.perf_counter() - start
            times.append(format_seconds(elapsed))
            sizes.append(format_count(dyn.index_size))
            data[name][k] = {"seconds": elapsed, "index_size": dyn.index_size}
        rows.append([name] + times + sizes)
    text = render_table(
        "Table VII: indexing time and index size", columns, rows,
        note="time includes the initial LP solve (as in the paper)",
    )
    return ExperimentResult("table7", text, data)


# ----------------------------------------------------------------------
# Figure 7 & Table VIII — dynamic updates
# ----------------------------------------------------------------------
def run_dynamic_sweep(
    names: Sequence[str] | None = None,
    ks: Sequence[int] = KS,
    count: int | None = None,
    seed: int | None = None,
) -> dict[tuple[str, int, str], dict[str, float]]:
    """Timed update workloads; the basis of Figure 7 and Table VIII.

    For each dataset and k: delete ``count`` random edges (deletion
    workload), re-insert them (insertion workload), then run the mixed
    workload of ``2 * count`` updates from a fresh maintainer — matching
    the paper's protocol. Records mean per-update latency and the final
    |S| alongside a rebuild-from-scratch reference.

    ``seed=None`` draws the deletion and mixed streams from the
    canonical seeds in :mod:`repro.bench.workloads`; an explicit seed
    keeps the legacy ``seed`` / ``seed + 1`` split.
    """
    names = list(names or datasets.TABLE1_NAMES)
    count = count if count is not None else scaled(200, minimum=10)
    del_seed = seed if seed is not None else stream_seed("deletion")
    mix_seed = seed + 1 if seed is not None else stream_seed("mixed")
    grid: dict[tuple[str, int, str], dict[str, float]] = {}
    for name in names:
        graph = datasets.load(name)
        workload_n = min(count, graph.m // 4)
        for k in ks:
            deletions = deletion_workload(graph, workload_n, seed=del_seed)
            dyn = DynamicDisjointCliques(graph, k, method="lp")
            start = time.perf_counter()
            dyn.apply(deletions)
            del_time = (time.perf_counter() - start) / workload_n
            after_del = dyn.size
            rebuilt_del = find_disjoint_cliques(dyn.graph.snapshot(), k, method="lp").size
            grid[(name, k, "deletion")] = {
                "mean_seconds": del_time,
                "size": after_del,
                "rebuild": rebuilt_del,
                "count": workload_n,
            }

            insertions = [("insert", u, v) for _, u, v in deletions]
            start = time.perf_counter()
            dyn.apply(insertions)
            ins_time = (time.perf_counter() - start) / workload_n
            rebuilt_ins = find_disjoint_cliques(dyn.graph.snapshot(), k, method="lp").size
            grid[(name, k, "insertion")] = {
                "mean_seconds": ins_time,
                "size": dyn.size,
                "rebuild": rebuilt_ins,
                "count": workload_n,
            }

            start_graph, updates = mixed_workload(graph, workload_n, seed=mix_seed)
            dyn2 = DynamicDisjointCliques(start_graph, k, method="lp")
            start = time.perf_counter()
            dyn2.apply(updates)
            mix_time = (time.perf_counter() - start) / len(updates)
            rebuilt_mix = find_disjoint_cliques(dyn2.graph.snapshot(), k, method="lp").size
            grid[(name, k, "mixed")] = {
                "mean_seconds": mix_time,
                "size": dyn2.size,
                "rebuild": rebuilt_mix,
                "count": len(updates),
            }
    return grid


def run_fig7(
    sweep: dict | None = None,
    names: Sequence[str] | None = None,
    ks: Sequence[int] = KS,
    **kwargs: Any,
) -> ExperimentResult:
    """Figure 7: average update time per workload with varying k."""
    from repro.bench.plotting import ascii_log_chart

    names = list(names or datasets.TABLE1_NAMES)
    sweep = sweep if sweep is not None else run_dynamic_sweep(names, ks, **kwargs)
    blocks = []
    for name in names:
        series = {}
        raw = {}
        for workload in ("deletion", "insertion", "mixed"):
            cells = [
                sweep.get((name, k, workload), {}).get("mean_seconds", "-")
                for k in ks
            ]
            series[workload] = [
                format_micros(c) if isinstance(c, float) else c for c in cells
            ]
            raw[workload] = cells
        blocks.append(
            render_series(f"Figure 7({name}): average update time vs k", "k", list(ks), series, fmt=str)
        )
        blocks.append(
            ascii_log_chart(f"Figure 7({name})", "k", list(ks), raw, unit="s")
        )
    return ExperimentResult("fig7", "\n\n".join(blocks), sweep)


def run_table8(
    sweep: dict | None = None,
    names: Sequence[str] | None = None,
    ks: Sequence[int] = KS,
    **kwargs: Any,
) -> ExperimentResult:
    """Table VIII: |S| drift after updates vs rebuilding from scratch."""
    names = list(names or datasets.TABLE1_NAMES)
    sweep = sweep if sweep is not None else run_dynamic_sweep(names, ks, **kwargs)
    columns = ["Dataset"]
    for workload in ("Del", "Ins", "Mix"):
        columns += [f"{workload} k={k}" for k in ks]
    rows = []
    for name in names:
        row = [name]
        for workload in ("deletion", "insertion", "mixed"):
            for k in ks:
                cell = sweep.get((name, k, workload))
                row.append(f"{cell['size'] - cell['rebuild']:+d}" if cell else "-")
        rows.append(row)
    text = render_table(
        "Table VIII: quality of S after updates (delta vs rebuild)",
        columns,
        rows,
    )
    return ExperimentResult("table8", text, sweep)


# ----------------------------------------------------------------------
# Ablations (ours)
# ----------------------------------------------------------------------
def run_ablation_ordering(
    names: Sequence[str] | None = None, k: int = 4
) -> ExperimentResult:
    """HG solution size under different node orderings (Section IV-A)."""
    names = list(names or ["FTB", "HST", "FB", "FBP"])
    orderings = ("id", "degree", "degeneracy")
    rows = []
    data = {}
    for name in names:
        session = Session(datasets.load(name))
        sizes = {}
        for order in orderings:
            result = session.solve(k, "hg", order=order)
            sizes[order] = result.size
        lp = session.solve(k, "lp").size
        data[name] = {**sizes, "lp": lp}
        rows.append([name] + [sizes[o] for o in orderings] + [lp])
    text = render_table(
        f"Ablation: HG ordering sensitivity (k={k})",
        ["Dataset"] + [f"HG/{o}" for o in orderings] + ["LP"],
        rows,
    )
    return ExperimentResult("ablation_ordering", text, data)


def run_ablation_pruning(
    names: Sequence[str] | None = None, ks: Sequence[int] = KS
) -> ExperimentResult:
    """L vs LP: effect of score pruning on FindMin work and runtime."""
    names = list(names or ["FB", "FL", "OR"])
    rows = []
    data = {}
    for name in names:
        session = Session(datasets.load(name))
        for k in ks:
            # Prewarm the shared score pass so L and LP are timed on the
            # FindMin phase alone — the part pruning actually affects.
            session.warm([k])
            timings = {}
            for method in ("l", "lp"):
                start = time.perf_counter()
                result = session.solve(k, method)
                timings[method] = (time.perf_counter() - start, result.stats)
            l_time, l_stats = timings["l"]
            lp_time, lp_stats = timings["lp"]
            data[(name, k)] = {"l_seconds": l_time, "lp_seconds": lp_time}
            rows.append(
                [
                    name,
                    k,
                    format_seconds(l_time),
                    format_seconds(lp_time),
                    f"{l_time / lp_time:.2f}x" if lp_time else "-",
                    format_count(lp_stats.get("branches_pruned", 0)),
                ]
            )
    text = render_table(
        "Ablation: score-driven pruning (L vs LP)",
        ["Dataset", "k", "L time", "LP time", "speedup", "branches pruned"],
        rows,
        note="score pass prewarmed via the session; times cover FindMin only",
    )
    return ExperimentResult("ablation_pruning", text, data)


# ----------------------------------------------------------------------
# Memoized sweeps (shared across benchmark-runner cells)
# ----------------------------------------------------------------------
_SWEEP_CACHE: dict[tuple[Any, ...], Any] = {}


def clear_sweep_cache() -> None:
    """Drop every memoized sweep (tests use this to force re-runs)."""
    _SWEEP_CACHE.clear()


def _cached(key: tuple[Any, ...], build: Any) -> Any:
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = build()
    return _SWEEP_CACHE[key]


def cached_static_sweep(
    names: Sequence[str],
    ks: Sequence[int],
    time_budget: float = DEFAULT_TIME_BUDGET,
    clique_budget: int = DEFAULT_CLIQUE_BUDGET,
) -> dict[tuple[str, int, str], CellOutcome]:
    """Memoized :func:`run_static_sweep` so Fig6/T2/T3 cells share one pass."""
    key = ("static", tuple(names), tuple(ks), time_budget, clique_budget)
    return _cached(
        key,
        lambda: run_static_sweep(
            names, ks, time_budget=time_budget, clique_budget=clique_budget
        ),
    )


def cached_synthetic_sweep(
    degrees: Sequence[int],
    n: int,
    ks: Sequence[int],
    time_budget: float = DEFAULT_TIME_BUDGET,
    clique_budget: int = DEFAULT_CLIQUE_BUDGET,
) -> dict[tuple[int, int, str], CellOutcome]:
    """Memoized :func:`run_synthetic_sweep` so Tables V/VI share one pass."""
    key = ("synthetic", tuple(degrees), n, tuple(ks), time_budget, clique_budget)
    return _cached(
        key,
        lambda: run_synthetic_sweep(
            degrees, n=n, ks=ks, time_budget=time_budget, clique_budget=clique_budget
        ),
    )


def cached_dynamic_sweep(
    names: Sequence[str],
    ks: Sequence[int],
    count: int,
) -> dict[tuple[str, int, str], dict[str, float]]:
    """Memoized :func:`run_dynamic_sweep` so Fig7/Table VIII share one pass."""
    key = ("dynamic", tuple(names), tuple(ks), count)
    return _cached(key, lambda: run_dynamic_sweep(names, ks, count=count))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
_RUNNERS = {
    "table1": lambda: run_table1(),
    "fig6": lambda: run_fig6(),
    "table2": lambda: run_table2(),
    "table3": lambda: run_table3(),
    "table4": lambda: run_table4(),
    "table5": lambda: run_table5(),
    "table6": lambda: run_table6(),
    "table7": lambda: run_table7(),
    "fig7": lambda: run_fig7(),
    "table8": lambda: run_table8(),
    "ablation_ordering": lambda: run_ablation_ordering(),
    "ablation_pruning": lambda: run_ablation_pruning(),
}


def run_all() -> list[ExperimentResult]:
    """Run every artefact, sharing sweeps between related tables."""
    results = [run_table1()]
    static = run_static_sweep()
    results += [run_fig6(static), run_table2(static), run_table3(static)]
    results.append(run_table4())
    synthetic = run_synthetic_sweep()
    results += [run_table5(synthetic), run_table6(synthetic)]
    results.append(run_table7())
    dynamic = run_dynamic_sweep()
    results += [run_fig7(dynamic), run_table8(dynamic)]
    results += [run_ablation_ordering(), run_ablation_pruning()]
    return results


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: print the requested artefacts."""
    import sys

    args = list(argv if argv is not None else sys.argv[1:])
    if not args or args == ["all"]:
        for result in run_all():
            print(result.text)
            print()
        return 0
    unknown = [a for a in args if a not in _RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(_RUNNERS)}")
        return 2
    for arg in args:
        print(_RUNNERS[arg]().text)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
