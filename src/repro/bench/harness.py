"""Budgeted experiment execution with OOT/OOM outcomes.

The paper reports ``OOT`` when an algorithm exceeds 24 hours and ``OOM``
when it exceeds 504 GB. At laptop scale we keep the same semantics with
configurable budgets: every experiment cell runs through
:func:`run_cell`, which measures wall time and peak traced memory and
converts budget violations into markers instead of results.

Two enforcement layers:

* cooperative — solvers accept ``time_budget`` / ``max_cliques`` and
  raise :class:`OutOfTimeError` / :class:`OutOfMemoryError` themselves;
* harness-side — a subprocess runner (:func:`run_cell_subprocess`) kills
  cells that cannot self-interrupt.

Environment knobs (read once at import):

``REPRO_BENCH_TIME_BUDGET``   per-cell seconds (default 60)
``REPRO_BENCH_CLIQUE_BUDGET`` stored-clique cap for GC/OPT (default 250000)
``REPRO_BENCH_SCALE``         workload scale multiplier (default 1.0)
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # imported for annotations only
    from repro.core.session import Session

from repro.errors import OutOfMemoryError, OutOfTimeError

DEFAULT_TIME_BUDGET = float(os.environ.get("REPRO_BENCH_TIME_BUDGET", "60"))
DEFAULT_CLIQUE_BUDGET = int(os.environ.get("REPRO_BENCH_CLIQUE_BUDGET", "250000"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

OOT = "OOT"
OOM = "OOM"

#: How long the parent waits for a finished child's status report to
#: flush through the queue's feeder thread before declaring OOM. The
#: child has already exited; this only covers pipe latency.
_QUEUE_FLUSH_TIMEOUT = 5.0


@dataclass
class CellOutcome:
    """One experiment cell: a value or an OOT/OOM marker, plus costs.

    Attributes
    ----------
    value:
        The cell's payload (solver result, count, ...) or ``None`` when
        ``marker`` is set.
    marker:
        ``None``, ``"OOT"`` or ``"OOM"``.
    seconds:
        Wall-clock time spent (also set for budget violations).
    peak_mb:
        Peak tracemalloc memory in MiB (0 when tracing was off).
    """

    value: Any = None
    marker: str | None = None
    seconds: float = 0.0
    peak_mb: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the cell produced a real value."""
        return self.marker is None

    def display(self, fmt: Callable[[Any], str] = str) -> str:
        """Marker or formatted value, for table rendering."""
        return self.marker if self.marker else fmt(self.value)


def run_cell(
    fn: Callable[[], Any],
    time_budget: float | None = None,
    trace_memory: bool = False,
) -> CellOutcome:
    """Run ``fn`` in-process, translating budget errors into markers.

    Cooperative only: ``fn`` (or the solver inside it) is responsible for
    honouring ``time_budget`` via :class:`OutOfTimeError`. The harness
    additionally marks the cell OOT when the measured wall time exceeds
    the budget even if ``fn`` returned a value — mirroring the paper's
    "runtime above the limit is reported as OOT".
    """
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    outcome = CellOutcome()
    try:
        outcome.value = fn()
    except OutOfTimeError:
        outcome.marker = OOT
    except (OutOfMemoryError, MemoryError):
        outcome.marker = OOM
    outcome.seconds = time.perf_counter() - start
    if trace_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        outcome.peak_mb = peak / (1024 * 1024)
    if outcome.marker is None and time_budget is not None:
        if outcome.seconds > time_budget:
            outcome.marker = OOT
            outcome.value = None
    return outcome


def run_solve_cell(
    session: "Session",
    k: int,
    method: str,
    *,
    time_budget: float | None = None,
    max_cliques: int | None = None,
    trace_memory: bool = False,
) -> CellOutcome:
    """One solver cell through a :class:`~repro.core.session.Session`.

    Uses the method's registry metadata to forward only the budget
    options it actually supports: ``time_budget`` goes to methods with
    ``supports_time_budget`` (cooperative OOT), ``max_cliques`` to
    methods whose options accept it (cooperative OOM). The wall-clock
    OOT check of :func:`run_cell` applies to every method regardless.
    """
    m = session.registry.get(method)
    kwargs: dict[str, Any] = {}
    if time_budget is not None and m.supports_time_budget:
        kwargs["time_budget"] = time_budget
    if max_cliques is not None and "max_cliques" in m.options_cls.option_names():
        kwargs["max_cliques"] = max_cliques
    return run_cell(
        lambda: session.solve(k, method, **kwargs),
        time_budget=time_budget,
        trace_memory=trace_memory,
    )


def _drain_queue(queue: "multiprocessing.Queue") -> None:
    """Discard pending items and close a queue after a child kill.

    A terminated child may leave partial traffic in the pipe; draining
    then closing (with ``cancel_join_thread`` so the parent never blocks
    on the feeder) lets the queue's resources go away promptly.
    """
    try:
        while True:
            queue.get_nowait()
    except (_queue.Empty, OSError, EOFError):
        pass
    queue.close()
    queue.cancel_join_thread()


def _subprocess_target(fn: Callable[[], Any], queue: "multiprocessing.Queue") -> None:  # pragma: no cover - child process
    try:
        queue.put(("ok", fn()))
    except OutOfTimeError:
        queue.put(("oot", None))
    except (OutOfMemoryError, MemoryError):
        queue.put(("oom", None))
    except Exception as exc:  # surfaced in the parent
        queue.put(("err", repr(exc)))


def run_cell_subprocess(fn: Callable[[], Any], time_budget: float) -> CellOutcome:
    """Run ``fn`` in a forked child, hard-killing it at the budget.

    The child must return a picklable value. Use for cells that cannot
    honour budgets cooperatively (e.g. deep recursions in OPT).

    ``fn`` is an arbitrary closure (it typically captures a live
    :class:`Session`), so it only crosses the process boundary under a
    ``fork`` start method, where the child inherits it by memory
    snapshot instead of pickling. On platforms without ``fork`` the cell
    falls back to in-process cooperative enforcement: the budget is
    still honoured, but a cell that cannot self-interrupt may overrun.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return run_cell(fn, time_budget=time_budget)
    ctx = multiprocessing.get_context("fork")
    queue: multiprocessing.Queue = ctx.Queue()
    # Waived: the fork guard above guarantees memory inheritance, so the
    # unpicklable closure never actually crosses via pickling.
    proc = ctx.Process(target=_subprocess_target, args=(fn, queue))  # repro-lint: ignore=migration
    start = time.perf_counter()
    proc.start()
    proc.join(time_budget)
    outcome = CellOutcome(seconds=time.perf_counter() - start)
    if proc.is_alive():
        proc.terminate()
        proc.join()
        _drain_queue(queue)
        outcome.marker = OOT
        return outcome
    try:
        # The child's put() returns before its feeder thread has flushed
        # the pipe, so right after join() the parent's queue can still
        # *look* empty for a fast, successful child. Block briefly for
        # the report instead of misreading that race as an OOM kill.
        status, payload = queue.get(timeout=_QUEUE_FLUSH_TIMEOUT)
    except _queue.Empty:
        # Child exited without managing to report (typically the OOM
        # killer tearing it down before the feeder flushed).
        outcome.marker = OOM
        return outcome
    if status == "ok":
        outcome.value = payload
    elif status == "oot":
        outcome.marker = OOT
    elif status == "oom":
        outcome.marker = OOM
    else:
        raise RuntimeError(f"experiment cell failed: {payload}")
    return outcome


def scaled(value: int, minimum: int = 1) -> int:
    """Scale a workload size by ``REPRO_BENCH_SCALE`` (floor ``minimum``)."""
    return max(minimum, int(round(value * BENCH_SCALE)))
