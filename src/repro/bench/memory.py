"""Memory accounting helpers for the space-consumption experiments.

Table III reports per-algorithm memory. In CPython the honest equivalents
are (a) tracemalloc peaks around the solver call — what the harness's
``trace_memory`` flag records — and (b) deep object sizes of the data
structures an algorithm keeps alive, which this module estimates with a
recursive ``sys.getsizeof`` walk (shared objects counted once).
"""

from __future__ import annotations

import sys
from typing import Any, Iterable

import numpy as np


def deep_sizeof(obj: Any) -> int:
    """Approximate total bytes reachable from ``obj`` (shared counted once)."""
    seen: set[int] = set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        oid = id(current)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(current, np.ndarray):
            total += current.nbytes + sys.getsizeof(current)
            continue
        total += sys.getsizeof(current)
        if isinstance(current, dict):
            # Traversal order cannot affect the result: every reachable
            # object is visited exactly once (the ``seen`` id-set) and
            # folded into an order-independent sum.
            stack.extend(current.keys())  # repro-lint: ignore=iterorder
            stack.extend(current.values())  # repro-lint: ignore=iterorder
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        elif hasattr(current, "__dict__"):
            stack.append(vars(current))
        elif hasattr(current, "__slots__"):
            for slot in current.__slots__:
                if hasattr(current, slot):
                    stack.append(getattr(current, slot))
    return total


def mb(num_bytes: int) -> float:
    """Bytes to MiB."""
    return num_bytes / (1024 * 1024)


def graph_footprint_mb(graph: Any) -> float:
    """Deep size of a graph object in MiB."""
    return mb(deep_sizeof(graph))


def solution_footprint_mb(cliques: Iterable[frozenset[int]]) -> float:
    """Deep size of a clique list in MiB."""
    return mb(deep_sizeof(list(cliques)))
