"""ASCII chart rendering for the figure reproductions.

The paper's Figures 6 and 7 are log-scale line plots. A terminal
reproduction renders each (series, x) cell as a horizontal bar on a log
scale, which makes order-of-magnitude gaps between algorithms visible
at a glance. ``OOT``/``OOM`` markers render as labels instead of bars.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence


def _bar(value: float, lo: float, hi: float, width: int) -> str:
    if hi <= lo:
        return "#"
    fraction = (math.log10(value) - math.log10(lo)) / (
        math.log10(hi) - math.log10(lo)
    )
    return "#" * max(1, round(fraction * width))


def ascii_log_chart(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    unit: str = "s",
    width: int = 36,
) -> str:
    """Render series of positive values as log-scale ASCII bars.

    ``series`` maps a name to one value per x; values may be numbers or
    marker strings (``"OOT"``, ``"OOM"``, ``"-"``) which render as-is.
    """
    numeric = [
        v
        # Only min/max consume this list: order-insensitive.
        for values in series.values()  # repro-lint: ignore=iterorder
        for v in values
        if isinstance(v, (int, float)) and v > 0
    ]
    lo = min(numeric) if numeric else 1.0
    hi = max(numeric) if numeric else 1.0
    lines = [f"== {title} (log scale, {unit}) =="]
    name_width = max((len(name) for name in series), default=4)
    for name, values in series.items():
        for x, value in zip(x_values, values):
            label = f"{name:<{name_width}} {x_label}={x!s:<4}"
            if isinstance(value, (int, float)) and value > 0:
                bar = _bar(float(value), lo, hi, width)
                lines.append(f"{label} |{bar:<{width}}| {value:.4g}{unit}")
            elif isinstance(value, (int, float)):
                lines.append(f"{label} |{'':<{width}}| {value:.4g}{unit}")
            else:
                lines.append(f"{label} |{'':<{width}}| {value}")
        lines.append("")
    return "\n".join(lines).rstrip()


def sparkline(values: Sequence[float]) -> str:
    """Compact single-line trend (8-level block characters)."""
    blocks = "▁▂▃▄▅▆▇█"
    numeric = [float(v) for v in values]
    if not numeric:
        return ""
    lo, hi = min(numeric), max(numeric)
    if hi == lo:
        return blocks[0] * len(numeric)
    return "".join(
        blocks[min(7, int(7 * (v - lo) / (hi - lo) + 0.5))] for v in numeric
    )
