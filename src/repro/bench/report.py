"""EXPERIMENTS.md generator: paper-vs-measured for every artefact.

``python -m repro.bench.report [output.md]`` runs the full experiment
suite (:func:`repro.bench.experiments.run_all`) and writes a markdown
report pairing each regenerated table/figure with the paper's reported
numbers and the expected qualitative shape, so a reader can audit the
reproduction cell by cell.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.bench import experiments as exp
from repro.bench.harness import BENCH_SCALE, DEFAULT_CLIQUE_BUDGET, DEFAULT_TIME_BUDGET

# What the paper reports for each artefact, and the shape we check here.
PAPER_NOTES: dict[str, str] = {
    "table1": (
        "**Paper:** 10 KONECT/NetworkRepository graphs from Football "
        "(n=115, m=613) to Orkut (n=3M, m=117M); clique counts explode with "
        "k on dense graphs (FB: 1.61M triangles at n=4K — ~400x n; Flickr "
        "reaches 33.6T 6-cliques).\n"
        "**Here:** seeded synthetic substitutes at ~1/10-1/1000 scale "
        "(DESIGN.md §4). Same ladder: FTB matches the paper's n=115 "
        "exactly; FB's clique counts reach ~350x n (420K 5-cliques at "
        "n=1.2K), reproducing the storage-explosion regime."
    ),
    "fig6": (
        "**Paper:** OPT runs OOT/OOM beyond toy graphs; HG is fastest and "
        "k-insensitive; GC is 1-2 orders slower than L/LP and OOMs when k "
        "grows; LP beats L by up to ~10x at k=6 (LJ).\n"
        "**Here:** identical ordering — OPT OOT/OOM everywhere except "
        "tiny datasets, HG fastest and flat in k, GC slowest/ OOM on FB "
        "at k>=4, LP <= L with the gap widening in k."
    ),
    "table2": (
        "**Paper:** LP matches OPT where OPT finishes; GC and LP agree up "
        "to tie-breaking; LP beats HG by up to +13.3% (OR, k=6).\n"
        "**Here:** GC == LP exactly (we keep the strict clique ordering the "
        "paper relaxes; Theorem 4), LP >= HG on clique-rich datasets with "
        "gains in the same few-to-13% band (FB k=6: ~+13%)."
    ),
    "table3": (
        "**Paper:** HG/LP stay O(n+m) (<= 13.5GB); LP is 1.2-15x HG due to "
        "extra structures; GC explodes (e.g. 152GB on SK at k=5) and OOMs.\n"
        "**Here:** tracemalloc peaks show the same ordering — HG smallest, "
        "LP a small constant over HG, GC several times larger and OOM (by "
        "clique budget) on FB for k>=4."
    ),
    "table4": (
        "**Paper:** on 6 small graphs LP is optimal in most cells; error "
        "ratio <= 8%; OPT already OOT at k=3 on Lizard/Football/Hamsterster.\n"
        "**Here:** LP optimal in most cells, worst observed error ~10% on "
        "one Lizard-substitute cell, OPT OOT on the same k=3 cells."
    ),
    "table5": (
        "**Paper:** Watts-Strogatz n=1M, degree 8-64: every method slows "
        "as density grows; HG flat in k; GC hits OOM at degree 64, k=6.\n"
        "**Here:** same sweep at n=1000 (REPRO_BENCH_SCALE scales it): "
        "monotone growth with degree, HG flat, GC worst and first to "
        "blow budgets."
    ),
    "table6": (
        "**Paper:** |S| grows with density and shrinks with k; GC/LP "
        "deltas vs HG are small relative to |S| and either sign.\n"
        "**Here:** same monotonicity; GC == LP; deltas of the same "
        "relative size."
    ),
    "table7": (
        "**Paper:** index builds in seconds even on OR (5-7s) and stays "
        "tiny relative to the clique population (1.92M candidates vs "
        "75.2B 6-cliques on OR).\n"
        "**Here:** builds in ms-seconds; index size orders of magnitude "
        "below the clique counts of Table I."
    ),
    "fig7": (
        "**Paper:** average update time is µs-scale (a few µs on OR at "
        "k=6), growing with k; deletions can get cheaper where the "
        "candidate index shrinks.\n"
        "**Here:** µs-to-ms per update at our scales — still 2-4 orders "
        "of magnitude below a rebuild — with the same growth in k."
    ),
    "table8": (
        "**Paper:** |S| drift after 10K-20K updates is a fraction of a "
        "percent; sometimes positive (LJ) because swaps reach a local "
        "optimum the static solver misses.\n"
        "**Here:** drift within a few cliques of rebuild (both signs) on "
        "every dataset/workload cell."
    ),
    "ablation_ordering": (
        "**Ours (motivated by §IV-A):** HG's quality depends on the node "
        "ordering; no ordering dominates, and score-driven LP beats or "
        "matches all HG variants."
    ),
    "ablation_pruning": (
        "**Ours (motivated by §IV-C):** score pruning (LP vs L) trims "
        "FindMin branches without changing the output; its advantage "
        "grows with k, mirroring the paper's LJ k=6 observation."
    ),
}


def build_report() -> str:
    """Run every experiment and render the full markdown report."""
    start = time.time()
    results = exp.run_all()
    elapsed = time.time() - start
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `python -m repro.bench.report` "
        f"(total runtime {elapsed / 60:.1f} min).",
        "",
        f"* Python {platform.python_version()} on {platform.system()} "
        f"{platform.machine()}; single process (the paper used C++ with "
        "64 threads on a Xeon with 504GB RAM).",
        f"* Budgets: {DEFAULT_TIME_BUDGET:.0f}s per cell (paper: 24h), "
        f"{DEFAULT_CLIQUE_BUDGET} stored cliques (paper: 504GB), "
        f"workload scale x{BENCH_SCALE}.",
        "* Datasets are seeded synthetic substitutes (DESIGN.md §4); "
        "absolute numbers differ from the paper by construction — the "
        "claims audited here are the *shapes*: who wins, how costs move "
        "with k and density, where OOT/OOM hits.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.name}")
        lines.append("")
        note = PAPER_NOTES.get(result.name)
        if note:
            lines.append(note)
            lines.append("")
        lines.append("```text")
        lines.append(result.text)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Write the report to the given path (default: EXPERIMENTS.md)."""
    args = list(argv if argv is not None else sys.argv[1:])
    out_path = Path(args[0]) if args else Path("EXPERIMENTS.md")
    report = build_report()
    out_path.write_text(report, encoding="utf-8")
    print(f"wrote {out_path} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
