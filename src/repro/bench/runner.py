"""Manifest-based benchmark runner behind ``python -m repro bench``.

The unified experiment harness of the repository: a registry of every
benchmark suite (the five standalone ``BENCH_*`` perf trajectories plus
the fifteen paper table/figure/ablation suites under ``benchmarks/``),
executed into per-run result directories with full provenance:

``results/<run-id>/manifest.json``
    Suite specs and per-cell configs, canonical seeds
    (:func:`repro.bench.workloads.seed_manifest`), git SHA,
    python/numpy versions, cpu count and multiprocessing start method.
``results/<run-id>/metrics.jsonl``
    One JSON record per cell, streamed and flushed as cells finish, so
    a killed run keeps its partial results.
``results/<run-id>/summary.json``
    Per-suite rollups plus suite-level gate metrics aggregated from the
    cells (``check`` = AND, ``ratio`` = min, ``quality`` = sum).
``results/<run-id>/artefacts/``
    Rendered paper tables/figures (text), one file per cell.
``results/index.json``
    The cross-run ledger, appended after every run.

Each ``benchmarks/bench_*.py`` exposes ``cells(smoke=False)`` returning
:class:`CellSpec` objects; a cell function returns a plain dict whose
``"gate"`` key (built with :func:`ratio` / :func:`quality` /
:func:`check`) feeds the regression gate and whose ``"artefact"`` key
(text) is written to the artefacts directory — everything else is
recorded as metrics. Differential verification (backend equality,
parallel solution identity, GC==LP) runs in-band: a failed assertion
errors the cell, and errored cells fail both the run and the gate.

The gate (:func:`gate_run`) compares a fresh run against a baseline run
directory. When both runs have the same mode (smoke vs full), ratio
metrics must stay above ``baseline * (1 - max_speedup_loss)`` and
quality metrics within ``max_quality_drift``; across modes (a smoke run
gated against a migrated full-scale baseline) absolute timings are not
comparable, so the gate checks coverage, cell success, identity checks
and the absolute ``min_ratio`` floor instead.

Layer: bench (70) — imports harness/workloads/experiments and below,
and is imported only by the CLI.
"""

from __future__ import annotations

import importlib.util
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import InvalidParameterError
from repro.jsonsafe import json_safe

#: Version stamp written into every manifest/record/summary.
SCHEMA_VERSION = 1

#: Repository root (``src/repro/bench/runner.py`` -> three levels up).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Where the suite scripts live; overridable for tests/sandboxes.
BENCH_DIR = Path(
    os.environ.get("REPRO_BENCH_SUITES_DIR", str(REPO_ROOT / "benchmarks"))
)

#: Default cross-run results directory (``--results-dir`` overrides).
DEFAULT_RESULTS_DIR = REPO_ROOT / "results"


# ----------------------------------------------------------------------
# Gate-metric constructors (used by the bench scripts' cells())
# ----------------------------------------------------------------------
def ratio(value: float) -> dict[str, Any]:
    """A speedup-style gate metric: higher is better, min-aggregated.

    Same-mode gating fails when the fresh value drops below
    ``baseline * (1 - max_speedup_loss)``; cross-mode gating only
    enforces the absolute ``min_ratio`` floor.
    """
    return {"kind": "ratio", "value": float(value)}


def quality(value: float) -> dict[str, Any]:
    """A solution-quality gate metric: drift-bounded, sum-aggregated.

    Same-mode gating fails when ``|fresh - baseline|`` exceeds
    ``max_quality_drift * max(1, |baseline|)`` — deterministic seeds
    mean quality should not move at all, in either direction.
    """
    return {"kind": "quality", "value": float(value)}


def check(value: bool) -> dict[str, Any]:
    """An identity/shape gate metric: must be true, AND-aggregated."""
    return {"kind": "check", "value": bool(value)}


# ----------------------------------------------------------------------
# Suite registry
# ----------------------------------------------------------------------
@dataclass
class CellSpec:
    """One benchmark cell: a zero-argument callable plus its config.

    ``fn`` returns a dict; the ``"gate"`` and ``"artefact"`` keys are
    interpreted by the runner (see the module docstring), the rest is
    recorded verbatim (after :func:`repro.jsonsafe.json_safe`) as the
    cell's metrics.
    """

    name: str
    fn: Callable[[], dict[str, Any]]
    config: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SuiteSpec:
    """One registered suite: display metadata plus its script stem."""

    name: str
    stem: str
    kind: str
    title: str


#: Every benchmark suite, in execution order: paper artefacts first,
#: then the ablations, then the five standalone perf trajectories.
SUITES: tuple[SuiteSpec, ...] = (
    SuiteSpec("table1", "bench_table1_stats", "paper",
              "Table I: dataset statistics and clique counts"),
    SuiteSpec("fig6", "bench_fig6_runtime", "paper",
              "Figure 6: static algorithm running time vs k"),
    SuiteSpec("table2", "bench_table2_quality", "paper",
              "Table II: solution quality |S| per algorithm"),
    SuiteSpec("table3", "bench_table3_space", "paper",
              "Table III: peak memory per algorithm"),
    SuiteSpec("table4", "bench_table4_exact", "paper",
              "Table IV: LP vs the exact solution on small graphs"),
    SuiteSpec("table5", "bench_table5_synthetic_time", "paper",
              "Table V: runtime on synthetic Watts-Strogatz graphs"),
    SuiteSpec("table6", "bench_table6_synthetic_quality", "paper",
              "Table VI: |S| on synthetic Watts-Strogatz graphs"),
    SuiteSpec("table7", "bench_table7_indexing", "paper",
              "Table VII: candidate-index build time and size"),
    SuiteSpec("fig7", "bench_fig7_updates", "paper",
              "Figure 7: average update latency per workload"),
    SuiteSpec("table8", "bench_table8_quality_after_updates", "paper",
              "Table VIII: |S| drift after updates vs rebuild"),
    SuiteSpec("fig1", "bench_fig1_motivation", "paper",
              "Figure 1: teaming-event conversion motivation"),
    SuiteSpec("ablation_ordering", "bench_ablation_ordering", "ablation",
              "Ablation: HG node-ordering sensitivity"),
    SuiteSpec("ablation_pruning", "bench_ablation_pruning", "ablation",
              "Ablation: score-driven pruning (L vs LP)"),
    SuiteSpec("ablation_kcore", "bench_ablation_kcore", "ablation",
              "Ablation: (k-1)-core pruning preprocessing"),
    SuiteSpec("ablation_parallel", "bench_ablation_parallel", "ablation",
              "Ablation: parallel HeapInit worker invariance"),
    SuiteSpec("backend", "bench_backend", "perf",
              "Set-vs-CSR enumeration backend microbenchmark"),
    SuiteSpec("dynamic", "bench_dynamic", "perf",
              "Per-edge vs batched dynamic maintenance"),
    SuiteSpec("parallel", "bench_parallel", "perf",
              "Process-tier parallel solves vs sequential"),
    SuiteSpec("serve", "bench_serve", "perf",
              "Serving layer: warm pool and worker scaling"),
    SuiteSpec("anytime", "bench_anytime", "perf",
              "Anytime curves and preemptive goodput"),
)


def suite_names() -> list[str]:
    """Names of every registered suite, in execution order."""
    return [spec.name for spec in SUITES]


def get_suite(name: str) -> SuiteSpec:
    """Look up one suite spec by name."""
    for spec in SUITES:
        if spec.name == name:
            return spec
    raise InvalidParameterError(
        f"unknown benchmark suite {name!r}; known: {suite_names()}"
    )


_MODULE_CACHE: dict[str, Any] = {}


def load_bench_module(stem: str) -> Any:
    """Import ``benchmarks/<stem>.py`` by file path (cached).

    The benchmarks directory is deliberately not a package — scripts
    stay directly runnable — so the runner loads them under synthetic
    module names via :mod:`importlib`.
    """
    if stem in _MODULE_CACHE:
        return _MODULE_CACHE[stem]
    path = BENCH_DIR / f"{stem}.py"
    if not path.exists():
        raise InvalidParameterError(f"benchmark script not found: {path}")
    name = f"repro_bench_suites.{stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - importlib guard
        raise InvalidParameterError(f"cannot load benchmark script: {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    _MODULE_CACHE[stem] = module
    return module


def suite_cells(spec: SuiteSpec, smoke: bool) -> list[CellSpec]:
    """The cells a suite would run at the requested scale."""
    module = load_bench_module(spec.stem)
    return list(module.cells(smoke=smoke))


# ----------------------------------------------------------------------
# Provenance: environment, git, manifest
# ----------------------------------------------------------------------
def git_revision() -> str | None:
    """The repository's HEAD SHA, or ``None`` outside a usable checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_info() -> dict[str, Any]:
    """Python/numpy versions, platform, cpu count and mp start method."""
    import multiprocessing

    import numpy

    return {
        "python": platform.python_version(),
        "numpy": str(numpy.__version__),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "start_method": multiprocessing.get_start_method(allow_none=True)
        or "default",
        # Hash-randomization provenance: results must be byte-identical
        # under every seed (the CI double-run leg verifies this), so a
        # digest mismatch between two runs should be attributable.
        "python_hash_seed": os.environ.get("PYTHONHASHSEED") or "unset",
    }


def build_manifest(
    run_id: str,
    mode: str,
    suites: Sequence[tuple[SuiteSpec, Sequence[CellSpec]]],
) -> dict[str, Any]:
    """The run manifest: provenance plus the full plan of cells."""
    from repro.bench.harness import (
        BENCH_SCALE,
        DEFAULT_CLIQUE_BUDGET,
        DEFAULT_TIME_BUDGET,
    )
    from repro.bench.workloads import seed_manifest

    manifest: dict[str, Any] = {
        "schema": int(SCHEMA_VERSION),
        "run_id": str(run_id),
        "mode": str(mode),
        "created": str(time.strftime("%Y-%m-%dT%H:%M:%S%z")),
        "git_sha": git_revision(),
        "environment": environment_info(),
        "seeds": seed_manifest(),
        "budgets": {
            "time_budget_s": float(DEFAULT_TIME_BUDGET),
            "clique_budget": int(DEFAULT_CLIQUE_BUDGET),
            "bench_scale": float(BENCH_SCALE),
        },
        "suites": {},
    }
    for spec, cells in suites:
        manifest["suites"][spec.name] = {
            "kind": str(spec.kind),
            "title": str(spec.title),
            "script": str(f"benchmarks/{spec.stem}.py"),
            "cells": {
                cell.name: json_safe(cell.config) for cell in cells
            },
        }
    return manifest


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_cell_record(suite: SuiteSpec, cell: CellSpec) -> dict[str, Any]:
    """Execute one cell, capturing failures as ``status: "error"``.

    The returned record still carries ``"artefact_text"`` (if any);
    :func:`run_suites` writes it out and replaces it with the artefact's
    relative path before streaming the record.
    """
    record: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "suite": suite.name,
        "cell": cell.name,
        "status": "ok",
        "seconds": 0.0,
        "metrics": {},
        "gate": {},
    }
    start = time.perf_counter()
    try:
        payload = dict(cell.fn())
    except Exception as exc:  # streamed, not raised: the run continues
        record["status"] = "error"
        record["error"] = repr(exc)
    else:
        record["gate"] = payload.pop("gate", {})
        artefact = payload.pop("artefact", None)
        if artefact is not None:
            record["artefact_text"] = str(artefact)
        record["metrics"] = payload
    record["seconds"] = round(time.perf_counter() - start, 6)
    return record


def build_summary(
    run_id: str,
    mode: str,
    records: Iterable[Mapping[str, Any]],
    environment: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Aggregate streamed cell records into the run summary.

    Per suite: ok/error counts, total seconds and the errored cell
    names. Per gate metric: ``check`` values AND together (recording
    the first failing cell), ``ratio`` values take the minimum
    (recording the contributing cell), ``quality`` values sum.

    ``environment`` is the *manifest's* environment block — passed
    through (not re-read from the current process) so a summary rebuilt
    later by :func:`load_run` reports the hash seed the run actually
    executed under.
    """
    suites: dict[str, dict[str, Any]] = {}
    gate: dict[str, dict[str, Any]] = {}
    for record in records:
        entry = suites.setdefault(
            str(record.get("suite")),
            {"cells_ok": 0, "cells_error": 0, "seconds": 0.0, "errors": []},
        )
        entry["seconds"] = round(
            entry["seconds"] + float(record.get("seconds") or 0.0), 6
        )
        if record.get("status") == "ok":
            entry["cells_ok"] += 1
        else:
            entry["cells_error"] += 1
            entry["errors"].append(str(record.get("cell")))
        _fold_gate(gate, record)
    stats = {
        "suites_run": len(suites),
        "cells_ok": sum(e["cells_ok"] for e in suites.values()),
        "cells_error": sum(e["cells_error"] for e in suites.values()),
        "seconds_total": round(
            sum(e["seconds"] for e in suites.values()), 6
        ),
    }
    environment = environment or {}
    return {
        "schema": int(SCHEMA_VERSION),
        "run_id": str(run_id),
        "mode": str(mode),
        "python_hash_seed": str(environment.get("python_hash_seed", "unset")),
        "suites": suites,
        "gate": gate,
        "stats": stats,
    }


def _fold_gate(
    gate: dict[str, dict[str, Any]], record: Mapping[str, Any]
) -> None:
    suite_gate = gate.setdefault(str(record.get("suite")), {})
    for metric, spec in (record.get("gate") or {}).items():
        kind = spec.get("kind")
        value = spec.get("value")
        agg = suite_gate.get(metric)
        if agg is None:
            suite_gate[metric] = {
                "kind": kind,
                "value": bool(value) if kind == "check" else float(value),
                "cell": str(record.get("cell")),
            }
            continue
        if kind == "check":
            value = bool(value)
            if not value and agg["value"]:
                agg["cell"] = str(record.get("cell"))
            agg["value"] = bool(agg["value"] and value)
        elif kind == "ratio":
            value = float(value)
            if value < agg["value"]:
                agg["value"] = value
                agg["cell"] = str(record.get("cell"))
        elif kind == "quality":
            agg["value"] = float(agg["value"]) + float(value)
            agg["cell"] = "*"


@dataclass
class RunOutcome:
    """What :func:`run_suites` produced: the run directory plus totals."""

    run_dir: Path
    run_id: str
    cells_ok: int = 0
    cells_error: int = 0
    errors: list[str] = field(default_factory=list)


def default_run_id(smoke: bool) -> str:
    """Timestamp-based run id, tagged with the mode."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-smoke" if smoke else stamp


def _allocate_run_dir(results_root: Path, run_id: str | None, smoke: bool) -> tuple[Path, str]:
    """Create a fresh run directory, auto-suffixing timestamp collisions."""
    if run_id is not None:
        run_dir = results_root / run_id
        if run_dir.exists():
            raise InvalidParameterError(
                f"run directory already exists: {run_dir}"
            )
        run_dir.mkdir(parents=True)
        return run_dir, run_id
    base = default_run_id(smoke)
    for attempt in range(100):
        candidate = base if attempt == 0 else f"{base}-{attempt + 1}"
        run_dir = results_root / candidate
        try:
            run_dir.mkdir(parents=True)
        except FileExistsError:
            continue
        return run_dir, candidate
    raise InvalidParameterError(
        f"cannot allocate a run directory under {results_root}"
    )


def run_suites(
    names: Sequence[str] | None = None,
    *,
    smoke: bool = False,
    results_dir: str | Path | None = None,
    run_id: str | None = None,
    echo: Callable[[str], None] | None = None,
) -> RunOutcome:
    """Execute the selected suites into a fresh ``results/<run-id>/``.

    ``names=None`` runs every registered suite (the ``--reproduce-all``
    behaviour). The manifest is written before the first cell executes
    and ``metrics.jsonl`` is flushed per record, so interrupting the run
    still leaves usable provenance and partial results on disk; the
    summary and cross-run index are written in a ``finally`` block from
    whatever records exist.
    """
    say = echo if echo is not None else (lambda line: None)
    specs = [get_suite(name) for name in (list(names) if names else suite_names())]
    results_root = (
        Path(results_dir) if results_dir is not None else DEFAULT_RESULTS_DIR
    )
    results_root.mkdir(parents=True, exist_ok=True)
    run_dir, run_id = _allocate_run_dir(results_root, run_id, smoke)
    (run_dir / "artefacts").mkdir()
    mode = "smoke" if smoke else "full"

    plan = [(spec, suite_cells(spec, smoke)) for spec in specs]
    manifest = build_manifest(run_id, mode, plan)
    (run_dir / "manifest.json").write_text(
        json.dumps(json_safe(manifest), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    outcome = RunOutcome(run_dir=run_dir, run_id=run_id)
    records: list[dict[str, Any]] = []
    try:
        with (run_dir / "metrics.jsonl").open("w", encoding="utf-8") as stream:
            for spec, cells in plan:
                say(f"suite {spec.name} ({len(cells)} cells, {mode})")
                for cell in cells:
                    record = run_cell_record(spec, cell)
                    artefact_text = record.pop("artefact_text", None)
                    if artefact_text is not None:
                        rel = f"artefacts/{spec.name}--{cell.name}.txt"
                        (run_dir / rel).write_text(
                            artefact_text + "\n", encoding="utf-8"
                        )
                        record["artefact"] = rel
                    stream.write(json.dumps(json_safe(record)) + "\n")
                    stream.flush()
                    records.append(record)
                    if record["status"] == "ok":
                        outcome.cells_ok += 1
                        say(f"  {cell.name}: ok ({record['seconds']:.2f}s)")
                    else:
                        outcome.cells_error += 1
                        outcome.errors.append(
                            f"{spec.name}/{cell.name}: {record.get('error')}"
                        )
                        say(f"  {cell.name}: ERROR {record.get('error')}")
    finally:
        summary = build_summary(
            run_id, mode, records, environment=manifest.get("environment")
        )
        (run_dir / "summary.json").write_text(
            json.dumps(json_safe(summary), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        update_index(results_root, run_dir, manifest, summary)
    return outcome


def update_index(
    results_root: Path,
    run_dir: Path,
    manifest: Mapping[str, Any],
    summary: Mapping[str, Any],
) -> None:
    """Append (or replace) this run's entry in ``results/index.json``."""
    index_path = results_root / "index.json"
    try:
        index = json.loads(index_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        index = {"schema": SCHEMA_VERSION, "runs": []}
    runs = [
        entry
        for entry in index.get("runs", [])
        if entry.get("run_id") != manifest["run_id"]
    ]
    runs.append(
        {
            "run_id": manifest["run_id"],
            "mode": manifest["mode"],
            "created": manifest["created"],
            "git_sha": manifest["git_sha"],
            "path": run_dir.name,
            "suites": sorted(summary.get("suites", {})),
            "cells_ok": summary.get("stats", {}).get("cells_ok", 0),
            "cells_error": summary.get("stats", {}).get("cells_error", 0),
        }
    )
    index["schema"] = SCHEMA_VERSION
    index["runs"] = sorted(runs, key=lambda entry: str(entry.get("created") or ""))
    index_path.write_text(
        json.dumps(json_safe(index), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


# ----------------------------------------------------------------------
# Loading runs and gating
# ----------------------------------------------------------------------
@dataclass
class RunData:
    """A result directory loaded back: manifest, records and summary."""

    path: Path
    manifest: dict[str, Any]
    records: list[dict[str, Any]]
    summary: dict[str, Any]


def load_run(path: str | Path) -> RunData:
    """Load a run directory; rebuilds the summary for killed runs."""
    root = Path(path)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise InvalidParameterError(
            f"not a benchmark run directory (no manifest.json): {root}"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    records: list[dict[str, Any]] = []
    metrics_path = root / "metrics.jsonl"
    if metrics_path.exists():
        for line in metrics_path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                records.append(json.loads(line))
    summary_path = root / "summary.json"
    if summary_path.exists():
        summary = json.loads(summary_path.read_text(encoding="utf-8"))
    else:
        summary = build_summary(
            manifest.get("run_id", root.name),
            manifest.get("mode", "full"),
            records,
            environment=manifest.get("environment"),
        )
    return RunData(path=root, manifest=manifest, records=records, summary=summary)


@dataclass(frozen=True)
class GateThresholds:
    """Configurable regression-gate thresholds.

    ``max_speedup_loss``
        Same-mode only: a ratio metric may lose at most this fraction
        of the baseline value (0.5 = half the recorded speedup).
    ``max_quality_drift``
        Same-mode only: a quality metric may drift (either direction)
        by at most this fraction of ``max(1, |baseline|)``.
    ``min_ratio``
        Cross-mode: the absolute floor every ratio metric must clear
        (0.0 keeps cross-mode gating to coverage + identity checks).
    """

    max_speedup_loss: float = 0.5
    max_quality_drift: float = 0.05
    min_ratio: float = 0.0


def gate_run(
    fresh: RunData,
    baseline: RunData,
    thresholds: GateThresholds | None = None,
) -> list[str]:
    """Compare a fresh run against a baseline; return failure messages.

    Every suite with gate metrics in the baseline must be present in
    the fresh run with zero errored cells; every baseline gate metric
    must be present and pass its kind-specific comparison (see
    :class:`GateThresholds`). An empty list means the gate passed.
    """
    thresholds = thresholds or GateThresholds()
    failures: list[str] = []
    same_mode = fresh.manifest.get("mode") == baseline.manifest.get("mode")
    fresh_suites = fresh.summary.get("suites", {})
    fresh_gate = fresh.summary.get("gate", {})
    for suite, base_metrics in sorted(baseline.summary.get("gate", {}).items()):
        suite_entry = fresh_suites.get(suite)
        if suite_entry is None:
            failures.append(
                f"suite '{suite}': present in baseline but missing from the fresh run"
            )
            continue
        if suite_entry.get("cells_error"):
            errored = ", ".join(suite_entry.get("errors", [])) or "?"
            failures.append(
                f"suite '{suite}': {suite_entry['cells_error']} cell(s) "
                f"errored ({errored})"
            )
        metrics = fresh_gate.get(suite, {})
        for metric, base in sorted(base_metrics.items()):
            spec = metrics.get(metric)
            if spec is None:
                failures.append(
                    f"suite '{suite}' metric '{metric}': missing from the fresh run"
                )
                continue
            kind = base.get("kind")
            cell = spec.get("cell", "?")
            if kind == "check":
                if not spec.get("value"):
                    failures.append(
                        f"suite '{suite}' cell '{cell}' metric '{metric}': "
                        "identity/shape check failed"
                    )
            elif kind == "ratio":
                value = float(spec.get("value", 0.0))
                if same_mode:
                    base_value = float(base.get("value", 0.0))
                    floor = base_value * (1.0 - thresholds.max_speedup_loss)
                    if value < floor:
                        failures.append(
                            f"suite '{suite}' cell '{cell}' metric '{metric}': "
                            f"x{value:.2f} below the regression floor "
                            f"x{floor:.2f} (baseline x{base_value:.2f}, "
                            f"max speedup loss "
                            f"{thresholds.max_speedup_loss:.0%})"
                        )
                elif value < thresholds.min_ratio:
                    failures.append(
                        f"suite '{suite}' cell '{cell}' metric '{metric}': "
                        f"x{value:.2f} below the absolute floor "
                        f"x{thresholds.min_ratio:.2f} (cross-mode gate)"
                    )
            elif kind == "quality" and same_mode:
                base_value = float(base.get("value", 0.0))
                drift = abs(float(spec.get("value", 0.0)) - base_value)
                allowed = thresholds.max_quality_drift * max(1.0, abs(base_value))
                if drift > allowed:
                    failures.append(
                        f"suite '{suite}' cell '{cell}' metric '{metric}': "
                        f"quality drifted by {drift:g} from baseline "
                        f"{base_value:g} (allowed {allowed:g}, max drift "
                        f"{thresholds.max_quality_drift:.0%})"
                    )
    return failures
