"""Paper-style plain-text table and series rendering.

The experiment runners produce row dictionaries; these helpers lay them
out as aligned monospace tables (for the Table I-VIII reproductions) or
as small ASCII line-series blocks (for the Figure 6/7 reproductions),
so ``EXPERIMENTS.md`` and the bench logs read like the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence


def format_count(value: Any) -> str:
    """Format large counts the way the paper's Table I does (K/M/B/T)."""
    if not isinstance(value, (int, float)):
        return str(value)
    number = float(value)
    for threshold, suffix in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(number) >= threshold:
            scaled = number / threshold
            return f"{scaled:.3g}{suffix}"
    if number == int(number):
        return str(int(number))
    return f"{number:.3g}"


def format_seconds(value: Any) -> str:
    """Human-friendly duration (ms below 1s, else seconds)."""
    if not isinstance(value, (int, float)):
        return str(value)
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    return f"{value:.2f}s"


def format_micros(value: Any) -> str:
    """Microsecond latency formatting for the update benchmarks."""
    if not isinstance(value, (int, float)):
        return str(value)
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    return format_seconds(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    note: str = "",
) -> str:
    """Render an aligned monospace table with a title rule."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", line(list(columns)), rule]
    out += [line(row) for row in str_rows]
    if note:
        out.append(f"   note: {note}")
    return "\n".join(out)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    fmt: Callable[[Any], str] = format_seconds,
) -> str:
    """Render figure data as one row per series (x values as columns)."""
    columns = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        rows.append([name] + [v if isinstance(v, str) else fmt(v) for v in values])
    return render_table(title, columns, rows)
