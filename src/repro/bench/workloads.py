"""Canonical benchmark seeds and shared workload construction.

Every benchmark — the pytest-driven ``benchmarks/bench_*.py`` cells,
the standalone BENCH scripts and the :mod:`repro.bench.experiments`
runners — must measure the *same* streams, or cross-run comparisons
silently compare different workloads. This module is the single place
those seeds live:

* :data:`SEEDS` names every random stream the benchmarks draw from;
* :func:`stream_seed` maps an update-workload kind to its stream seed;
* :func:`bench_workload` builds a Section VI-E workload with the
  canonical seed (delegating to
  :func:`repro.dynamic.workload.make_workload`);
* :func:`seed_manifest` is what the :mod:`repro.bench.runner` records
  into every run's ``manifest.json``, so a result directory documents
  exactly which streams produced it.

Changing a value here changes what every benchmark measures — treat the
table like a file format and bump deliberately.
"""

from __future__ import annotations

from repro.dynamic.workload import Update, make_workload
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

#: Every named random stream used by the benchmark suites. Grouped by
#: consumer; keep values stable across PRs (they define the recorded
#: perf trajectory).
SEEDS: dict[str, int] = {
    # Synthetic benchmark graphs (powerlaw_cluster / watts_strogatz).
    "synthetic_graph": 7,
    # Fig 1 social graph and the serve/anytime tenant graphs.
    "social_graph": 9,
    # Deletion/insertion update streams (Section VI-E).
    "update_stream": 11,
    # Mixed update streams (pre-delete + interleaved re-insert/delete).
    "mixed_stream": 12,
    # Fig 1 conversion-model simulation RNG.
    "conversion_rng": 4,
}


def seed_for(stream: str) -> int:
    """Canonical seed of a named stream (see :data:`SEEDS`)."""
    try:
        return SEEDS[stream]
    except KeyError:
        raise InvalidParameterError(
            f"unknown benchmark stream {stream!r}; known: {sorted(SEEDS)}"
        ) from None


def stream_seed(kind: str) -> int:
    """Seed for an update-workload ``kind`` (deletion/insertion/mixed)."""
    if kind in ("deletion", "insertion"):
        return SEEDS["update_stream"]
    if kind == "mixed":
        return SEEDS["mixed_stream"]
    raise InvalidParameterError(
        f"unknown workload kind {kind!r}; expected deletion, insertion or mixed"
    )


def bench_workload(
    graph: Graph, kind: str, count: int
) -> tuple[Graph, list[Update]]:
    """Build the canonical benchmark workload: ``(start_graph, updates)``.

    Same contract as :func:`repro.dynamic.workload.make_workload`, with
    the seed pinned by :func:`stream_seed` — the one entry point the
    runner, the pytest benchmarks and the standalone BENCH scripts share
    so they all time identical streams.
    """
    return make_workload(graph, kind, count, seed=stream_seed(kind))


def seed_manifest() -> dict[str, int]:
    """A copy of :data:`SEEDS` for embedding into run manifests."""
    return dict(SEEDS)
