"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``        pack disjoint k-cliques in a dataset or edge-list file
``stats``        dataset statistics (Table I row for one graph)
``compare``      run several methods side by side with certificates
``methods``      print the solver registry (tags, exactness, options)
``dynamic``      apply an update workload and report latency and drift
``serve``        run the multi-tenant NDJSON server on stdin/stdout
                 (see ``docs/serving.md`` for the protocol)
``experiments``  regenerate the paper's tables/figures (delegates to
                 :mod:`repro.bench.experiments`)
``datasets``     list the registered datasets

Solver commands dispatch through the session API
(:class:`repro.core.session.Session`): one session per loaded graph, so
multi-method runs like ``compare`` share the preprocessing (node
scores, clique listings, DAG orientations) instead of recomputing it
per method. Method tags come from the solver registry
(:data:`repro.core.registry.REGISTRY`); see ``methods`` for the full
list with per-method options.

Examples
--------
::

    python -m repro solve --dataset FTB --k 4 --method lp
    python -m repro solve --input my.edges --k 3 --output teams.txt
    python -m repro solve --dataset FB --k 4 --anytime --progress-every 500
    python -m repro stats --dataset HST --ks 3 4 5
    python -m repro compare --dataset FB --k 5 --methods hg lp
    python -m repro methods
    python -m repro dynamic --dataset HST --k 4 --workload mixed --count 100
    python -m repro dynamic --dataset HST --k 4 --batch-size 128 --backend csr
    python -m repro serve --workers 2 --pool-sessions 8
    python -m repro experiments table1 fig7
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # imported for annotations only
    from repro.core.result import CliqueSetResult
    from repro.core.session import Session
    from repro.core.task import SolveTask

from repro.graph import datasets
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.dataset:
        return datasets.load(args.dataset)
    if args.input:
        graph, _ = read_edge_list(Path(args.input))
        return graph
    raise SystemExit("error: provide --dataset NAME or --input FILE")


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="registered dataset name (see 'datasets')")
    parser.add_argument("--input", help="edge-list file (u v per line)")


def run_anytime(
    task: "SolveTask",
    progress_every: int,
    should_stop: Callable[[], bool],
    log: Callable[[int, int, int], None],
) -> tuple[bool, int]:
    """Drive a :class:`~repro.core.task.SolveTask` in anytime mode.

    Steps ``progress_every`` work units at a time, calling
    ``log(size, bound, work)`` whenever the solution size or bound
    improved, until the task completes or ``should_stop()`` turns true
    (the CLI wires that to SIGINT). Returns ``(interrupted, work)``.
    """
    last = None
    while True:
        if should_stop():
            return True, task.work
        snapshot = task.step(max_work=progress_every)
        if (snapshot.size, snapshot.bound) != last:
            last = (snapshot.size, snapshot.bound)
            log(snapshot.size, snapshot.bound, snapshot.work)
        if snapshot.done:
            return False, task.work


def _write_solution(
    result: "CliqueSetResult",
    args: argparse.Namespace,
    stream: "object | None" = None,
) -> None:
    """Write the solution file, confirming on ``stream`` (default stderr).

    JSON/anytime mode keeps stdout machine-readable, so the
    confirmation defaults to stderr; the prose path passes stdout.
    """
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            for clique in result.sorted_cliques():
                fh.write(" ".join(map(str, clique)) + "\n")
        print(
            f"wrote {result.size} cliques to {args.output}",
            file=stream if stream is not None else sys.stderr,
        )


def _run_solve(session: "Session", args: argparse.Namespace) -> "CliqueSetResult":
    """One whole solve honouring ``--workers`` / ``--parallel``.

    ``--parallel process`` routes through a short-lived
    :class:`repro.parallel.pool.ProcessSolvePool` (methods with a
    process decomposition: ``l``/``lp``/``opt-bb``); ``--workers N``
    alone parallelises the ``l``/``lp`` HeapInit phase in-engine.
    Either way the solution is identical to the sequential run.
    """
    from repro.errors import InvalidParameterError

    try:
        if args.parallel == "process":
            from repro.parallel import ProcessSolvePool

            with ProcessSolvePool(session, workers=max(1, args.workers)) as pool:
                return pool.solve(args.k, args.method)
        if args.workers != 1:
            if args.method not in ("l", "lp"):
                raise SystemExit(
                    f"error: --workers applies to methods l/lp (got "
                    f"{args.method!r}); use --parallel process for opt-bb"
                )
            return session.solve(args.k, method=args.method, workers=args.workers)
        return session.solve(args.k, method=args.method)
    except InvalidParameterError as exc:
        raise SystemExit(f"error: {exc}")


def cmd_solve(args: argparse.Namespace) -> int:
    import json
    import signal

    if args.anytime and args.parallel != "none":
        raise SystemExit(
            "error: --anytime drives the solve locally; drop --parallel "
            "(checkpointed process execution is the serve scheduler's job)"
        )
    if args.workers < 0:
        raise SystemExit("error: --workers must be >= 0 (0 = CPU count)")
    graph = _load_graph(args)
    start = time.perf_counter()
    from repro.core.session import Session

    session = Session(graph)
    interrupted = False
    bound = None
    work = None
    if args.anytime:
        if args.progress_every < 1:
            raise SystemExit("error: --progress-every must be >= 1")
        from repro.errors import InvalidParameterError

        try:
            task = session.task(args.k, method=args.method)
        except InvalidParameterError as exc:
            raise SystemExit(f"error: {exc}")
        stop_flag = []

        def on_sigint(signum, frame):  # pragma: no cover - signal path
            stop_flag.append(True)

        def log(size, bound, work):
            print(
                f"anytime: |S|={size} bound={bound} work={work}",
                file=sys.stderr,
            )

        previous = signal.signal(signal.SIGINT, on_sigint)
        try:
            interrupted, work = run_anytime(
                task, args.progress_every, lambda: bool(stop_flag), log
            )
        finally:
            signal.signal(signal.SIGINT, previous)
        result = task.best()
        bound = task.bound()
    else:
        result = _run_solve(session, args)
    elapsed = time.perf_counter() - start

    if args.json or args.anytime:
        payload = {
            "k": args.k,
            "method": args.method,
            "size": result.size,
            "coverage": round(result.coverage(graph.n), 4),
            "time_s": round(elapsed, 4),
            "interrupted": interrupted,
        }
        if bound is not None:
            payload["bound"] = bound
            payload["work"] = work
        if args.show:
            payload["cliques"] = [
                list(c) for c in result.sorted_cliques()[: args.show]
            ]
        print(json.dumps(payload))
        _write_solution(result, args)
        return 0

    print(
        f"graph n={graph.n} m={graph.m} | k={args.k} method={args.method} | "
        f"|S|={result.size} coverage={100 * result.coverage(graph.n):.1f}% "
        f"time={elapsed:.3f}s"
    )
    if args.output:
        _write_solution(result, args, stream=sys.stdout)
    elif args.show:
        for clique in result.sorted_cliques()[: args.show]:
            print("  " + " ".join(map(str, clique)))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    from repro.cliques.counting import clique_profile
    from repro.graph.kcore import core_numbers
    from repro.bench.tables import format_count

    profile = clique_profile(graph, ks=tuple(args.ks))
    cores = core_numbers(graph)
    print(f"n={graph.n} m={graph.m} max_degree={graph.max_degree()} "
          f"degeneracy={int(cores.max()) if graph.n else 0}")
    for k, count in profile.items():
        print(f"  {k}-cliques: {format_count(count)}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    from repro.analysis.compare import compare_methods
    from repro.core.session import Session

    # One shared session: every method reuses the same preprocessing.
    rows = compare_methods(Session(graph), args.k, methods=args.methods)
    print(f"{'method':<8} {'|S|':>7} {'time':>9} {'coverage':>9} {'certificate':>12}")
    for row in rows:
        cert = "inf" if row.certificate == float("inf") else f"{row.certificate:.3f}"
        print(
            f"{row.method:<8} {row.size:>7} {row.seconds:>8.3f}s "
            f"{100 * row.coverage:>8.1f}% {cert:>12}"
        )
    return 0


def cmd_dynamic(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    from repro.core.session import Session
    from repro.dynamic.workload import make_workload

    count = min(args.count, graph.m // 4)
    start_graph, updates = make_workload(graph, args.workload, count, seed=args.seed)

    build_start = time.perf_counter()
    dyn = Session(start_graph).dynamic(args.k)
    build = time.perf_counter() - build_start
    apply_start = time.perf_counter()
    if args.batch_size < 0:
        raise SystemExit(f"error: --batch-size must be >= 0, got {args.batch_size}")
    if args.batch_size:
        dyn.apply(updates, batch_size=args.batch_size, backend=args.backend)
        mode = f"batched({args.batch_size},{args.backend})"
    else:
        dyn.apply(updates)
        mode = "per-edge"
    apply_s = time.perf_counter() - apply_start
    per_update = apply_s / len(updates)
    rebuilt = Session(dyn.graph.snapshot()).solve(args.k, method="lp")
    print(
        f"workload={args.workload} updates={len(updates)} mode={mode} | "
        f"build={build:.2f}s mean-update={per_update * 1e6:.1f}us "
        f"({len(updates) / apply_s:.0f} updates/s) | |S|={dyn.size} "
        f"(rebuild {rebuilt.size}, drift {dyn.size - rebuilt.size:+d}) | "
        f"index={dyn.index_size}"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import Server

    server = Server(
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_sessions=args.pool_sessions,
        max_bytes=args.pool_bytes,
        quantum=args.quantum if args.quantum > 0 else None,
    )
    if not args.quiet:
        print(
            f"repro serve: workers={args.workers} queue_limit={args.queue_limit} "
            f"pool_sessions={args.pool_sessions} pool_bytes={args.pool_bytes} "
            "(NDJSON on stdin/stdout; send {\"op\": \"shutdown\"} or EOF to stop)",
            file=sys.stderr,
        )
    return server.serve_stdio(sys.stdin, sys.stdout)


def cmd_datasets(_args: argparse.Namespace) -> int:
    for spec in datasets.specs():
        print(f"{spec.name:<10} [{spec.tier:<6}] {spec.description}")
    return 0


def cmd_methods(_args: argparse.Namespace) -> int:
    from repro.core.registry import REGISTRY

    print(
        f"{'tag':<8} {'kind':<10} {'resumable':<10} {'time_budget':<12} "
        f"{'deadline':<9} {'warm_start':<11} options"
    )
    for method in REGISTRY:
        kind = "exact" if method.exact else "heuristic"
        resumable = "yes" if method.resumable else "no"
        budget = "yes" if method.supports_time_budget else "no"
        deadline = "yes" if method.can_meet_deadline else "no"
        warm = "yes" if method.supports_warm_start else "no"
        print(
            f"{method.tag:<8} {kind:<10} {resumable:<10} {budget:<12} "
            f"{deadline:<9} {warm:<11} {method.options_cls.describe()}"
        )
        print(f"{'':<8} {method.summary}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.experiments import main as experiments_main

    return experiments_main(args.artefacts or ["all"])


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import runner as bench_runner

    if args.list:
        for spec in bench_runner.SUITES:
            print(f"{spec.name:<18} [{spec.kind:<8}] {spec.title}")
        return 0

    names = list(args.suites) or None
    if args.reproduce_all:
        names = None
    if names is not None:
        for name in names:
            bench_runner.get_suite(name)  # fail fast on typos

    outcome = bench_runner.run_suites(
        names,
        smoke=args.smoke,
        results_dir=args.results_dir,
        run_id=args.run_id,
        echo=print,
    )
    print(f"run {outcome.run_id}: {outcome.cells_ok} cells ok, "
          f"{outcome.cells_error} errored -> {outcome.run_dir}")
    for line in outcome.errors:
        print(f"  ERROR {line}", file=sys.stderr)

    exit_code = 1 if outcome.cells_error else 0
    if args.gate:
        thresholds = bench_runner.GateThresholds(
            max_speedup_loss=args.max_speedup_loss,
            max_quality_drift=args.max_quality_drift,
            min_ratio=args.min_ratio,
        )
        fresh = bench_runner.load_run(outcome.run_dir)
        baseline = bench_runner.load_run(args.gate)
        failures = bench_runner.gate_run(fresh, baseline, thresholds)
        gate_payload = {
            "baseline": str(baseline.path),
            "thresholds": {
                "max_speedup_loss": thresholds.max_speedup_loss,
                "max_quality_drift": thresholds.max_quality_drift,
                "min_ratio": thresholds.min_ratio,
            },
            "failures": failures,
            "passed": not failures,
        }
        (outcome.run_dir / "gate.json").write_text(
            json.dumps(gate_payload, indent=2) + "\n", encoding="utf-8"
        )
        if failures:
            print(f"GATE FAILED vs {baseline.path}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            exit_code = 1
        else:
            print(f"gate passed vs {baseline.path}")
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    from repro.core.registry import REGISTRY

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maximum sets of disjoint k-cliques (ICDE 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="pack disjoint k-cliques")
    _add_graph_args(p)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--method", default="lp", choices=list(REGISTRY.tags()))
    p.add_argument("--output", help="write cliques to a file")
    p.add_argument("--show", type=int, default=0, help="print first N cliques")
    p.add_argument(
        "--anytime",
        action="store_true",
        help="run as a resumable task: stream improving |S|/bound lines to "
        "stderr, print a JSON summary, and exit cleanly (code 0, "
        '"interrupted": true) with the best-so-far solution on SIGINT',
    )
    p.add_argument(
        "--progress-every",
        type=int,
        default=1000,
        metavar="N",
        help="anytime mode: check/report progress every N work units",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON summary instead of prose",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = CPU count); >1 parallelises the "
        "l/lp HeapInit phase without changing the solution",
    )
    p.add_argument(
        "--parallel",
        default="none",
        choices=("none", "process"),
        help="process-parallel execution tier: 'process' runs the solve "
        "over shared-memory CSR worker processes (methods l/lp/opt-bb)",
    )
    p.set_defaults(fn=cmd_solve)

    p = sub.add_parser("stats", help="graph statistics")
    _add_graph_args(p)
    p.add_argument("--ks", type=int, nargs="+", default=[3, 4, 5, 6])
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("compare", help="compare solver methods")
    _add_graph_args(p)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--methods", nargs="+", default=["hg", "lp"])
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("dynamic", help="run an update workload")
    _add_graph_args(p)
    p.add_argument("--k", type=int, default=4)
    p.add_argument(
        "--workload", default="mixed", choices=["deletion", "insertion", "mixed"]
    )
    p.add_argument("--count", type=int, default=100)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="coalesce updates into batches of this size (0 = per-edge)",
    )
    p.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "sets", "csr"],
        help="dirty-region refresh engine for batched application",
    )
    p.set_defaults(fn=cmd_dynamic)

    p = sub.add_parser("serve", help="serve NDJSON requests on stdin/stdout")
    p.add_argument("--workers", type=int, default=1,
                   help="scheduler worker threads")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="bounded-queue admission limit (backpressure)")
    p.add_argument("--pool-sessions", type=int, default=None,
                   help="max resident sessions in the pool")
    p.add_argument("--pool-bytes", type=int, default=None,
                   help="session-pool byte budget")
    p.add_argument("--quantum", type=float, default=0.05,
                   help="preemption timeslice in seconds for resumable "
                        "solves (0 disables preemption)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the startup banner on stderr")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("datasets", help="list registered datasets")
    p.set_defaults(fn=cmd_datasets)

    p = sub.add_parser("methods", help="print the solver registry")
    p.set_defaults(fn=cmd_methods)

    p = sub.add_parser("experiments", help="regenerate tables/figures")
    p.add_argument("artefacts", nargs="*", help="e.g. table1 fig6 (default: all)")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser(
        "bench",
        help="run benchmark suites into a manifest-backed results directory",
    )
    p.add_argument("suites", nargs="*",
                   help="suite names to run (default: all; see --list)")
    p.add_argument("--list", action="store_true",
                   help="list registered suites and exit")
    p.add_argument("--smoke", action="store_true",
                   help="reduced-scale run (minutes, not hours)")
    p.add_argument("--reproduce-all", action="store_true",
                   help="run every registered suite (ignores positional names)")
    p.add_argument("--gate", metavar="BASELINE", default=None,
                   help="compare against a baseline run directory and fail "
                        "on regressions")
    p.add_argument("--results-dir", type=Path, default=None,
                   help="results root (default: <repo>/results)")
    p.add_argument("--run-id", default=None,
                   help="explicit run directory name (default: timestamp)")
    p.add_argument("--max-speedup-loss", type=float, default=0.5,
                   help="same-mode gate: allowed fractional loss on ratio "
                        "metrics (default 0.5)")
    p.add_argument("--max-quality-drift", type=float, default=0.05,
                   help="same-mode gate: allowed relative drift on quality "
                        "metrics (default 0.05)")
    p.add_argument("--min-ratio", type=float, default=0.0,
                   help="cross-mode gate: absolute floor for ratio metrics "
                        "(default 0.0)")
    p.set_defaults(fn=cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. piping into `head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
