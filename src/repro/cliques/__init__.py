"""k-clique listing, counting and the clique graph."""

from repro.cliques.listing import (
    cliques_through_edge,
    cliques_through_node,
    count_cliques,
    iter_cliques,
    iter_cliques_in_nodes,
    list_cliques,
)
from repro.cliques.counting import clique_profile, node_scores, total_cliques_from_scores
from repro.cliques.clique_graph import CliqueGraph, build_clique_graph
from repro.cliques.csr_kernels import AUTO_EDGE_THRESHOLD, BACKENDS, resolve_backend

__all__ = [
    "BACKENDS",
    "AUTO_EDGE_THRESHOLD",
    "resolve_backend",
    "iter_cliques",
    "list_cliques",
    "count_cliques",
    "cliques_through_edge",
    "cliques_through_node",
    "iter_cliques_in_nodes",
    "node_scores",
    "total_cliques_from_scores",
    "clique_profile",
    "CliqueGraph",
    "build_clique_graph",
]
