"""The clique graph (Definition 2): one node per k-clique, edges on overlap.

This is the structure the straightforward baseline materialises before
running maximum-independent-set — and precisely the overhead the paper's
contribution avoids. We build it only for the ``OPT`` baseline and for
validating Theorem 2's degree bounds on small graphs; it grows as the
square of the clique count, so callers should cap instance sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.graph import Graph
from repro.cliques.listing import iter_cliques


@dataclass
class CliqueGraph:
    """Clique graph of ``G`` for a fixed ``k``.

    Attributes
    ----------
    cliques:
        Canonical (sorted-tuple) k-cliques; index = clique-graph node id.
    graph:
        The clique graph itself, a :class:`Graph` on ``len(cliques)``
        nodes with an edge between every two overlapping cliques.
    """

    cliques: list[tuple[int, ...]]
    graph: Graph

    @property
    def num_cliques(self) -> int:
        """Number of k-cliques (= clique-graph nodes)."""
        return len(self.cliques)

    def degree_of(self, index: int) -> int:
        """Clique degree (Definition 4) of clique ``index``."""
        return self.graph.degree(index)


def build_clique_graph(
    graph: Graph,
    k: int,
    max_cliques: int | None = None,
    cliques: Sequence[tuple[int, ...]] | None = None,
) -> CliqueGraph:
    """Construct the clique graph of ``graph`` for clique size ``k``.

    Parameters
    ----------
    max_cliques:
        Optional safety cap; :class:`MemoryError` is raised when the
        clique count exceeds it, mirroring the paper's OOM outcome for
        the straightforward baseline.
    cliques:
        Precomputed k-cliques as canonical sorted tuples (e.g. a
        session cache); skips the enumeration. The cap still applies.
        Tuples are trusted to be canonical (so the cached list is not
        copied element-wise); other collections are canonicalized.
    """
    # Enumerated cliques arrive root-first and always need canonicalizing;
    # caller-provided tuples are trusted canonical.
    trusted = cliques is not None
    source = iter_cliques(graph, k) if cliques is None else cliques
    cliques = []
    membership: dict[int, list[int]] = {}
    for clique in source:
        if trusted and isinstance(clique, tuple):
            canon = clique
        else:
            canon = tuple(sorted(clique))
        index = len(cliques)
        if max_cliques is not None and index >= max_cliques:
            raise MemoryError(
                f"clique graph exceeds cap of {max_cliques} cliques (k={k})"
            )
        cliques.append(canon)
        for u in canon:
            membership.setdefault(u, []).append(index)

    edges: set[tuple[int, int]] = set()
    for indices in membership.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1 :]:
                edges.add((a, b) if a < b else (b, a))
    return CliqueGraph(cliques, Graph(len(cliques), sorted(edges)))
