"""Per-node k-clique counting without storing cliques (node scores).

Definition 5 of the paper: the *node score* ``s_n(u)`` is the number of
k-cliques containing ``u``. Algorithm 3 computes all scores in a single
enumeration pass that never materialises the clique list, keeping memory
at ``O(n + m)`` — this module is that pass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.dag import OrientedCSR, OrientedGraph
from repro.graph.graph import Graph
from repro.graph import ordering as _ordering
from repro.cliques.csr_kernels import node_scores_csr, resolve_backend


def node_scores(
    graph: Graph,
    k: int,
    order: _ordering.OrderSpec = "degeneracy",
    dag: OrientedGraph | None = None,
    backend: str = "auto",
) -> np.ndarray:
    """int64 array of per-node k-clique counts (``s_n``).

    Enumerates every k-clique once via the DAG recursion and increments a
    counter per member node. Specialised fast paths handle ``k <= 2``.
    ``dag`` supplies an already-oriented graph (e.g. a session cache),
    in which case ``order`` is ignored. ``backend`` selects the set- or
    CSR-based recursion (``"auto" | "sets" | "csr"``, see
    :mod:`repro.cliques.csr_kernels`); the scores are identical either
    way.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    n = graph.n
    scores = np.zeros(n, dtype=np.int64)
    if k == 1:
        scores[:] = 1
        return scores
    if k == 2:
        return graph.degrees.astype(np.int64).copy()

    if resolve_backend(backend, graph.m) == "csr":
        if dag is not None:
            ocsr = dag.csr()
        else:
            ocsr = OrientedCSR.from_rank(graph, _ordering.resolve(order, graph))
        return node_scores_csr(ocsr, k, scores)

    if dag is None:
        dag = OrientedGraph.orient(graph, order)
    out = dag.out

    def walk(prefix: list[int], candidates: set[int], depth: int) -> None:
        if depth == 1:
            if candidates:
                # Each completion adds one clique through every prefix node
                # and one through each candidate terminal node.
                cnt = len(candidates)
                for p in prefix:
                    scores[p] += cnt
                for v in candidates:
                    scores[v] += 1
            return
        for v in candidates:
            nxt = candidates & out[v]
            if len(nxt) >= depth - 1:
                prefix.append(v)
                walk(prefix, nxt, depth - 1)
                prefix.pop()

    for u in range(n):
        if len(out[u]) >= k - 1:
            walk([u], out[u], k - 1)
    return scores


def total_cliques_from_scores(scores: np.ndarray, k: int) -> int:
    """Total k-clique count implied by node scores (each counted k times)."""
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    total = int(scores.sum())
    if total % k:
        raise InvalidParameterError(
            f"score sum {total} is not divisible by k={k}; scores are inconsistent"
        )
    return total // k


def clique_profile(
    graph: Graph,
    ks: Sequence[int] = (3, 4, 5, 6),
    order: _ordering.OrderSpec = "degeneracy",
) -> dict[int, int]:
    """Number of k-cliques for each k in ``ks`` (Table I statistics)."""
    from repro.cliques.listing import count_cliques

    return {k: count_cliques(graph, k, order) for k in ks}
