"""Array-native k-clique kernels on the oriented-CSR substrate.

These are the ``"csr"`` backend twins of the set-based recursions in
:mod:`repro.cliques.listing` and :mod:`repro.cliques.counting`. Counting
and node scores do **not** walk the kClist recursion root by root;
they run it *level-synchronously*: the whole frontier of partial
cliques at one recursion depth is held as flat numpy arrays (a ragged
candidate-set matrix in CSR form) and expanded to the next depth with a
constant number of vectorised operations — one bulk row gather
(:func:`repro.graph.csr.concat_rows`) plus one bulk sorted-membership
test (:func:`~repro.graph.csr.in_sorted`) against a *biased-key* view
of all candidate sets at once (candidate ``w`` of context ``c`` is
encoded as ``c * n + w``, which keeps the flattened candidate array
globally sorted). A per-root Python recursion pays numpy call overhead
on every tiny candidate set; the frontier formulation pays it once per
level, which is where the backend earns its speedup on large sparse
graphs.

Peak memory is proportional to the widest frontier rather than the
set backend's ``O(n + m)``; to bound it, roots are processed in batches
sized by an out-degree heuristic (:data:`ROOT_BATCH_BUDGET`). Results
are integer sums, so batching never changes them.

Both backends produce the same cliques, counts and scores; only
enumeration order may differ (canonicalise with ``sorted``). Backend
selection lives in :func:`resolve_backend`: ``"auto"`` picks ``"csr"``
once the graph has at least :data:`AUTO_EDGE_THRESHOLD` edges — below
that, numpy overhead outweighs the vectorisation win and the set
backend is kept.

The same frontier engine also serves the dynamic maintainer's batched
repair path through *local patches*: :func:`local_oriented_csr`
relabels an induced subgraph (for example a batch's dirty region and
its neighbourhood) into a standalone oriented CSR, and
:func:`iter_cliques_within_csr` enumerates its k-cliques with two
engine-level restrictions — ``require`` (clique must touch a required
node; required nodes get the smallest local ids, making the test a
terminal-level comparison plus a per-level prune) and ``labels``
(clique's labelled members must share one group; incompatible branches
are dropped inside the expansion, which is how owner-mixing cliques are
never materialised during candidate-index refreshes).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import concat_rows, in_sorted
from repro.graph.dag import OrientedCSR
from repro.graph.dynamic import DynamicGraph
from repro.graph.graph import Graph

#: A frontier level: (cand_indptr, cand_vals, ctx_node, ctx_parent).
_Level = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: Valid values of every ``backend=`` knob in the package.
BACKENDS = ("auto", "sets", "csr")

#: ``auto`` switches from ``sets`` to ``csr`` at this edge count.
AUTO_EDGE_THRESHOLD = 512

#: Root-batch budget: roots are grouped until the sum of their squared
#: out-degrees (an estimate of the first frontier's width) exceeds this.
ROOT_BATCH_BUDGET = 1 << 19

#: Bulk membership switches from a bit-packed table to binary search
#: when the table would exceed this many bytes (the key domain / 8).
BITMAP_BYTES_MAX = 1 << 25


def resolve_backend(backend: str, m: int) -> str:
    """Resolve a ``backend=`` argument to ``"sets"`` or ``"csr"``.

    ``m`` is the graph's edge count, consulted only by ``"auto"``.
    Unknown names raise :class:`repro.errors.InvalidParameterError`.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        return "csr" if m >= AUTO_EDGE_THRESHOLD else "sets"
    return backend


def iter_cliques_csr(
    ocsr: OrientedCSR, k: int, require_below: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield every k-clique exactly once from an oriented CSR.

    Same contract as
    :func:`repro.cliques.listing.iter_cliques_oriented`: the first tuple
    element is the root; enumeration order may differ from the set
    backend. Cliques are produced by the frontier engine one root batch
    at a time — each batch's cliques are reconstructed from the frontier
    arrays (terminal pair plus the parent chain) into one ``(C, k)``
    member matrix, so peak memory is one batch's output rather than the
    whole listing.

    ``require_below`` restricts the output to cliques containing at
    least one node with id ``< require_below``. It is only valid on an
    **identity-ordered** CSR (rank == node id, as produced by
    :func:`local_oriented_csr`; anything else raises
    :class:`~repro.errors.InvalidParameterError`): there out-neighbours
    always have smaller ids than their context, so a clique's minimum
    member is its terminal node and the restriction is one vectorised
    comparison at the terminal level — plus a per-level prune of
    contexts whose candidate sets hold no eligible id (candidate rows
    are sorted, so that is a first-element test). The dynamic
    maintainer uses this to regenerate only the cliques touching a
    dirty node inside a relabelled patch (dirty ids first).
    """
    for members in _clique_matrices_csr(ocsr, k, require_below=require_below):
        for row in members.tolist():
            yield tuple(row)


def _identity_rank(ocsr: OrientedCSR) -> bool:
    """Whether the orientation's rank array is the identity permutation."""
    rank = np.asarray(ocsr.rank)
    return bool(np.array_equal(rank, np.arange(len(rank), dtype=rank.dtype)))


def _merge_labels(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Combine group labels elementwise (``-1`` is the wildcard)."""
    return np.where(a == -1, b, a)


def _compatible(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Whether two label arrays can coexist in one clique."""
    return (a == -1) | (b == -1) | (a == b)


def _mask_candidates(level: _Level, keep: np.ndarray) -> _Level:
    """Apply an elementwise keep-mask to a level's candidate values.

    Contexts are preserved (possibly with empty segments — downstream
    prunes and expansions tolerate those); only candidates are dropped.
    """
    cand_indptr, cand_vals, ctx_node, ctx_parent = level
    nctx = len(cand_indptr) - 1
    if bool(keep.all()):
        return level
    owner = np.repeat(np.arange(nctx, dtype=np.int64), np.diff(cand_indptr))
    indptr2 = np.zeros(nctx + 1, dtype=np.int64)
    np.cumsum(np.bincount(owner[keep], minlength=nctx), out=indptr2[1:])
    return indptr2, cand_vals[keep], ctx_node, ctx_parent


def _clique_matrices_csr(
    ocsr: OrientedCSR,
    k: int,
    require_below: int | None = None,
    labels: np.ndarray | None = None,
) -> Iterator[np.ndarray]:
    """Yield ``(C, k)`` int64 member matrices, one per root batch.

    The matrix form of :func:`iter_cliques_csr` (same cliques, same
    per-batch memory bound); callers that post-process cliques in bulk
    (relabelling, filtering) stay vectorised instead of paying a Python
    loop per clique.

    ``labels`` (int64 per node, ``-1`` = unlabelled) restricts output to
    cliques whose labelled members all share one label. Unlike an after
    -the-fact filter, incompatible branches are pruned *inside* the
    frontier — the candidate-clique index uses this with solution-owner
    labels, where most of a dense region's cliques mix two owners and
    are never even expanded.
    """
    indptr, cols = ocsr.indptr, ocsr.cols
    n = len(indptr) - 1
    if require_below is not None and not _identity_rank(ocsr):
        # The min-member-is-terminal argument behind the prune holds
        # only when the orientation order *is* ascending node id (true
        # for local_oriented_csr patches, false for e.g. degeneracy
        # orientations) — anything else would silently drop cliques.
        raise InvalidParameterError(
            "require_below needs an identity-ordered OrientedCSR (a "
            "local patch from local_oriented_csr); this one is ranked "
            "by another order"
        )
    if k == 1:
        stop = n if require_below is None else min(n, require_below)
        if stop > 0:
            yield np.arange(stop, dtype=np.int64)[:, None]
        return
    if k == 2:
        rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        vals = cols
        keep = np.ones(len(vals), dtype=bool)
        if require_below is not None:
            keep &= vals < require_below
        if labels is not None:
            keep &= _compatible(labels[rows], labels[vals])
        rows, vals = rows[keep], vals[keep]
        if len(vals):
            yield np.stack([rows, vals], axis=1)
        return
    for roots in _root_batches(ocsr, k):
        level = _root_level(ocsr, roots)
        ctx_label = None
        if labels is not None:
            ctx_label = labels[roots]
            nctx = len(level[0]) - 1
            cand_ctx = np.repeat(np.arange(nctx, dtype=np.int64), np.diff(level[0]))
            level = _mask_candidates(
                level, _compatible(ctx_label[cand_ctx], labels[level[1]])
            )
        level, ctx_label = _prune_level(level, require_below, ctx_label)
        levels = [level]
        last_label = ctx_label
        for need_after in range(k - 2, 1, -1):
            nxt, nxt_label = _expand(levels[-1], ocsr, n, need_after, labels, last_label)
            nxt, nxt_label = _prune_level(nxt, require_below, nxt_label)
            levels.append(nxt)
            last_label = nxt_label
            if not len(nxt[1]):
                break
        else:
            cand_vals = levels[-1][1]
            pos, w, ok, owner = _level_hits(levels[-1], ocsr, n)
            if require_below is not None:
                ok &= w < require_below
            if labels is not None:
                pair_label = _merge_labels(last_label[owner], labels[cand_vals])
                ok &= _compatible(pair_label[pos], labels[w])
            if not len(ok):
                continue
            hit = pos[ok]
            if not len(hit):
                continue
            members = np.empty((len(hit), k), dtype=np.int64)
            members[:, k - 2] = cand_vals[hit]
            members[:, k - 1] = w[ok]
            ctx = owner[hit]
            for depth in range(len(levels) - 1, 0, -1):
                members[:, depth] = levels[depth][2][ctx]
                ctx = levels[depth][3][ctx]
            members[:, 0] = levels[0][2][ctx]
            yield members


def local_oriented_csr(
    graph: Graph | DynamicGraph, pool: Sequence[int]
) -> tuple[OrientedCSR, np.ndarray]:
    """Orient the subgraph induced on ``pool`` as a relabelled CSR patch.

    ``graph`` is anything exposing ``neighbors(u)`` (static
    :class:`~repro.graph.graph.Graph` or mutable
    :class:`~repro.graph.dynamic.DynamicGraph`); ``pool`` is unique node
    ids in **any order** — the order *is* the orientation: the patch
    uses ascending local position as the total order (any total order
    roots each clique exactly once), which is what lets
    ``require``-capable callers place required nodes first so the
    engine's ``require_below`` prune applies. A single extraction pass
    over the pool's adjacency is enough — no degeneracy pass, no
    ``O(graph.n)`` scratch arrays.

    Returns ``(ocsr, pool_arr)`` where ``pool_arr[i]`` is the global id
    of local node ``i``.
    """
    pool_arr = np.asarray(pool, dtype=np.int64)
    nloc = len(pool_arr)
    pool_list = pool_arr.tolist()
    # One flat drain of the pool's adjacency, then bulk relabel/filter.
    # Two relabelling strategies: a dense global position map (O(1) per
    # entry, but an O(graph.n) memset) when the graph is small relative
    # to the drained volume, and binary search against a sorted view of
    # the pool (patch-sized scratch only) when a small dirty region is
    # extracted from a huge dynamic graph.
    degs = [len(graph.neighbors(u)) for u in pool_list]
    total = int(sum(degs))
    flat = np.fromiter(
        (v for u in pool_list for v in graph.neighbors(u)),
        dtype=np.int64,
        count=total,
    )
    if graph.n <= 8 * total + 1024:
        local_map = np.full(graph.n, -1, dtype=np.int64)
        local_map[pool_arr] = np.arange(nloc, dtype=np.int64)
        loc = local_map[flat]
    else:
        order = np.argsort(pool_arr, kind="stable")
        sorted_pool = pool_arr[order]
        idx = np.minimum(np.searchsorted(sorted_pool, flat), nloc - 1)
        loc = np.where(sorted_pool[idx] == flat, order[idx], -1)
    rows_full = np.repeat(np.arange(nloc, dtype=np.int64), degs)
    keep = (loc >= 0) & (loc < rows_full)
    rows_arr = rows_full[keep]
    cols_arr = loc[keep]
    if len(cols_arr):
        cols_arr = cols_arr[np.lexsort((cols_arr, rows_arr))]
    indptr = np.zeros(nloc + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows_arr, minlength=nloc), out=indptr[1:])
    return OrientedCSR(indptr, cols_arr, np.arange(nloc, dtype=np.int64)), pool_arr


def iter_cliques_within_csr(
    graph: Graph | DynamicGraph,
    nodes: Iterable[int],
    k: int,
    require: Iterable[int] | None = None,
    labels: "dict[int, int] | None" = None,
) -> Iterator[frozenset[int]]:
    """CSR twin of :func:`repro.dynamic.local.iter_cliques_within`.

    Yields every k-clique whose nodes all lie in ``nodes`` exactly once,
    as frozensets of global node ids, by running the level-synchronous
    frontier engine on a relabelled local patch instead of the per-node
    Python set recursion. Same clique set as the ``sets`` twin; only
    the enumeration order differs.

    ``require`` (a subset of ``nodes``) keeps only cliques containing at
    least one required node: the patch is relabelled with required nodes
    first, so the restriction rides the engine's ``require_below``
    prune instead of a posteriori filtering.

    ``labels`` (global node id → group id) keeps only cliques whose
    labelled members all share one group; nodes absent from the mapping
    are wildcards. Incompatible branches are pruned inside the frontier
    (see :func:`_clique_matrices_csr`).
    """
    if k < 1:
        return
    pool_set = {int(u) for u in nodes}
    if len(pool_set) < k:
        return
    if require is None:
        pool = sorted(pool_set)
        below = None
    else:
        required = sorted(pool_set & {int(u) for u in require})
        if not required:
            return
        pool = required + sorted(pool_set.difference(required))
        below = len(required)
    ocsr, pool_arr = local_oriented_csr(graph, pool)
    label_arr = None
    if labels is not None:
        label_arr = np.fromiter(
            (labels.get(u, -1) for u in pool), dtype=np.int64, count=len(pool)
        )
    for members in _clique_matrices_csr(
        ocsr, k, require_below=below, labels=label_arr
    ):
        for row in pool_arr[members].tolist():
            yield frozenset(row)


def _prune_level(
    level: _Level,
    require_below: int | None,
    ctx_label: np.ndarray | None = None,
) -> tuple[_Level, np.ndarray | None]:
    """Drop contexts that cannot complete a clique with a node ``< require_below``.

    A context's candidate segments are sorted ascending, so eligibility
    is ``cand_vals[segment_start] < require_below`` — one gather and one
    comparison for the whole level. Contexts whose prefix already holds
    an eligible node pass automatically: every candidate is smaller than
    every prefix node, so their first candidate is eligible too.
    ``ctx_label`` (per-context group labels) is pruned in lockstep.
    Returns ``(level, ctx_label)``.
    """
    if require_below is None:
        return level, ctx_label
    cand_indptr, cand_vals, ctx_node, ctx_parent = level
    nctx = len(cand_indptr) - 1
    if not nctx or not len(cand_vals):
        return level, ctx_label
    starts = cand_indptr[:-1]
    lens = np.diff(cand_indptr)
    keep = (lens > 0) & (cand_vals[np.minimum(starts, len(cand_vals) - 1)] < require_below)
    kept = np.flatnonzero(keep)
    if len(kept) == nctx:
        return level, ctx_label
    indptr2 = np.zeros(len(kept) + 1, dtype=np.int64)
    np.cumsum(lens[kept], out=indptr2[1:])
    _, vals2 = concat_rows(cand_indptr, cand_vals, kept)
    parent2 = ctx_parent[kept] if len(ctx_parent) else ctx_parent
    label2 = ctx_label[kept] if ctx_label is not None else None
    return (indptr2, vals2, ctx_node[kept], parent2), label2


# ----------------------------------------------------------------------
# Level-synchronous frontier engine (counting and node scores)
# ----------------------------------------------------------------------
# A frontier level is four arrays describing every partial clique
# ("context") at one recursion depth:
#   cand_indptr : int64[nctx + 1] — segment pointers into cand_vals
#   cand_vals   : int64[*]        — each context's candidate set,
#                                   sorted ascending within its segment
#   ctx_node    : int64[nctx]     — node chosen at this level (the root
#                                   for level 0)
#   ctx_parent  : int64[nctx]     — parent context index one level up
_EMPTY = np.empty(0, dtype=np.int64)


def _member(biased: np.ndarray, keys: np.ndarray, domain: int) -> np.ndarray:
    """Bulk membership of ``keys`` in the sorted unique array ``biased``.

    When the key domain is small enough, ``biased`` is scattered into a
    bit-packed table (duplicate byte slots are OR-merged with one
    ``reduceat``, exploiting that ``biased`` is sorted) and ``keys``
    are answered with two gathers and a shift — O(1) per key instead of
    a binary search. Larger domains fall back to
    :func:`repro.graph.csr.in_sorted`.
    """
    if not len(biased) or not len(keys):
        return np.zeros(len(keys), dtype=bool)
    if (domain >> 3) > BITMAP_BYTES_MAX:
        return in_sorted(biased, keys)
    table = np.zeros((domain >> 3) + 1, dtype=np.uint8)
    byte_idx = biased >> 3
    bits = np.uint8(1) << (biased & 7).astype(np.uint8)
    starts = np.flatnonzero(np.r_[True, np.diff(byte_idx) != 0])
    table[byte_idx[starts]] = np.bitwise_or.reduceat(bits, starts)
    return ((table[keys >> 3] >> (keys & 7).astype(np.uint8)) & 1).astype(bool)


def _root_batches(ocsr: OrientedCSR, k: int) -> Iterator[np.ndarray]:
    """Eligible roots, grouped so each batch's frontier stays bounded."""
    outdeg = ocsr.out_degrees()
    roots = np.flatnonzero(outdeg >= k - 1)
    if not len(roots):
        return
    est = np.cumsum(outdeg[roots] * outdeg[roots])
    start = 0
    while start < len(roots):
        base = est[start - 1] if start else 0
        stop = int(np.searchsorted(est, base + ROOT_BATCH_BUDGET)) + 1
        yield roots[start:stop]
        start = stop


def _root_level(ocsr: OrientedCSR, roots: np.ndarray) -> _Level:
    """Level-0 frontier: one context per root, candidates = out rows."""
    lens = ocsr.out_degrees()[roots]
    cand_indptr = np.zeros(len(roots) + 1, dtype=np.int64)
    np.cumsum(lens, out=cand_indptr[1:])
    _, cand_vals = concat_rows(ocsr.indptr, ocsr.cols, roots)
    return cand_indptr, cand_vals, roots, _EMPTY


def _expand(
    level: _Level,
    ocsr: OrientedCSR,
    n: int,
    need_after: int,
    labels: np.ndarray | None = None,
    ctx_label: np.ndarray | None = None,
) -> tuple[_Level, np.ndarray | None]:
    """One frontier step: branch every context on each of its candidates.

    The new context for ``(c, v)`` gets candidates ``C_c ∩ out(v)``,
    computed for the whole level at once: gather every candidate's out
    row, then bulk-test membership in the owning context's candidate
    set via biased keys. Contexts that cannot reach a k-clique any more
    (fewer than ``need_after`` candidates) are dropped, like the
    ``len(nxt) >= depth - 1`` guard of the set recursion.

    With ``labels``/``ctx_label`` (group-constrained enumeration),
    candidates incompatible with the new context's merged label are
    dropped before grouping, and each new context's label is returned
    alongside the level: ``(level2, ctx_label2)`` (``ctx_label2`` is
    ``None`` in the unlabelled case).
    """
    cand_vals = level[1]
    pos, w, ok, owner = _level_hits(level, ocsr, n)
    new_label_at_pos = None
    if labels is not None:
        new_label_at_pos = _merge_labels(ctx_label[owner], labels[cand_vals])
        ok = ok & _compatible(new_label_at_pos[pos], labels[w])
    new_owner = pos[ok]
    new_lens = np.bincount(new_owner, minlength=len(cand_vals))
    keep = new_lens >= need_after
    kept = np.flatnonzero(keep)
    vals2 = w[ok][keep[new_owner]]
    indptr2 = np.zeros(len(kept) + 1, dtype=np.int64)
    np.cumsum(new_lens[kept], out=indptr2[1:])
    label2 = new_label_at_pos[kept] if new_label_at_pos is not None else None
    return (indptr2, vals2, cand_vals[kept], owner[kept]), label2


def _level_hits(
    level: _Level, ocsr: OrientedCSR, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared hit detection: every edge inside every candidate set.

    One bulk gather plus one biased-key membership test for the whole
    level. Returns ``(pos, w, ok, owner)``: candidate position,
    gathered out-neighbour, hit mask (``w`` lies in the candidate set
    owning position ``pos``), and the candidate→context map. A hit is
    a branch continuation for :func:`_expand` and a completed clique
    at the terminal depth.
    """
    cand_indptr, cand_vals = level[0], level[1]
    nctx = len(cand_indptr) - 1
    owner = np.repeat(np.arange(nctx, dtype=np.int64), np.diff(cand_indptr))
    biased = cand_vals + n * owner
    pos, w = concat_rows(ocsr.indptr, ocsr.cols, cand_vals)
    ok = _member(biased, owner[pos] * n + w, nctx * n)
    return pos, w, ok, owner


def _edge_pairs(
    ocsr: OrientedCSR, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All (edge, out-neighbour) wedges of the whole graph at once.

    For k = 3 the root-level candidate sets *are* the adjacency rows,
    so no frontier needs building: for every oriented edge ``(u, v)``
    and every ``w`` in ``out(v)``, test ``w ∈ out(u)`` against the
    global biased edge keys ``u * n + w`` (already sorted by
    construction). Returns ``(rows, pos, w, ok)`` where ``rows`` maps
    column positions to their owning node.
    """
    rows = np.repeat(np.arange(n, dtype=np.int64), ocsr.out_degrees())
    pos, w = concat_rows(ocsr.indptr, ocsr.cols, ocsr.cols)
    ok = _member(ocsr.cols + n * rows, rows[pos] * n + w, n * n)
    return rows, pos, w, ok


def count_cliques_csr(ocsr: OrientedCSR, k: int) -> int:
    """Total k-clique count from an oriented CSR, without storing cliques.

    Runs the frontier engine down to depth 2, where the surviving
    contexts' internal edges are counted with one bulk membership test;
    ``k = 3`` short-circuits to one whole-graph wedge test.
    """
    n = ocsr.n
    if k == 1:
        return n
    if k == 2:
        return len(ocsr.cols)
    if k == 3:
        return int(_edge_pairs(ocsr, n)[3].sum())
    total = 0
    for roots in _root_batches(ocsr, k):
        level = _root_level(ocsr, roots)
        for need_after in range(k - 2, 1, -1):
            level, _ = _expand(level, ocsr, n, need_after)
            if not len(level[1]):
                break
        else:
            _, _, ok, _ = _level_hits(level, ocsr, n)
            total += int(ok.sum())
    return total


def node_scores_csr(ocsr: OrientedCSR, k: int, scores: np.ndarray) -> np.ndarray:
    """Accumulate per-node k-clique counts (``k >= 3``) into ``scores``.

    Same frontier sweep as :func:`count_cliques_csr`, plus credit
    assignment: the two terminal nodes of each completed clique are
    credited with scatter-adds at the base, and each context's
    completion count is propagated back up the parent chain so every
    prefix node (and finally the root) receives one credit per clique
    below it. ``k = 3`` short-circuits to one whole-graph wedge test.
    """
    n = ocsr.n
    if k == 3:
        rows, pos, w, ok = _edge_pairs(ocsr, n)
        if len(ok):
            hit = pos[ok]
            np.add.at(scores, rows[hit], 1)
            np.add.at(scores, ocsr.cols[hit], 1)
            np.add.at(scores, w[ok], 1)
        return scores
    for roots in _root_batches(ocsr, k):
        levels = [_root_level(ocsr, roots)]
        for need_after in range(k - 2, 1, -1):
            levels.append(_expand(levels[-1], ocsr, n, need_after)[0])
            if not len(levels[-1][1]):
                break
        else:
            cand_vals = levels[-1][1]
            pos, w, ok, owner = _level_hits(levels[-1], ocsr, n)
            if not len(ok) or not ok.any():
                continue
            np.add.at(scores, cand_vals[pos[ok]], 1)
            np.add.at(scores, w[ok], 1)
            # Completions per deepest context, then up the parent chain.
            per_ctx = np.bincount(
                owner[pos[ok]], minlength=len(levels[-1][0]) - 1
            )
            for depth in range(len(levels) - 1, 0, -1):
                _, _, ctx_node, ctx_parent = levels[depth]
                np.add.at(scores, ctx_node, per_ctx)
                per_ctx = np.bincount(
                    ctx_parent, weights=per_ctx, minlength=len(levels[depth - 1][0]) - 1
                ).astype(np.int64)
            np.add.at(scores, levels[0][2], per_ctx)
    return scores
