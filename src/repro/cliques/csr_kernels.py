"""Array-native k-clique kernels on the oriented-CSR substrate.

These are the ``"csr"`` backend twins of the set-based recursions in
:mod:`repro.cliques.listing` and :mod:`repro.cliques.counting`. Counting
and node scores do **not** walk the kClist recursion root by root;
they run it *level-synchronously*: the whole frontier of partial
cliques at one recursion depth is held as flat numpy arrays (a ragged
candidate-set matrix in CSR form) and expanded to the next depth with a
constant number of vectorised operations — one bulk row gather
(:func:`repro.graph.csr.concat_rows`) plus one bulk sorted-membership
test (:func:`~repro.graph.csr.in_sorted`) against a *biased-key* view
of all candidate sets at once (candidate ``w`` of context ``c`` is
encoded as ``c * n + w``, which keeps the flattened candidate array
globally sorted). A per-root Python recursion pays numpy call overhead
on every tiny candidate set; the frontier formulation pays it once per
level, which is where the backend earns its speedup on large sparse
graphs.

Peak memory is proportional to the widest frontier rather than the
set backend's ``O(n + m)``; to bound it, roots are processed in batches
sized by an out-degree heuristic (:data:`ROOT_BATCH_BUDGET`). Results
are integer sums, so batching never changes them.

Both backends produce the same cliques, counts and scores; only
enumeration order may differ (canonicalise with ``sorted``). Backend
selection lives in :func:`resolve_backend`: ``"auto"`` picks ``"csr"``
once the graph has at least :data:`AUTO_EDGE_THRESHOLD` edges — below
that, numpy overhead outweighs the vectorisation win and the set
backend is kept.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import concat_rows, in_sorted
from repro.graph.dag import OrientedCSR

#: Valid values of every ``backend=`` knob in the package.
BACKENDS = ("auto", "sets", "csr")

#: ``auto`` switches from ``sets`` to ``csr`` at this edge count.
AUTO_EDGE_THRESHOLD = 512

#: Root-batch budget: roots are grouped until the sum of their squared
#: out-degrees (an estimate of the first frontier's width) exceeds this.
ROOT_BATCH_BUDGET = 1 << 19

#: Bulk membership switches from a bit-packed table to binary search
#: when the table would exceed this many bytes (the key domain / 8).
BITMAP_BYTES_MAX = 1 << 25


def resolve_backend(backend: str, m: int) -> str:
    """Resolve a ``backend=`` argument to ``"sets"`` or ``"csr"``.

    ``m`` is the graph's edge count, consulted only by ``"auto"``.
    Unknown names raise :class:`repro.errors.InvalidParameterError`.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        return "csr" if m >= AUTO_EDGE_THRESHOLD else "sets"
    return backend


def iter_cliques_csr(ocsr: OrientedCSR, k: int) -> Iterator[tuple[int, ...]]:
    """Yield every k-clique exactly once from an oriented CSR.

    Same contract as
    :func:`repro.cliques.listing.iter_cliques_oriented`: the first tuple
    element is the root; enumeration order may differ from the set
    backend. Cliques are produced by the frontier engine one root batch
    at a time — each batch's cliques are reconstructed from the frontier
    arrays (terminal pair plus the parent chain) into one ``(C, k)``
    member matrix, so peak memory is one batch's output rather than the
    whole listing.
    """
    indptr, cols = ocsr.indptr, ocsr.cols
    n = len(indptr) - 1
    if k == 1:
        for u in range(n):
            yield (u,)
        return
    if k == 2:
        for u in range(n):
            for v in cols[indptr[u] : indptr[u + 1]]:
                yield (u, int(v))
        return
    for roots in _root_batches(ocsr, k):
        levels = [_root_level(ocsr, roots)]
        for need_after in range(k - 2, 1, -1):
            levels.append(_expand(levels[-1], ocsr, n, need_after))
            if not len(levels[-1][1]):
                break
        else:
            cand_vals = levels[-1][1]
            pos, w, ok, owner = _level_hits(levels[-1], ocsr, n)
            if not len(ok):
                continue
            hit = pos[ok]
            if not len(hit):
                continue
            members = np.empty((len(hit), k), dtype=np.int64)
            members[:, k - 2] = cand_vals[hit]
            members[:, k - 1] = w[ok]
            ctx = owner[hit]
            for depth in range(len(levels) - 1, 0, -1):
                members[:, depth] = levels[depth][2][ctx]
                ctx = levels[depth][3][ctx]
            members[:, 0] = levels[0][2][ctx]
            for row in members.tolist():
                yield tuple(row)


# ----------------------------------------------------------------------
# Level-synchronous frontier engine (counting and node scores)
# ----------------------------------------------------------------------
# A frontier level is four arrays describing every partial clique
# ("context") at one recursion depth:
#   cand_indptr : int64[nctx + 1] — segment pointers into cand_vals
#   cand_vals   : int64[*]        — each context's candidate set,
#                                   sorted ascending within its segment
#   ctx_node    : int64[nctx]     — node chosen at this level (the root
#                                   for level 0)
#   ctx_parent  : int64[nctx]     — parent context index one level up
_EMPTY = np.empty(0, dtype=np.int64)


def _member(biased: np.ndarray, keys: np.ndarray, domain: int) -> np.ndarray:
    """Bulk membership of ``keys`` in the sorted unique array ``biased``.

    When the key domain is small enough, ``biased`` is scattered into a
    bit-packed table (duplicate byte slots are OR-merged with one
    ``reduceat``, exploiting that ``biased`` is sorted) and ``keys``
    are answered with two gathers and a shift — O(1) per key instead of
    a binary search. Larger domains fall back to
    :func:`repro.graph.csr.in_sorted`.
    """
    if not len(biased) or not len(keys):
        return np.zeros(len(keys), dtype=bool)
    if (domain >> 3) > BITMAP_BYTES_MAX:
        return in_sorted(biased, keys)
    table = np.zeros((domain >> 3) + 1, dtype=np.uint8)
    byte_idx = biased >> 3
    bits = np.uint8(1) << (biased & 7).astype(np.uint8)
    starts = np.flatnonzero(np.r_[True, np.diff(byte_idx) != 0])
    table[byte_idx[starts]] = np.bitwise_or.reduceat(bits, starts)
    return ((table[keys >> 3] >> (keys & 7).astype(np.uint8)) & 1).astype(bool)


def _root_batches(ocsr: OrientedCSR, k: int) -> Iterator[np.ndarray]:
    """Eligible roots, grouped so each batch's frontier stays bounded."""
    outdeg = ocsr.out_degrees()
    roots = np.flatnonzero(outdeg >= k - 1)
    if not len(roots):
        return
    est = np.cumsum(outdeg[roots] * outdeg[roots])
    start = 0
    while start < len(roots):
        base = est[start - 1] if start else 0
        stop = int(np.searchsorted(est, base + ROOT_BATCH_BUDGET)) + 1
        yield roots[start:stop]
        start = stop


def _root_level(ocsr: OrientedCSR, roots: np.ndarray):
    """Level-0 frontier: one context per root, candidates = out rows."""
    lens = ocsr.out_degrees()[roots]
    cand_indptr = np.zeros(len(roots) + 1, dtype=np.int64)
    np.cumsum(lens, out=cand_indptr[1:])
    _, cand_vals = concat_rows(ocsr.indptr, ocsr.cols, roots)
    return cand_indptr, cand_vals, roots, _EMPTY


def _expand(level, ocsr: OrientedCSR, n: int, need_after: int):
    """One frontier step: branch every context on each of its candidates.

    The new context for ``(c, v)`` gets candidates ``C_c ∩ out(v)``,
    computed for the whole level at once: gather every candidate's out
    row, then bulk-test membership in the owning context's candidate
    set via biased keys. Contexts that cannot reach a k-clique any more
    (fewer than ``need_after`` candidates) are dropped, like the
    ``len(nxt) >= depth - 1`` guard of the set recursion.
    """
    cand_vals = level[1]
    pos, w, ok, owner = _level_hits(level, ocsr, n)
    new_owner = pos[ok]
    new_lens = np.bincount(new_owner, minlength=len(cand_vals))
    keep = new_lens >= need_after
    kept = np.flatnonzero(keep)
    vals2 = w[ok][keep[new_owner]]
    indptr2 = np.zeros(len(kept) + 1, dtype=np.int64)
    np.cumsum(new_lens[kept], out=indptr2[1:])
    return indptr2, vals2, cand_vals[kept], owner[kept]


def _level_hits(level, ocsr: OrientedCSR, n: int):
    """Shared hit detection: every edge inside every candidate set.

    One bulk gather plus one biased-key membership test for the whole
    level. Returns ``(pos, w, ok, owner)``: candidate position,
    gathered out-neighbour, hit mask (``w`` lies in the candidate set
    owning position ``pos``), and the candidate→context map. A hit is
    a branch continuation for :func:`_expand` and a completed clique
    at the terminal depth.
    """
    cand_indptr, cand_vals = level[0], level[1]
    nctx = len(cand_indptr) - 1
    owner = np.repeat(np.arange(nctx, dtype=np.int64), np.diff(cand_indptr))
    biased = cand_vals + n * owner
    pos, w = concat_rows(ocsr.indptr, ocsr.cols, cand_vals)
    ok = _member(biased, owner[pos] * n + w, nctx * n)
    return pos, w, ok, owner


def _edge_pairs(ocsr: OrientedCSR, n: int):
    """All (edge, out-neighbour) wedges of the whole graph at once.

    For k = 3 the root-level candidate sets *are* the adjacency rows,
    so no frontier needs building: for every oriented edge ``(u, v)``
    and every ``w`` in ``out(v)``, test ``w ∈ out(u)`` against the
    global biased edge keys ``u * n + w`` (already sorted by
    construction). Returns ``(rows, pos, w, ok)`` where ``rows`` maps
    column positions to their owning node.
    """
    rows = np.repeat(np.arange(n, dtype=np.int64), ocsr.out_degrees())
    pos, w = concat_rows(ocsr.indptr, ocsr.cols, ocsr.cols)
    ok = _member(ocsr.cols + n * rows, rows[pos] * n + w, n * n)
    return rows, pos, w, ok


def count_cliques_csr(ocsr: OrientedCSR, k: int) -> int:
    """Total k-clique count from an oriented CSR, without storing cliques.

    Runs the frontier engine down to depth 2, where the surviving
    contexts' internal edges are counted with one bulk membership test;
    ``k = 3`` short-circuits to one whole-graph wedge test.
    """
    n = ocsr.n
    if k == 1:
        return n
    if k == 2:
        return len(ocsr.cols)
    if k == 3:
        return int(_edge_pairs(ocsr, n)[3].sum())
    total = 0
    for roots in _root_batches(ocsr, k):
        level = _root_level(ocsr, roots)
        for need_after in range(k - 2, 1, -1):
            level = _expand(level, ocsr, n, need_after)
            if not len(level[1]):
                break
        else:
            _, _, ok, _ = _level_hits(level, ocsr, n)
            total += int(ok.sum())
    return total


def node_scores_csr(ocsr: OrientedCSR, k: int, scores: np.ndarray) -> np.ndarray:
    """Accumulate per-node k-clique counts (``k >= 3``) into ``scores``.

    Same frontier sweep as :func:`count_cliques_csr`, plus credit
    assignment: the two terminal nodes of each completed clique are
    credited with scatter-adds at the base, and each context's
    completion count is propagated back up the parent chain so every
    prefix node (and finally the root) receives one credit per clique
    below it. ``k = 3`` short-circuits to one whole-graph wedge test.
    """
    n = ocsr.n
    if k == 3:
        rows, pos, w, ok = _edge_pairs(ocsr, n)
        if len(ok):
            hit = pos[ok]
            np.add.at(scores, rows[hit], 1)
            np.add.at(scores, ocsr.cols[hit], 1)
            np.add.at(scores, w[ok], 1)
        return scores
    for roots in _root_batches(ocsr, k):
        levels = [_root_level(ocsr, roots)]
        for need_after in range(k - 2, 1, -1):
            levels.append(_expand(levels[-1], ocsr, n, need_after))
            if not len(levels[-1][1]):
                break
        else:
            cand_vals = levels[-1][1]
            pos, w, ok, owner = _level_hits(levels[-1], ocsr, n)
            if not len(ok) or not ok.any():
                continue
            np.add.at(scores, cand_vals[pos[ok]], 1)
            np.add.at(scores, w[ok], 1)
            # Completions per deepest context, then up the parent chain.
            per_ctx = np.bincount(
                owner[pos[ok]], minlength=len(levels[-1][0]) - 1
            )
            for depth in range(len(levels) - 1, 0, -1):
                _, _, ctx_node, ctx_parent = levels[depth]
                np.add.at(scores, ctx_node, per_ctx)
                per_ctx = np.bincount(
                    ctx_parent, weights=per_ctx, minlength=len(levels[depth - 1][0]) - 1
                ).astype(np.int64)
            np.add.at(scores, levels[0][2], per_ctx)
    return scores
