"""k-clique listing on a DAG orientation (the kClist framework).

This is the paper's required substrate (Section III, refs [13]–[18]): a
total ordering orients the graph, and each k-clique is produced exactly
once from its largest-rank node (*root*) by recursively intersecting
out-neighbourhoods. The degeneracy ordering yields the standard
``O(k · m · (d/2)^(k-2))`` bound.

Two interchangeable execution backends walk that recursion:

``"sets"``
    The original Python ``set`` intersections — lowest constant factors
    on small graphs.
``"csr"``
    Sorted-array kernels over an oriented CSR
    (:mod:`repro.cliques.csr_kernels`) — vectorised intersections that
    win on large sparse graphs.
``"auto"`` (default)
    Picks ``"csr"`` once the graph has at least
    :data:`repro.cliques.csr_kernels.AUTO_EDGE_THRESHOLD` edges.

Both backends produce exactly the same cliques; only enumeration order
may differ. Cliques are yielded as tuples whose first element is the
root and whose remaining elements descend through the recursion; use
``sorted(c)`` for a canonical form.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import InvalidParameterError
from repro.graph.dag import OrientedCSR, OrientedGraph
from repro.graph.graph import Graph
from repro.graph import ordering as _ordering
from repro.cliques.csr_kernels import (
    count_cliques_csr,
    iter_cliques_csr,
    resolve_backend,
)


def _check_k(k: int) -> None:
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")


def iter_cliques(
    graph: Graph,
    k: int,
    order: _ordering.OrderSpec = "degeneracy",
    backend: str = "auto",
) -> Iterator[tuple[int, ...]]:
    """Yield every k-clique of ``graph`` exactly once.

    Parameters
    ----------
    graph:
        The undirected input graph.
    k:
        Clique size, ``>= 1`` (``k=1`` yields nodes, ``k=2`` edges).
    order:
        Ordering name, rank array or callable (see
        :func:`repro.graph.ordering.resolve`).
    backend:
        ``"auto" | "sets" | "csr"`` — execution backend (see module
        docstring). The clique set is backend-independent.
    """
    _check_k(k)
    if resolve_backend(backend, graph.m) == "csr":
        # Build the oriented CSR directly from the rank array; the
        # set-based out-neighbourhoods are never materialised.
        rank = _ordering.resolve(order, graph)
        return iter_cliques_csr(OrientedCSR.from_rank(graph, rank), k)
    return iter_cliques_oriented(OrientedGraph.orient(graph, order), k, backend="sets")


def iter_cliques_oriented(
    dag: OrientedGraph, k: int, backend: str = "auto"
) -> Iterator[tuple[int, ...]]:
    """Yield every k-clique of an already-oriented graph exactly once."""
    _check_k(k)
    if resolve_backend(backend, dag.graph.m) == "csr":
        return iter_cliques_csr(dag.csr(), k)
    return _iter_cliques_sets(dag, k)


def _iter_cliques_sets(dag: OrientedGraph, k: int) -> Iterator[tuple[int, ...]]:
    """The set-backend listing recursion."""
    n = dag.n
    if k == 1:
        for u in range(n):
            yield (u,)
        return
    out = dag.out
    if k == 2:
        for u in range(n):
            for v in out[u]:
                yield (u, v)
        return

    def extend(
        prefix: tuple[int, ...], candidates: set[int], depth: int
    ) -> Iterator[tuple[int, ...]]:
        # depth = number of nodes still to add.
        if depth == 1:
            for v in candidates:
                yield prefix + (v,)
            return
        for v in candidates:
            nxt = candidates & out[v]
            if len(nxt) >= depth - 1:
                yield from extend(prefix + (v,), nxt, depth - 1)

    for u in range(n):
        if len(out[u]) >= k - 1:
            yield from extend((u,), out[u], k - 1)


def list_cliques(
    graph: Graph,
    k: int,
    order: _ordering.OrderSpec = "degeneracy",
    backend: str = "auto",
) -> list[tuple[int, ...]]:
    """Materialise all k-cliques (use :func:`iter_cliques` when possible)."""
    return list(iter_cliques(graph, k, order, backend=backend))


def count_cliques(
    graph: Graph,
    k: int,
    order: _ordering.OrderSpec = "degeneracy",
    backend: str = "auto",
    dag: OrientedGraph | None = None,
) -> int:
    """Total number of k-cliques, enumerated without storing them.

    ``dag`` supplies an already-oriented graph (e.g. a session cache),
    in which case ``order`` is ignored.
    """
    _check_k(k)
    if k == 1:
        return graph.n
    if k == 2:
        return graph.m
    if resolve_backend(backend, graph.m) == "csr":
        if dag is not None:
            return count_cliques_csr(dag.csr(), k)
        rank = _ordering.resolve(order, graph)
        return count_cliques_csr(OrientedCSR.from_rank(graph, rank), k)
    if dag is None:
        dag = OrientedGraph.orient(graph, order)
    out = dag.out

    def count(candidates: set[int], depth: int) -> int:
        if depth == 1:
            return len(candidates)
        if depth == 2:
            # One level unrolled: count edges inside the candidate set.
            total = 0
            for v in candidates:
                total += len(candidates & out[v])
            return total
        total = 0
        for v in candidates:
            nxt = candidates & out[v]
            if len(nxt) >= depth - 1:
                total += count(nxt, depth - 1)
        return total

    return sum(count(out[u], k - 1) for u in range(dag.n) if len(out[u]) >= k - 1)


def cliques_through_edge(
    graph: Graph, u: int, v: int, k: int
) -> Iterator[frozenset[int]]:
    """Yield every k-clique containing the edge ``(u, v)`` exactly once.

    Used by the dynamic maintainer: a newly inserted edge can only create
    cliques that contain it. Enumerates (k-2)-cliques inside the common
    neighbourhood of ``u`` and ``v``.
    """
    _check_k(k)
    if k < 2 or not graph.has_edge(u, v):
        return
    if k == 2:
        yield frozenset((u, v))
        return
    common = graph.neighbors(u) & graph.neighbors(v)
    if len(common) < k - 2:
        return
    sub, mapping = graph.subgraph_with_mapping(common)
    for clique in iter_cliques(sub, k - 2, order="degree"):
        yield frozenset((u, v, *(mapping[w] for w in clique)))


def cliques_through_node(graph: Graph, u: int, k: int) -> Iterator[frozenset[int]]:
    """Yield every k-clique containing node ``u`` exactly once."""
    _check_k(k)
    if k == 1:
        yield frozenset((u,))
        return
    neigh = graph.neighbors(u)
    if len(neigh) < k - 1:
        return
    sub, mapping = graph.subgraph_with_mapping(neigh)
    for clique in iter_cliques(sub, k - 1, order="degree"):
        yield frozenset((u, *(mapping[w] for w in clique)))


def iter_cliques_in_nodes(
    graph: Graph, nodes: Iterable[int], k: int
) -> Iterator[frozenset[int]]:
    """Yield every k-clique of the subgraph induced on ``nodes``."""
    sub, mapping = graph.subgraph_with_mapping(nodes)
    for clique in iter_cliques(sub, k, order="degree"):
        yield frozenset(mapping[w] for w in clique)
