"""Runtime lock-order tracking behind the ``REPRO_TRACK_LOCKS`` env var.

The static side of the concurrency contract lives in
``tools/repro_lint/concurrency``: an interprocedural analysis that
extracts the whole-repo lock-acquisition graph and fails on cycles.
A static model can silently rot — a refactor may introduce a real
acquisition edge the analyzer fails to resolve — so this module is the
runtime cross-check: every lock in the repository is created through
:func:`make_lock` / :func:`make_rlock` with a stable label, and when
``REPRO_TRACK_LOCKS=1`` those factories return tracked wrappers that
record every *observed* acquisition edge (label held -> label acquired)
into a process-global set. The test-suite watchdog
(``tests/conftest.py``) then asserts the observed edges are a subset of
the statically derived graph; any edge the analyzer missed fails the
build.

By default (env var unset) the factories return plain
:mod:`threading` primitives — zero wrappers, zero overhead — so
production code paths pay nothing for the instrumentation.

Labels name the lock *site*, not the instance: every ``Ticket`` shares
the label ``"Ticket._lock"``. Lock ordering is a per-site discipline,
so aggregating instances is exactly what the cross-check needs (it
also means a self-edge, e.g. re-entering an RLock or touching two
instances of the same class, is skipped rather than recorded).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator, cast

#: Environment variable enabling tracked locks (set to ``1`` in the CI
#: watchdog leg; any value other than empty/``0`` enables).
TRACK_ENV = "REPRO_TRACK_LOCKS"

#: Guards :data:`_observed`. Module-level on purpose: the tracked
#: wrappers keep no mutable shared state of their own.
_observed_guard = threading.Lock()

#: Every (held label, acquired label) pair observed so far.
_observed: set[tuple[str, str]] = set()

#: Per-thread stack of currently-held lock labels.
_held = threading.local()


def tracking_enabled() -> bool:
    """Whether ``REPRO_TRACK_LOCKS`` is set (checked at lock creation)."""
    return os.environ.get(TRACK_ENV, "") not in ("", "0")


def _held_stack() -> list[str]:
    """This thread's stack of held lock labels (created lazily)."""
    stack: list[str] | None = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def _note_acquired(label: str) -> None:
    """Record edges from every held label to ``label``, then push it."""
    stack = _held_stack()
    edges = {(held, label) for held in stack if held != label}
    if edges and not edges.issubset(_observed):
        with _observed_guard:
            _observed.update(edges)
    stack.append(label)


def _note_released(label: str) -> None:
    """Pop the most recent occurrence of ``label`` off the held stack."""
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] == label:
            del stack[index]
            return


class TrackedLock:
    """A labelled ``threading.Lock`` recording acquisition edges.

    Only ever constructed when :func:`tracking_enabled` — production
    code receives plain primitives from the factories instead.
    """

    def __init__(self, label: str) -> None:
        self._label = label
        # Typed Any on purpose: the inner primitive is a _thread C type
        # whose private condition-protocol methods (``_release_save``,
        # ...) the subclass forwards; typeshed does not declare them.
        self._inner: Any = threading.Lock()

    @property
    def label(self) -> str:
        """The stable site label this lock records edges under."""
        return self._label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the inner lock; record held->this edges on success."""
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            _note_acquired(self._label)
        return acquired

    def release(self) -> None:
        """Release the inner lock and pop this label off the held stack."""
        _note_released(self._label)
        self._inner.release()

    def locked(self) -> bool:
        """Whether the inner lock is currently held by any thread."""
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._label!r})"


class TrackedRLock(TrackedLock):
    """A labelled ``threading.RLock``; usable as a Condition's lock.

    ``threading.Condition(lock=...)`` snapshots ``_release_save`` /
    ``_acquire_restore`` / ``_is_owned`` off the lock it is given, so
    this wrapper forwards them straight to the inner RLock. During
    ``Condition.wait()`` the inner lock is physically released and
    re-acquired through those bound methods while the held-label stack
    keeps showing the label as held — which is the lock-order view we
    want: the waiter acquires nothing while blocked, and still holds
    its place in the hierarchy before and after.
    """

    def __init__(self, label: str) -> None:
        super().__init__(label)
        self._inner = threading.RLock()
        self._release_save = self._inner._release_save
        self._acquire_restore = self._inner._acquire_restore
        self._is_owned = self._inner._is_owned

    def locked(self) -> bool:
        """RLocks do not expose ``locked``; report ownership instead."""
        return bool(self._is_owned())


def make_lock(label: str) -> threading.Lock:
    """A mutex for the given site label (tracked only when enabled)."""
    if tracking_enabled():
        return cast(threading.Lock, TrackedLock(label))
    return threading.Lock()


def make_rlock(label: str) -> "threading._RLock":
    """A re-entrant mutex for the given site label (tracked if enabled)."""
    if tracking_enabled():
        return cast("threading._RLock", TrackedRLock(label))
    return threading.RLock()


def observed_edges() -> frozenset[tuple[str, str]]:
    """Snapshot of every (held, acquired) edge recorded so far."""
    with _observed_guard:
        return frozenset(_observed)


def reset_observed() -> None:
    """Clear the recorded edge set (test isolation helper)."""
    with _observed_guard:
        _observed.clear()


@contextmanager
def isolated_observations() -> Iterator[set[tuple[str, str]]]:
    """Swap in a fresh edge set for the duration of a ``with`` block.

    Unit tests exercising tracked locks directly use this so their
    synthetic labels never leak into the process-global set that the
    tier-1 watchdog compares against the static graph.
    """
    global _observed
    with _observed_guard:
        saved, _observed = _observed, set()
        fresh = _observed
    try:
        yield fresh
    finally:
        with _observed_guard:
            _observed = saved
