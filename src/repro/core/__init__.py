"""The paper's algorithms: HG, GC, L/LP, OPT, plus result types and scores."""

from repro.core.api import METHODS, find_disjoint_cliques
from repro.core.basic import basic_framework
from repro.core.registry import (
    REGISTRY,
    ExactOptions,
    GCOptions,
    HGOptions,
    LightweightOptions,
    Method,
    SolveOptions,
    SolverRegistry,
)
from repro.core.session import Preprocessing, Session, SolveRequest
from repro.core.task import SolveTask, TaskSnapshot
from repro.core.exact import exact_optimum
from repro.core.exact_bb import exact_optimum_bb
from repro.core.lightweight import lightweight
from repro.core.result import (
    CliqueSetResult,
    canonicalize,
    is_maximal,
    is_valid,
    verify_solution,
)
from repro.core.residual import ResidualPacking, iterative_residual_packing
from repro.core.scores import clique_key, clique_score, compute_scores, degree_bounds
from repro.core.store_all import store_all_cliques

__all__ = [
    "find_disjoint_cliques",
    "METHODS",
    "Session",
    "SolveRequest",
    "SolveTask",
    "TaskSnapshot",
    "Preprocessing",
    "Method",
    "SolveOptions",
    "SolverRegistry",
    "REGISTRY",
    "HGOptions",
    "GCOptions",
    "LightweightOptions",
    "ExactOptions",
    "basic_framework",
    "store_all_cliques",
    "lightweight",
    "exact_optimum",
    "exact_optimum_bb",
    "CliqueSetResult",
    "verify_solution",
    "is_valid",
    "is_maximal",
    "canonicalize",
    "clique_score",
    "clique_key",
    "compute_scores",
    "degree_bounds",
    "iterative_residual_packing",
    "ResidualPacking",
]
