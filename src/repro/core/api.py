"""Unified one-shot solver entry point (legacy compatibility path).

:func:`find_disjoint_cliques` dispatches on a method tag matching the
paper's competitor names:

==========  ============================================================
tag         algorithm
==========  ============================================================
``hg``      Algorithm 1, basic greedy framework
``gc``      Algorithm 2, stored cliques in ascending clique-score order
``l``       Algorithm 3 without score pruning
``lp``      Algorithm 3 with score pruning (the paper's headline method)
``opt``     exact: clique graph + exact MIS (blossom matching for k = 2)
``opt-bb``  exact: direct branch-and-bound over cliques (cross-check)
==========  ============================================================

Every call delegates to a throwaway :class:`repro.core.session.Session`.
When you solve the same graph more than once — different k values,
different methods, repeated queries — create a session yourself so the
shared preprocessing (node scores, clique listings, orientations) is
computed once::

    session = Session(graph)
    for k in (3, 4, 5):
        result = session.solve(k, method="lp")
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.core.registry import REGISTRY
from repro.core.result import CliqueSetResult
from repro.core.session import Session

#: Registered method tags, in registration order.
METHODS = REGISTRY.tags()


def find_disjoint_cliques(
    graph: Graph,
    k: int,
    method: str = "lp",
    **kwargs: object,
) -> CliqueSetResult:
    """Find a (near-)maximum set of pairwise disjoint k-cliques.

    Parameters
    ----------
    graph:
        Input undirected graph (:class:`repro.graph.Graph`; use
        ``DynamicGraph.snapshot()`` for dynamic graphs).
    k:
        Clique size, ``>= 2``. The paper's applications use 3-6.
    method:
        One of ``"hg" | "gc" | "l" | "lp" | "opt" | "opt-bb"`` (default
        ``"lp"``).
    **kwargs:
        Typed per-method options, validated by the method's
        :class:`repro.core.registry.SolveOptions` class: ``order``
        (hg), ``workers`` (l/lp), ``max_cliques`` (gc/opt/opt-bb),
        ``time_budget`` (opt/opt-bb). Unknown names raise
        :class:`repro.errors.InvalidParameterError` listing the valid
        options for the chosen method.

    Returns
    -------
    CliqueSetResult

    Examples
    --------
    >>> from repro.graph.generators import planted_clique_packing
    >>> g, planted = planted_clique_packing(4, 3, seed=7)
    >>> result = find_disjoint_cliques(g, k=3, method="lp")
    >>> result.size
    4
    """
    return Session(graph).solve(k, method, **kwargs)
