"""Unified solver entry point.

:func:`find_disjoint_cliques` dispatches on a method tag matching the
paper's competitor names:

==========  ============================================================
tag         algorithm
==========  ============================================================
``hg``      Algorithm 1, basic greedy framework
``gc``      Algorithm 2, stored cliques in ascending clique-score order
``l``       Algorithm 3 without score pruning
``lp``      Algorithm 3 with score pruning (the paper's headline method)
``opt``     exact: clique graph + exact MIS (blossom matching for k = 2)
``opt-bb``  exact: direct branch-and-bound over cliques (cross-check)
==========  ============================================================
"""

from __future__ import annotations

from typing import Callable

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.basic import basic_framework
from repro.core.exact import exact_optimum
from repro.core.exact_bb import exact_optimum_bb
from repro.core.lightweight import lightweight
from repro.core.result import CliqueSetResult
from repro.core.store_all import store_all_cliques

METHODS = ("hg", "gc", "l", "lp", "opt", "opt-bb")


def find_disjoint_cliques(
    graph: Graph,
    k: int,
    method: str = "lp",
    **kwargs,
) -> CliqueSetResult:
    """Find a (near-)maximum set of pairwise disjoint k-cliques.

    Parameters
    ----------
    graph:
        Input undirected graph (:class:`repro.graph.Graph`; use
        ``DynamicGraph.snapshot()`` for dynamic graphs).
    k:
        Clique size, ``>= 2``. The paper's applications use 3-6.
    method:
        One of ``"hg" | "gc" | "l" | "lp" | "opt"`` (default ``"lp"``).
    **kwargs:
        Forwarded to the specific solver: ``order`` (hg/gc), ``prune``
        rejected (implied by l/lp), ``time_budget``/``max_cliques`` (gc/
        opt), ``listing_order`` (l/lp).

    Returns
    -------
    CliqueSetResult

    Examples
    --------
    >>> from repro.graph.generators import planted_clique_packing
    >>> g, planted = planted_clique_packing(4, 3, seed=7)
    >>> result = find_disjoint_cliques(g, k=3, method="lp")
    >>> result.size
    4
    """
    if not isinstance(graph, Graph):
        raise InvalidParameterError(
            f"graph must be a repro Graph, got {type(graph).__name__}; "
            "call .snapshot() on DynamicGraph first"
        )
    dispatch: dict[str, Callable[..., CliqueSetResult]] = {
        "hg": lambda: basic_framework(graph, k, **kwargs),
        "gc": lambda: store_all_cliques(graph, k, **kwargs),
        "l": lambda: lightweight(graph, k, prune=False, **kwargs),
        "lp": lambda: lightweight(graph, k, prune=True, **kwargs),
        "opt": lambda: exact_optimum(graph, k, **kwargs),
        "opt-bb": lambda: exact_optimum_bb(graph, k, **kwargs),
    }
    key = method.lower()
    if key not in dispatch:
        raise InvalidParameterError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
    if "prune" in kwargs:
        raise InvalidParameterError(
            "pass method='l' or method='lp' instead of a prune= keyword"
        )
    return dispatch[key]()
