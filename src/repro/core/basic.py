"""Algorithm 1 — the basic greedy framework (paper tag: ``HG``).

Orient the graph by a total ordering, scan nodes in ascending rank, and
for each still-valid node grab the *first* k-clique found inside its
out-neighbourhood (procedure ``FindOne``). Chosen cliques are removed
from the graph, pruning the remaining search space. No clique list and
no clique graph are ever materialised: space is ``O(n + m)``.

The ordering is a parameter (the paper evaluates the degree ordering and
discusses its pitfalls in Section I); the result is always a *maximal*
disjoint k-clique set and therefore a k-approximation (Theorem 3).

The scan is implemented as a resumable state machine
(:class:`BasicEngine`): each :meth:`BasicEngine.tick` processes exactly
one node of the scan order, so the engine can be suspended at any
FindOne boundary with a valid (if not yet maximal) partial solution.
:func:`basic_framework` is the drive-to-completion wrapper and returns
results and stats identical to the pre-engine monolithic loop; the
anytime surface lives in :class:`repro.core.task.SolveTask`.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import InvalidParameterError
from repro.graph.dag import OrientedGraph
from repro.graph.ordering import OrderSpec
from repro.graph.graph import Graph
from repro.core.result import CliqueSetResult, is_seedable_clique


def _find_one(
    out: list[set[int]],
    need: int,
    candidates: set[int],
    prefix: list[int],
    stats: dict[str, float],
) -> list[int] | None:
    """Return the first (need)-clique inside ``candidates``, or ``None``.

    ``candidates`` always equals the intersection of the out-neighbour
    sets of every prefix node, so any ``need`` mutually-out-adjacent nodes
    in it complete the clique. Iteration is over sorted candidates for
    determinism.
    """
    stats["findone_calls"] += 1
    if need == 1:
        return prefix + [min(candidates)] if candidates else None
    if need == 2:
        for u in sorted(candidates):
            common = candidates & out[u]
            if common:
                return prefix + [u, min(common)]
        return None
    for u in sorted(candidates):
        nxt = candidates & out[u]
        if len(nxt) >= need - 1:
            prefix.append(u)
            found = _find_one(out, need - 1, nxt, prefix, stats)
            if found is not None:
                return found
            prefix.pop()
    return None


class BasicEngine:
    """Resumable step machine for Algorithm 1 (one scan node per tick).

    The engine owns the live out-neighbour sets (the paper's residual
    graph); :meth:`tick` advances the ascending-rank scan by one node,
    running FindOne when the node is eligible. At every tick boundary
    ``solution`` is a valid disjoint k-clique set; maximality holds once
    :attr:`finished` is true (every node has been scanned). The state is
    fully determined by ``(graph, ordering, solution, pos, stats)``, so
    :meth:`state_dict` / :meth:`load_state` round-trip a half-run scan
    through JSON by replaying the solution's invalidations.
    """

    tag = "hg"

    def __init__(
        self,
        graph: Graph,
        k: int,
        order: OrderSpec = "degree",
        oriented: OrientedGraph | None = None,
        warm_start: Iterable[frozenset[int]] | None = None,
    ) -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        dag = oriented if oriented is not None else OrientedGraph.orient(graph, order)
        self.graph = graph
        self.k = k
        # Live out-neighbour sets: nodes are physically removed when their
        # clique enters S, exactly like the paper's residual graph.
        self.out = [set(s) for s in dag.out]
        self.valid = [True] * graph.n
        self.scan = dag.nodes_ascending()
        self.pos = 0
        self.solution: list[frozenset[int]] = []
        self.stats: dict[str, float] = {
            "nodes_processed": 0,
            "findone_calls": 0,
            "cliques_taken": 0,
        }
        if warm_start:
            self.stats["warm_seeded"] = 0
            for clique in warm_start:
                if is_seedable_clique(
                    graph, k, clique, lambda u: self.valid[u]
                ):
                    self._take(clique)
                    self.stats["warm_seeded"] += 1

    # -- seeding -------------------------------------------------------
    def _take(self, clique: Iterable[int]) -> None:
        found = frozenset(clique)
        self.solution.append(found)
        self.stats["cliques_taken"] += 1
        for w in found:
            self.valid[w] = False
        for w in found:
            for v in self.graph.neighbors(w):
                self.out[v].discard(w)
            self.out[w].clear()

    # -- stepping ------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the scan has processed every node (solution maximal)."""
        return self.pos >= len(self.scan)

    @property
    def size(self) -> int:
        """Current ``|S|`` of the partial solution."""
        return len(self.solution)

    def tick(self) -> None:
        """Process the next scan node (one FindOne boundary)."""
        if self.finished:
            return
        u = self.scan[self.pos]
        self.pos += 1
        if not self.valid[u] or len(self.out[u]) < self.k - 1:
            return
        self.stats["nodes_processed"] += 1
        found = _find_one(self.out, self.k - 1, self.out[u], [u], self.stats)
        if found is not None:
            self._take(found)

    # -- anytime surface -----------------------------------------------
    def bound(self) -> int:
        """Upper bound on the final ``|S|`` of this run (|S| + free/k)."""
        free = sum(1 for alive in self.valid if alive)
        return len(self.solution) + free // self.k

    def snapshot_result(self) -> CliqueSetResult:
        """Current partial solution (always a valid disjoint set)."""
        return CliqueSetResult(
            list(self.solution), k=self.k, method=self.tag, stats=dict(self.stats)
        )

    def result(self) -> CliqueSetResult:
        """Final result; raises unless the scan ran to completion."""
        if not self.finished:
            raise InvalidParameterError(
                "engine has not finished; drive tick() to completion first"
            )
        return CliqueSetResult(
            self.solution, k=self.k, method=self.tag, stats=self.stats
        )

    # -- checkpoint / restore ------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable engine state (graph substrates excluded)."""
        return {
            "pos": self.pos,
            "solution": [sorted(c) for c in self.solution],
            "stats": dict(self.stats),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto fresh substrates.

        The out-sets and validity mask are reconstructed by replaying
        the checkpointed solution's invalidations (removal operations
        commute, so the residual graph is bit-identical to the one at
        checkpoint time).
        """
        self.solution = []
        for clique in state["solution"]:
            self._take(clique)
        # _take bumped counters while replaying; the checkpointed stats
        # already account for that work, so they are restored wholesale.
        self.stats = {key: value for key, value in state["stats"].items()}
        self.pos = int(state["pos"])


def basic_framework(
    graph: Graph,
    k: int,
    order: OrderSpec = "degree",
    oriented: OrientedGraph | None = None,
) -> CliqueSetResult:
    """Compute a maximal disjoint k-clique set with Algorithm 1.

    Parameters
    ----------
    graph:
        Input undirected graph.
    k:
        Clique size, ``>= 2`` (the paper fixes ``k >= 3``; ``k = 2``
        degenerates to greedy matching and is supported for completeness).
    order:
        Total node ordering — name, rank array or callable (see
        :func:`repro.graph.ordering.resolve`). Default: ascending degree,
        the ordering the paper's ``HG`` competitor uses.
    oriented:
        An already-oriented ``graph`` (e.g. from a session cache); when
        given, ``order`` is ignored. The orientation is only read, never
        mutated.

    Returns
    -------
    CliqueSetResult
        Maximal disjoint k-clique set; ``stats`` records scan counters.
        This is the drive-to-completion wrapper over
        :class:`BasicEngine`; for anytime/interruptible execution use
        :meth:`repro.core.session.Session.task`.
    """
    engine = BasicEngine(graph, k, order=order, oriented=oriented)
    while not engine.finished:
        engine.tick()
    return engine.result()
