"""Algorithm 1 — the basic greedy framework (paper tag: ``HG``).

Orient the graph by a total ordering, scan nodes in ascending rank, and
for each still-valid node grab the *first* k-clique found inside its
out-neighbourhood (procedure ``FindOne``). Chosen cliques are removed
from the graph, pruning the remaining search space. No clique list and
no clique graph are ever materialised: space is ``O(n + m)``.

The ordering is a parameter (the paper evaluates the degree ordering and
discusses its pitfalls in Section I); the result is always a *maximal*
disjoint k-clique set and therefore a k-approximation (Theorem 3).
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.graph.dag import OrientedGraph
from repro.graph.graph import Graph
from repro.core.result import CliqueSetResult


def _find_one(
    out: list[set[int]],
    need: int,
    candidates: set[int],
    prefix: list[int],
    stats: dict[str, float],
) -> list[int] | None:
    """Return the first (need)-clique inside ``candidates``, or ``None``.

    ``candidates`` always equals the intersection of the out-neighbour
    sets of every prefix node, so any ``need`` mutually-out-adjacent nodes
    in it complete the clique. Iteration is over sorted candidates for
    determinism.
    """
    stats["findone_calls"] += 1
    if need == 1:
        return prefix + [min(candidates)] if candidates else None
    if need == 2:
        for u in sorted(candidates):
            common = candidates & out[u]
            if common:
                return prefix + [u, min(common)]
        return None
    for u in sorted(candidates):
        nxt = candidates & out[u]
        if len(nxt) >= need - 1:
            prefix.append(u)
            found = _find_one(out, need - 1, nxt, prefix, stats)
            if found is not None:
                return found
            prefix.pop()
    return None


def basic_framework(
    graph: Graph, k: int, order="degree", oriented: OrientedGraph | None = None
) -> CliqueSetResult:
    """Compute a maximal disjoint k-clique set with Algorithm 1.

    Parameters
    ----------
    graph:
        Input undirected graph.
    k:
        Clique size, ``>= 2`` (the paper fixes ``k >= 3``; ``k = 2``
        degenerates to greedy matching and is supported for completeness).
    order:
        Total node ordering — name, rank array or callable (see
        :func:`repro.graph.ordering.resolve`). Default: ascending degree,
        the ordering the paper's ``HG`` competitor uses.
    oriented:
        An already-oriented ``graph`` (e.g. from a session cache); when
        given, ``order`` is ignored. The orientation is only read, never
        mutated.

    Returns
    -------
    CliqueSetResult
        Maximal disjoint k-clique set; ``stats`` records scan counters.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    dag = oriented if oriented is not None else OrientedGraph.orient(graph, order)
    # Live out-neighbour sets: nodes are physically removed when their
    # clique enters S, exactly like the paper's residual graph.
    out = [set(s) for s in dag.out]
    valid = [True] * graph.n
    stats: dict[str, float] = {
        "nodes_processed": 0,
        "findone_calls": 0,
        "cliques_taken": 0,
    }
    solution: list[frozenset[int]] = []

    for u in dag.nodes_ascending():
        if not valid[u] or len(out[u]) < k - 1:
            continue
        stats["nodes_processed"] += 1
        found = _find_one(out, k - 1, out[u], [u], stats)
        if found is None:
            continue
        solution.append(frozenset(found))
        stats["cliques_taken"] += 1
        for w in found:
            valid[w] = False
        for w in found:
            for v in graph.neighbors(w):
                out[v].discard(w)
            out[w].clear()
    return CliqueSetResult(solution, k=k, method="hg", stats=stats)
