"""The exact baseline (paper tag ``OPT``): clique graph + exact MIS.

This is the straightforward three-step approach the paper's introduction
describes and then argues against: (i) list all k-cliques, (ii) build the
clique graph (Definition 2), (iii) solve maximum independent set on it
exactly. It is the ground truth for Tables II and IV, and — exactly as in
the paper — it only survives on small graphs, which the ``time_budget`` /
``max_cliques`` knobs turn into explicit ``OOT`` / ``OOM`` outcomes.

For ``k = 2`` the problem *is* maximum matching, so we dispatch to the
polynomial blossom algorithm instead of the NP-hard machinery.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InvalidParameterError, OutOfMemoryError
from repro.graph.graph import Graph
from repro.cliques.clique_graph import build_clique_graph
from repro.core.result import CliqueSetResult
from repro.mis.exact import exact_mis


def exact_optimum(
    graph: Graph,
    k: int,
    time_budget: float | None = None,
    max_cliques: int | None = None,
    cliques: Sequence[tuple[int, ...]] | None = None,
) -> CliqueSetResult:
    """A maximum (optimal) disjoint k-clique set.

    Parameters
    ----------
    graph:
        Input undirected graph.
    k:
        Clique size, ``>= 2``. ``k = 2`` uses Edmonds' blossom matching.
    time_budget:
        Wall-clock seconds for the exact MIS; exceeding it raises
        :class:`repro.errors.OutOfTimeError` (paper: ``OOT``).
    max_cliques:
        Cap on stored cliques; exceeding it raises
        :class:`repro.errors.OutOfMemoryError` (paper: ``OOM``).
    cliques:
        Precomputed k-clique list (e.g. a session cache); skips the
        enumeration inside the clique-graph build. Ignored for ``k = 2``.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if k == 2:
        from repro.matching.blossom import maximum_matching

        matching = maximum_matching(graph)
        return CliqueSetResult(
            [frozenset(edge) for edge in matching], k=2, method="opt",
        )
    try:
        clique_graph = build_clique_graph(
            graph, k, max_cliques=max_cliques, cliques=cliques
        )
    except MemoryError as exc:
        raise OutOfMemoryError(str(exc)) from exc
    chosen = exact_mis(clique_graph.graph, time_budget=time_budget)
    solution = [frozenset(clique_graph.cliques[i]) for i in chosen]
    stats = {
        "clique_graph_nodes": float(clique_graph.num_cliques),
        "clique_graph_edges": float(clique_graph.graph.m),
    }
    return CliqueSetResult(solution, k=k, method="opt", stats=stats)
