"""Direct branch-and-bound exact solver (OPT cross-check).

An *independent* exact method: instead of reducing to maximum
independent set on the clique graph (``repro.core.exact``), branch
directly over the clique list with bitset node masks. Two pruning
devices keep it usable on small-but-nontrivial instances:

* **capacity bound** — a completed branch can add at most
  ``free_capable_nodes // k`` more cliques, where capable nodes are
  those still free and appearing in some remaining clique;
* **suffix bound** — cliques are scanned in the package's ascending
  clique-key order, so at position ``i`` at most ``len - i`` cliques
  remain.

Having two exact solvers built on disjoint theory lets the test suite
cross-validate them against each other — a much stronger oracle than
either alone.

The search runs on an explicit frame stack (:class:`ExactBBEngine`):
each :meth:`ExactBBEngine.tick` expands exactly one branch node, so the
search can be suspended at any branch boundary with the incumbent (a
valid disjoint k-clique set) and a live anytime upper bound, and the
whole stack serialises through JSON for cross-process checkpoint /
restore. :func:`exact_optimum_bb` is the drive-to-completion wrapper
with the same results, stats and ``OutOfTimeError`` cadence as the
pre-engine recursive implementation.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidParameterError, OutOfMemoryError, OutOfTimeError
from repro.graph.graph import Graph
from repro.cliques.counting import node_scores
from repro.cliques.listing import iter_cliques
from repro.core.result import CliqueSetResult
from repro.core.scores import clique_key

#: Frame layout: ``[next_i, used_mask, owns_choice, depth]`` — the scan
#: cursor, the bitset of covered nodes, whether this frame pushed onto
#: ``chosen`` (and must pop it on exit), and ``len(chosen)`` at entry.
_I, _USED, _OWNS, _DEPTH = 0, 1, 2, 3


class ExactBBEngine:
    """Resumable explicit-stack engine for the direct branch-and-bound.

    One :meth:`tick` performs exactly one branch-node expansion — the
    unit the recursive implementation counted as ``nodes_expanded`` —
    so driving the engine to completion reproduces the recursion's
    visit order, incumbent trajectory, solution and stats exactly.
    ``best`` (the incumbent) is a valid disjoint k-clique set at every
    tick boundary, and :meth:`bound` reports a certified anytime upper
    bound that tightens as the stack unwinds: when :attr:`finished` is
    true it equals ``|best|``, proving optimality.
    """

    tag = "opt-bb"

    def __init__(
        self,
        graph: Graph | None,
        k: int,
        max_cliques: int | None = None,
        scores: np.ndarray | None = None,
        cliques: Sequence[tuple[int, ...]] | None = None,
        warm_start: Iterable[frozenset[int]] | None = None,
    ) -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if graph is None and (scores is None or cliques is None):
            # Shared-substrate path (repro.parallel workers): both
            # enumeration passes are precomputed, so no graph is needed.
            raise InvalidParameterError(
                "graph may only be omitted when both scores and cliques "
                "are precomputed"
            )
        if scores is None:
            assert graph is not None
            scores = node_scores(graph, k)
        if cliques is None:
            assert graph is not None
            cliques = []
            for clique in iter_cliques(graph, k):
                if max_cliques is not None and len(cliques) >= max_cliques:
                    raise OutOfMemoryError(
                        f"exact B&B exceeded its clique budget of {max_cliques}"
                    )
                cliques.append(tuple(sorted(clique)))
        else:
            if max_cliques is not None and len(cliques) > max_cliques:
                raise OutOfMemoryError(
                    f"exact B&B exceeded its clique budget of {max_cliques}"
                )
            # The tuples are used as-is: masks and result frozensets are
            # member-order-independent and clique_key sorts internally, so
            # the (typically session-cached) list is only shallow-copied.
            cliques = list(cliques)
        cliques.sort(key=lambda c: clique_key(c, scores))

        self.k = k
        self.cliques = cliques
        self.masks = [sum(1 << u for u in c) for c in cliques]
        # suffix_capable[i]: nodes used by cliques[i:] — capacity bound input.
        suffix_capable = [0] * (len(cliques) + 1)
        for i in range(len(cliques) - 1, -1, -1):
            suffix_capable[i] = suffix_capable[i + 1] | self.masks[i]
        self.suffix_capable = suffix_capable

        self.best: list[int] = []
        self.chosen: list[int] = []
        self.ticks = 0
        self.stack: list[list] = [[0, 0, False, 0]]
        #: External pruning floor (process tier): branches that cannot
        #: beat ``max(len(best), prune_floor)`` are cut. ``0`` (the
        #: default) is inert — sequential behaviour, visit order and
        #: stats are bit-identical. A parallel worker sets it to the
        #: shared incumbent *size minus one*, so branches tying the
        #: global best survive and every worker still reports its
        #: subtree's first (lexicographically smallest) optimum.
        self.prune_floor = 0
        #: Restrict *root-frame* descents to clique indices ``i`` with
        #: ``i % stride == offset`` (``None`` = all). Deeper frames are
        #: unrestricted: a subtree task owns every continuation of its
        #: roots. Strided ownership balances load (early roots have the
        #: large subtrees). Runtime-only, like ``prune_floor``: neither
        #: is checkpointed.
        self.root_slice: tuple[int, int] | None = None
        if warm_start:
            self._seed_incumbent(warm_start)

    def reset_search(
        self,
        root_slice: tuple[int, int] | None = None,
        prune_floor: int = 0,
    ) -> None:
        """Rewind to the root frame on the same clique substrate.

        Clears the incumbent, the chosen stack and the tick counter —
        everything except the (expensive) decoded clique list, masks
        and suffix bounds. The process tier's workers cache one engine
        per substrate and reset it per subtree task instead of paying
        the O(|C| * k) rebuild each time.
        """
        if root_slice is not None:
            offset, stride = root_slice
            if stride < 1 or not 0 <= offset < stride:
                raise InvalidParameterError(
                    f"root_slice must be (offset, stride) with "
                    f"0 <= offset < stride, got {root_slice!r}"
                )
        if prune_floor < 0:
            raise InvalidParameterError(
                f"prune_floor must be >= 0, got {prune_floor}"
            )
        self.best = []
        self.chosen = []
        self.ticks = 0
        self.stack = [[0, 0, False, 0]]
        self.prune_floor = prune_floor
        self.root_slice = root_slice

    def _seed_incumbent(self, warm_start: Iterable[Iterable[int]]) -> None:
        """Install a prior solution as the starting incumbent.

        A warm incumbent never changes the optimal *size* (the search
        stays exhaustive up to pruning-by-bound) but tightens pruning
        from tick one; the returned set may differ from a cold run's
        when multiple optima exist.
        """
        index_of = {clique: i for i, clique in enumerate(self.cliques)}
        seeded: list[int] = []
        used = 0
        for clique in warm_start:
            i = index_of.get(tuple(sorted(clique)))
            if i is None or used & self.masks[i]:
                continue
            used |= self.masks[i]
            seeded.append(i)
        if len(seeded) > len(self.best):
            self.best = seeded

    def _bound(self, idx: int, used: int) -> int:
        free = self.suffix_capable[idx] & ~used
        return min(len(self.cliques) - idx, bin(free).count("1") // self.k)

    # -- stepping ------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the search space is exhausted (incumbent is optimal)."""
        return not self.stack

    @property
    def size(self) -> int:
        """Current ``|S|`` of the incumbent."""
        return len(self.best)

    def tick(self) -> None:
        """Expand one branch node (one ``nodes_expanded`` unit).

        Mirrors one recursive ``search`` call: count the expansion,
        promote the current branch to incumbent if longer, then scan
        forward until the next descent (pushed for the next tick) or
        until this frame — and any exhausted ancestors — unwind.
        """
        if not self.stack:
            return
        stack = self.stack
        chosen = self.chosen
        masks = self.masks
        total = len(self.cliques)
        frame = stack[-1]
        floor = self.prune_floor
        slice_spec = self.root_slice
        self.ticks += 1
        if len(chosen) > len(self.best):
            self.best = chosen.copy()
        while True:
            i = frame[_I]
            used = frame[_USED]
            at_root = slice_spec is not None and len(stack) == 1
            descended = False
            while i < total:
                if len(chosen) + self._bound(i, used) <= max(len(self.best), floor):
                    i = total  # suffix pruned: abandon the whole frame
                    break
                if at_root and i % slice_spec[1] != slice_spec[0]:
                    i += 1  # root index owned by a sibling subtree task
                    continue
                if not used & masks[i]:
                    chosen.append(i)
                    frame[_I] = i + 1
                    stack.append([i + 1, used | masks[i], True, len(chosen)])
                    descended = True
                    break
                i += 1
            if descended:
                return
            frame[_I] = i
            stack.pop()
            if frame[_OWNS]:
                chosen.pop()
            if not stack:
                return
            frame = stack[-1]

    # -- anytime surface -----------------------------------------------
    def bound(self) -> int:
        """Certified anytime upper bound on the optimal ``|S|``.

        Every solution not yet enumerated completes some open stack
        frame, and a frame at scan position ``i`` with ``depth`` cliques
        chosen can reach at most ``depth + bound(i, used)`` — so the max
        over open frames (and the incumbent) bounds the optimum. Equals
        ``len(best)`` once the search finishes.
        """
        ub = len(self.best)
        total = len(self.cliques)
        for frame in self.stack:
            if frame[_I] < total:
                ub = max(ub, frame[_DEPTH] + self._bound(frame[_I], frame[_USED]))
        return ub

    def snapshot_result(self) -> CliqueSetResult:
        """Current incumbent (always a valid disjoint set)."""
        return CliqueSetResult(
            [frozenset(self.cliques[i]) for i in self.best],
            k=self.k,
            method=self.tag,
            stats=self._stats(),
        )

    def result(self) -> CliqueSetResult:
        """Final (optimal) result; raises unless the search finished."""
        if not self.finished:
            raise InvalidParameterError(
                "engine has not finished; drive tick() to completion first"
            )
        return self.snapshot_result()

    def _stats(self) -> dict[str, float]:
        return {
            "cliques_stored": float(len(self.cliques)),
            "nodes_expanded": float(self.ticks),
        }

    # -- checkpoint / restore ------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable search state (clique list excluded).

        ``used`` bitsets can exceed 64 bits on large graphs, so they are
        serialised as hex strings. The clique list itself is rebuilt
        deterministically from the graph on restore.
        """
        return {
            "ticks": self.ticks,
            "best": list(self.best),
            "chosen": list(self.chosen),
            "stack": [
                [frame[_I], format(frame[_USED], "x"), bool(frame[_OWNS]),
                 frame[_DEPTH]]
                for frame in self.stack
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.ticks = int(state["ticks"])
        self.best = [int(i) for i in state["best"]]
        self.chosen = [int(i) for i in state["chosen"]]
        self.stack = [
            [int(i), int(used, 16), bool(owns), int(depth)]
            for i, used, owns, depth in state["stack"]
        ]


def exact_optimum_bb(
    graph: Graph,
    k: int,
    time_budget: float | None = None,
    max_cliques: int | None = None,
    scores: np.ndarray | None = None,
    cliques: Sequence[tuple[int, ...]] | None = None,
) -> CliqueSetResult:
    """A maximum disjoint k-clique set by direct branch-and-bound.

    Parameters mirror :func:`repro.core.exact.exact_optimum`; budget
    violations raise :class:`OutOfTimeError` / :class:`OutOfMemoryError`.
    ``scores`` / ``cliques`` accept precomputed substrates (e.g. from a
    session cache) and skip the corresponding enumeration passes.

    This is the drive-to-completion wrapper over :class:`ExactBBEngine`;
    a raised :class:`OutOfTimeError` carries the incumbent found so far
    on its ``partial`` attribute, so deadline-bound callers keep the
    completed work. For step-wise anytime execution use
    :meth:`repro.core.session.Session.task`.
    """
    engine = ExactBBEngine(
        graph, k, max_cliques=max_cliques, scores=scores, cliques=cliques
    )
    deadline = None if time_budget is None else time.monotonic() + time_budget
    while not engine.finished:
        engine.tick()
        if deadline is not None and not engine.ticks % 512:
            if time.monotonic() > deadline:
                raise OutOfTimeError(
                    "exact B&B exceeded its time budget",
                    partial=engine.snapshot_result(),
                )
    return engine.result()
