"""Direct branch-and-bound exact solver (OPT cross-check).

An *independent* exact method: instead of reducing to maximum
independent set on the clique graph (``repro.core.exact``), branch
directly over the clique list with bitset node masks. Two pruning
devices keep it usable on small-but-nontrivial instances:

* **capacity bound** — a completed branch can add at most
  ``free_capable_nodes // k`` more cliques, where capable nodes are
  those still free and appearing in some remaining clique;
* **suffix bound** — cliques are scanned in the package's ascending
  clique-key order, so at position ``i`` at most ``len - i`` cliques
  remain.

Having two exact solvers built on disjoint theory lets the test suite
cross-validate them against each other — a much stronger oracle than
either alone.
"""

from __future__ import annotations

import time

from repro.errors import InvalidParameterError, OutOfMemoryError, OutOfTimeError
from repro.graph.graph import Graph
from repro.cliques.counting import node_scores
from repro.cliques.listing import iter_cliques
from repro.core.result import CliqueSetResult
from repro.core.scores import clique_key


def exact_optimum_bb(
    graph: Graph,
    k: int,
    time_budget: float | None = None,
    max_cliques: int | None = None,
    scores=None,
    cliques=None,
) -> CliqueSetResult:
    """A maximum disjoint k-clique set by direct branch-and-bound.

    Parameters mirror :func:`repro.core.exact.exact_optimum`; budget
    violations raise :class:`OutOfTimeError` / :class:`OutOfMemoryError`.
    ``scores`` / ``cliques`` accept precomputed substrates (e.g. from a
    session cache) and skip the corresponding enumeration passes.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if scores is None:
        scores = node_scores(graph, k)
    if cliques is None:
        cliques = []
        for clique in iter_cliques(graph, k):
            if max_cliques is not None and len(cliques) >= max_cliques:
                raise OutOfMemoryError(
                    f"exact B&B exceeded its clique budget of {max_cliques}"
                )
            cliques.append(tuple(sorted(clique)))
    else:
        if max_cliques is not None and len(cliques) > max_cliques:
            raise OutOfMemoryError(
                f"exact B&B exceeded its clique budget of {max_cliques}"
            )
        # The tuples are used as-is: masks and result frozensets are
        # member-order-independent and clique_key sorts internally, so
        # the (typically session-cached) list is only shallow-copied.
        cliques = list(cliques)
    cliques.sort(key=lambda c: clique_key(c, scores))

    masks = [sum(1 << u for u in c) for c in cliques]
    # suffix_capable[i]: nodes used by cliques[i:] — capacity bound input.
    suffix_capable = [0] * (len(cliques) + 1)
    for i in range(len(cliques) - 1, -1, -1):
        suffix_capable[i] = suffix_capable[i + 1] | masks[i]

    deadline = None if time_budget is None else time.monotonic() + time_budget
    best: list[int] = []
    chosen: list[int] = []
    ticks = 0

    def bound(idx: int, used: int) -> int:
        free = suffix_capable[idx] & ~used
        return min(len(cliques) - idx, bin(free).count("1") // k)

    def search(idx: int, used: int) -> None:
        nonlocal best, ticks
        ticks += 1
        if deadline is not None and not ticks % 512:
            if time.monotonic() > deadline:
                raise OutOfTimeError("exact B&B exceeded its time budget")
        if len(chosen) > len(best):
            best = chosen.copy()
        for i in range(idx, len(cliques)):
            if len(chosen) + bound(i, used) <= len(best):
                return
            if not used & masks[i]:
                chosen.append(i)
                search(i + 1, used | masks[i])
                chosen.pop()

    search(0, 0)
    solution = [frozenset(cliques[i]) for i in best]
    return CliqueSetResult(
        solution,
        k=k,
        method="opt-bb",
        stats={"cliques_stored": float(len(cliques)), "nodes_expanded": float(ticks)},
    )
