"""Algorithm 3 — the lightweight implementation (paper tags ``L``/``LP``).

Produces the same solution as Algorithm 2 (Theorem 4) with ``O(n + m)``
space:

1. Compute node scores during one clique enumeration (no storage).
2. Orient the graph by ascending node score (ties by id).
3. For each DAG root ``u``, find the *minimum-key* k-clique inside its
   out-neighbourhood (procedure ``FindMin``) and push it into a heap.
4. Repeatedly pop the globally minimal clique. If all its nodes are
   still valid it joins the solution and its nodes are removed; if it is
   stale but its root survives, the root's local minimum is recomputed
   over the remaining valid nodes and re-pushed.

``LP`` additionally prunes ``FindMin`` branches whose partial score plus
the next node's score already reaches the best key's score — safe because
every node in a k-clique has score >= 1, so completing any pruned branch
strictly exceeds the current minimum (it can't even tie, hence the exact
Theorem 4 equality is preserved; see ``tests/test_theorem4.py``).

The heap key is the package-wide deterministic clique key
``(clique score, sorted node tuple)``.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.dag import OrientedGraph
from repro.graph.graph import Graph
from repro.graph.ordering import by_score
from repro.cliques.counting import node_scores
from repro.core.result import CliqueSetResult
from repro.core.scores import CliqueKey

_INF_KEY: CliqueKey = (np.iinfo(np.int64).max, ())


class _FindMin:
    """Recursive local-minimum clique search with optional score pruning."""

    __slots__ = ("out", "scores", "prune", "stats", "best_key", "best")

    def __init__(
        self,
        out: list[set[int]],
        scores: np.ndarray,
        prune: bool,
        stats: dict[str, float],
    ) -> None:
        self.out = out
        self.scores = scores
        self.prune = prune
        self.stats = stats
        self.best_key: CliqueKey = _INF_KEY
        self.best: tuple[int, ...] | None = None

    def search(self, root: int, k: int) -> tuple[CliqueKey, tuple[int, ...]] | None:
        """Minimum-key k-clique rooted at ``root``, or ``None``."""
        self.stats["findmin_calls"] += 1
        self.best_key = _INF_KEY
        self.best = None
        candidates = self.out[root]
        if len(candidates) >= k - 1:
            self._walk([root], candidates, k - 1, int(self.scores[root]))
        if self.best is None:
            return None
        return self.best_key, self.best

    def _walk(
        self, prefix: list[int], candidates: set[int], need: int, score_sum: int
    ) -> None:
        out = self.out
        scores = self.scores
        best_score = self.best_key[0]
        if need == 1:
            # Only reachable for k = 2 (greedy matching degenerate case).
            for u in candidates:
                total = score_sum + int(scores[u])
                if total > best_score:
                    continue
                clique = tuple(sorted(prefix + [u]))
                key = (total, clique)
                if key < self.best_key:
                    self.best_key = key
                    self.best = clique
                    best_score = total
            return
        if need == 2:
            for u in sorted(candidates):
                su = int(scores[u])
                if self.prune and score_sum + su >= best_score:
                    self.stats["branches_pruned"] += 1
                    continue
                for v in candidates & out[u]:
                    total = score_sum + su + int(scores[v])
                    if total > best_score:
                        continue
                    clique = tuple(sorted(prefix + [u, v]))
                    key = (total, clique)
                    if key < self.best_key:
                        self.best_key = key
                        self.best = clique
                        best_score = total
            return
        for u in sorted(candidates):
            su = int(scores[u])
            if self.prune and score_sum + su >= best_score:
                self.stats["branches_pruned"] += 1
                continue
            nxt = candidates & out[u]
            if len(nxt) >= need - 1:
                prefix.append(u)
                self._walk(prefix, nxt, need - 1, score_sum + su)
                prefix.pop()
                best_score = self.best_key[0]


# Copy-on-write state for forked HeapInit workers (Linux fork start
# method: children inherit this without pickling the graph).
_PARALLEL_STATE: dict | None = None


def _heapinit_worker(chunk: list[int]):  # pragma: no cover - child process
    state = _PARALLEL_STATE
    finder = _FindMin(
        state["out"], state["scores"], state["prune"],
        {"findmin_calls": 0, "branches_pruned": 0},
    )
    k = state["k"]
    found = []
    for u in chunk:
        if len(state["out"][u]) >= k - 1:
            hit = finder.search(u, k)
            if hit is not None:
                found.append((hit[0], u, hit[1]))
    return found


def _parallel_heap_init(
    out: list[set[int]],
    scores: np.ndarray,
    k: int,
    prune: bool,
    workers: int,
    stats: dict[str, float],
) -> list[tuple[CliqueKey, int, tuple[int, ...]]]:
    """HeapInit across forked workers (Algorithm 3 line 11, 'in parallel').

    Per-root local minima are independent, so the merged heap contents —
    and therefore the final solution — are identical to the sequential
    path; only wall-clock changes.
    """
    global _PARALLEL_STATE
    n = len(out)
    chunk_size = max(1, n // (workers * 4))
    chunks = [list(range(i, min(i + chunk_size, n))) for i in range(0, n, chunk_size)]
    _PARALLEL_STATE = {"out": out, "scores": scores, "prune": prune, "k": k}
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            parts = pool.map(_heapinit_worker, chunks)
    finally:
        _PARALLEL_STATE = None
    heap = [entry for part in parts for entry in part]
    stats["heap_pushes"] += len(heap)
    stats["findmin_calls"] += sum(1 for _ in heap)  # lower bound in parallel mode
    return heap


def lightweight(
    graph: Graph,
    k: int,
    prune: bool = True,
    listing_order="degeneracy",
    workers: int = 1,
    scores: np.ndarray | None = None,
) -> CliqueSetResult:
    """Compute a disjoint k-clique set with Algorithm 3.

    Parameters
    ----------
    graph:
        Input undirected graph.
    k:
        Clique size, ``>= 2``.
    prune:
        ``True`` → the paper's ``LP`` (score-driven pruning in FindMin);
        ``False`` → plain ``L``. Both return identical solutions.
    listing_order:
        Orientation used only for the score-counting pass.
    workers:
        Processes for the HeapInit phase (the paper runs it in
        parallel). ``1`` is sequential; ``0`` uses the CPU count.
        Results are identical for any worker count.
    scores:
        Precomputed node scores for ``k`` (e.g. from a session cache);
        skips the counting pass and makes ``listing_order`` irrelevant.

    Returns
    -------
    CliqueSetResult
        Same solution as :func:`repro.core.store_all.store_all_cliques`
        under the shared clique key (Theorem 4), with ``O(n+m)`` space.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if scores is None:
        scores = node_scores(graph, k, listing_order)
    elif len(scores) != graph.n:
        raise InvalidParameterError(
            f"scores has length {len(scores)}, expected n={graph.n}"
        )
    rank = by_score(graph, scores)
    dag = OrientedGraph(graph, rank)
    out = [set(s) for s in dag.out]

    stats: dict[str, float] = {
        "findmin_calls": 0,
        "branches_pruned": 0,
        "heap_pushes": 0,
        "heap_pops": 0,
        "stale_pops": 0,
        "cliques_taken": 0,
    }
    finder = _FindMin(out, scores, prune, stats)
    valid = [True] * graph.n

    # HeapInit: one local-minimum clique per eligible root.
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers > 1 and graph.n > workers:
        heap = _parallel_heap_init(out, scores, k, prune, workers, stats)
    else:
        heap = []
        for u in range(graph.n):
            found = finder.search(u, k) if len(out[u]) >= k - 1 else None
            if found is not None:
                key, clique = found
                heap.append((key, u, clique))
                stats["heap_pushes"] += 1
    heapq.heapify(heap)

    solution: list[frozenset[int]] = []
    while heap:
        key, root, clique = heapq.heappop(heap)
        stats["heap_pops"] += 1
        if all(valid[v] for v in clique):
            solution.append(frozenset(clique))
            stats["cliques_taken"] += 1
            for w in clique:
                valid[w] = False
            for w in clique:
                for v in graph.neighbors(w):
                    out[v].discard(w)
                out[w].clear()
            continue
        stats["stale_pops"] += 1
        if valid[root] and len(out[root]) >= k - 1:
            found = finder.search(root, k)
            if found is not None:
                new_key, new_clique = found
                heapq.heappush(heap, (new_key, root, new_clique))
                stats["heap_pushes"] += 1

    method = "lp" if prune else "l"
    return CliqueSetResult(solution, k=k, method=method, stats=stats)
