"""Algorithm 3 — the lightweight implementation (paper tags ``L``/``LP``).

Produces the same solution as Algorithm 2 (Theorem 4) with ``O(n + m)``
space:

1. Compute node scores during one clique enumeration (no storage).
2. Orient the graph by ascending node score (ties by id).
3. For each DAG root ``u``, find the *minimum-key* k-clique inside its
   out-neighbourhood (procedure ``FindMin``) and push it into a heap.
4. Repeatedly pop the globally minimal clique. If all its nodes are
   still valid it joins the solution and its nodes are removed; if it is
   stale but its root survives, the root's local minimum is recomputed
   over the remaining valid nodes and re-pushed.

``LP`` additionally prunes ``FindMin`` branches whose partial score plus
the next node's score already reaches the best key's score — safe because
every node in a k-clique has score >= 1, so completing any pruned branch
strictly exceeds the current minimum (it can't even tie, hence the exact
Theorem 4 equality is preserved; see ``tests/test_theorem4.py``).

The heap key is the package-wide deterministic clique key
``(clique score, sorted node tuple)``.

Two ``FindMin`` engines implement the walk (pick with ``backend=``):

* ``"sets"`` — :class:`_FindMin` on mutable out-neighbour sets (the
  original implementation; lowest constants on small graphs);
* ``"csr"`` — :class:`_FindMinCSR` on static sorted-array rows
  (:class:`repro.graph.dag.OrientedCSR`) with a validity mask instead
  of set mutation; faster on large sparse graphs.

Both engines visit candidates in the same (ascending) order, so the
solution *and* the ``findmin_calls``/``branches_pruned`` counters are
identical across backends and worker counts. With ``workers > 1`` the
HeapInit phase fans out through the process tier
(:func:`repro.parallel.heapinit.parallel_heap_init`): workers attach
zero-copy to the oriented-CSR arrays via shared memory and run
:class:`_FindMinCSR` per root chunk, under any start method (``fork``,
``spawn`` or ``forkserver`` — no inherited globals). Worker stats are
merged into the caller's, so the L/LP ablation counters match
sequential runs for any ``workers``.
"""

from __future__ import annotations

import heapq
import os
from typing import Iterable

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.dag import OrientedCSR, OrientedGraph
from repro.graph.graph import Graph
from repro.graph.csr import intersect_sorted
from repro.graph.ordering import OrderSpec, by_score
from repro.cliques.counting import node_scores
from repro.cliques.csr_kernels import resolve_backend
from repro.core.result import CliqueSetResult, is_seedable_clique
from repro.core.scores import CliqueKey

_INF_KEY: CliqueKey = (np.iinfo(np.int64).max, ())


class _FindMin:
    """Recursive local-minimum clique search with optional score pruning.

    Set-backend engine: ``out`` holds *live* out-neighbour sets that
    :meth:`invalidate` physically shrinks as cliques enter the solution.
    """

    __slots__ = ("out", "scores", "prune", "stats", "graph", "valid", "best_key", "best")

    def __init__(
        self,
        out: list[set[int]],
        scores: np.ndarray,
        prune: bool,
        stats: dict[str, float],
        graph: Graph | None = None,
        valid: list[bool] | None = None,
    ) -> None:
        self.out = out
        self.scores = scores
        self.prune = prune
        self.stats = stats
        self.graph = graph
        self.valid = valid
        self.best_key: CliqueKey = _INF_KEY
        self.best: tuple[int, ...] | None = None

    def live_out_degree(self, u: int) -> int:
        """Number of still-valid out-neighbours of ``u``."""
        return len(self.out[u])

    def alive(self, v: int) -> bool:
        """Whether ``v`` is still available for a clique."""
        return self.valid[v]

    def invalidate(self, clique: Iterable[int]) -> None:
        """Remove a chosen clique's nodes from the residual graph."""
        for w in clique:
            self.valid[w] = False
        for w in clique:
            for v in self.graph.neighbors(w):
                self.out[v].discard(w)
            self.out[w].clear()

    def search(self, root: int, k: int) -> tuple[CliqueKey, tuple[int, ...]] | None:
        """Minimum-key k-clique rooted at ``root``, or ``None``."""
        self.stats["findmin_calls"] += 1
        self.best_key = _INF_KEY
        self.best = None
        candidates = self.out[root]
        if len(candidates) >= k - 1:
            self._walk([root], candidates, k - 1, int(self.scores[root]))
        if self.best is None:
            return None
        return self.best_key, self.best

    def _walk(
        self, prefix: list[int], candidates: set[int], need: int, score_sum: int
    ) -> None:
        out = self.out
        scores = self.scores
        best_score = self.best_key[0]
        if need == 1:
            # Only reachable for k = 2 (greedy matching degenerate case).
            for u in candidates:
                total = score_sum + int(scores[u])
                if total > best_score:
                    continue
                clique = tuple(sorted(prefix + [u]))
                key = (total, clique)
                if key < self.best_key:
                    self.best_key = key
                    self.best = clique
                    best_score = total
            return
        if need == 2:
            for u in sorted(candidates):
                su = int(scores[u])
                if self.prune and score_sum + su >= best_score:
                    self.stats["branches_pruned"] += 1
                    continue
                for v in candidates & out[u]:
                    total = score_sum + su + int(scores[v])
                    if total > best_score:
                        continue
                    clique = tuple(sorted(prefix + [u, v]))
                    key = (total, clique)
                    if key < self.best_key:
                        self.best_key = key
                        self.best = clique
                        best_score = total
            return
        for u in sorted(candidates):
            su = int(scores[u])
            if self.prune and score_sum + su >= best_score:
                self.stats["branches_pruned"] += 1
                continue
            nxt = candidates & out[u]
            if len(nxt) >= need - 1:
                prefix.append(u)
                self._walk(prefix, nxt, need - 1, score_sum + su)
                prefix.pop()
                best_score = self.best_key[0]


class _FindMinCSR:
    """CSR-backend FindMin: static sorted rows plus a validity mask.

    Candidate sets are sorted int64 arrays; intersections go through
    :func:`repro.graph.csr.intersect_sorted` against the immutable
    oriented rows, and dead nodes are masked out once at the root
    instead of being discarded from every neighbour set. Candidate
    iteration is ascending (rows are sorted), matching the set engine's
    ``sorted(candidates)`` loops, so all counters agree.
    """

    __slots__ = ("indptr", "cols", "scores", "prune", "stats", "valid", "best_key", "best")

    def __init__(
        self,
        ocsr: OrientedCSR,
        scores: np.ndarray,
        prune: bool,
        stats: dict[str, float],
        valid: np.ndarray,
    ) -> None:
        self.indptr = ocsr.indptr
        self.cols = ocsr.cols
        self.scores = scores
        self.prune = prune
        self.stats = stats
        self.valid = valid
        self.best_key: CliqueKey = _INF_KEY
        self.best: tuple[int, ...] | None = None

    def live_out_degree(self, u: int) -> int:
        """Number of still-valid out-neighbours of ``u``."""
        row = self.cols[self.indptr[u] : self.indptr[u + 1]]
        return int(np.count_nonzero(self.valid[row]))

    def alive(self, v: int) -> bool:
        """Whether ``v`` is still available for a clique."""
        return bool(self.valid[v])

    def invalidate(self, clique: Iterable[int]) -> None:
        """Mask out a chosen clique's nodes (rows stay immutable)."""
        for w in clique:
            self.valid[w] = False

    def search(self, root: int, k: int) -> tuple[CliqueKey, tuple[int, ...]] | None:
        """Minimum-key k-clique rooted at ``root``, or ``None``."""
        self.stats["findmin_calls"] += 1
        self.best_key = _INF_KEY
        self.best = None
        row = self.cols[self.indptr[root] : self.indptr[root + 1]]
        candidates = row[self.valid[row]]
        if len(candidates) >= k - 1:
            self._walk([root], candidates, k - 1, int(self.scores[root]))
        if self.best is None:
            return None
        return self.best_key, self.best

    def _walk(
        self, prefix: list[int], candidates: np.ndarray, need: int, score_sum: int
    ) -> None:
        # Every candidate array descends from a validity-filtered root
        # row, and intersections only shrink it, so no re-filtering is
        # needed below the root.
        indptr = self.indptr
        cols = self.cols
        scores = self.scores
        best_score = self.best_key[0]
        if need == 1:
            # Only reachable for k = 2 (greedy matching degenerate case).
            for u in candidates:
                total = score_sum + int(scores[u])
                if total > best_score:
                    continue
                clique = tuple(sorted(prefix + [int(u)]))
                key = (total, clique)
                if key < self.best_key:
                    self.best_key = key
                    self.best = clique
                    best_score = total
            return
        if need == 2:
            for u in candidates:
                su = int(scores[u])
                if self.prune and score_sum + su >= best_score:
                    self.stats["branches_pruned"] += 1
                    continue
                row = cols[indptr[u] : indptr[u + 1]]
                for v in intersect_sorted(candidates, row):
                    total = score_sum + su + int(scores[v])
                    if total > best_score:
                        continue
                    clique = tuple(sorted(prefix + [int(u), int(v)]))
                    key = (total, clique)
                    if key < self.best_key:
                        self.best_key = key
                        self.best = clique
                        best_score = total
            return
        for u in candidates:
            su = int(scores[u])
            if self.prune and score_sum + su >= best_score:
                self.stats["branches_pruned"] += 1
                continue
            row = cols[indptr[u] : indptr[u + 1]]
            nxt = intersect_sorted(candidates, row)
            if len(nxt) >= need - 1:
                prefix.append(int(u))
                self._walk(prefix, nxt, need - 1, score_sum + su)
                prefix.pop()
                best_score = self.best_key[0]


class LightweightEngine:
    """Resumable step machine for Algorithm 3 (one FindMin per tick).

    The run moves through three phases — ``"init"`` (sequential
    HeapInit, one root per tick), ``"init-parallel"`` (forked HeapInit,
    a single coarse tick because worker results only exist merged) and
    ``"drain"`` (the main loop, one heap pop per tick) — then finishes.
    At every tick boundary ``solution`` is a valid disjoint k-clique
    set; maximality holds once :attr:`finished` is true. Solutions and
    stats are identical to the pre-engine monolithic loop for any
    backend/worker combination (the drive-to-completion wrapper
    :func:`lightweight` is what the pinned equivalence tests run).

    :meth:`state_dict` captures ``(phase, next root, heap, solution,
    stats)``; substrates (scores, orientation, residual sets) are
    deterministic functions of the graph plus the replayed solution, so
    :meth:`load_state` rebuilds them instead of serialising them.
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        prune: bool = True,
        listing_order: OrderSpec = "degeneracy",
        workers: int = 1,
        scores: np.ndarray | None = None,
        backend: str = "auto",
        warm_start: Iterable[Iterable[int]] | None = None,
        oriented: OrientedGraph | None = None,
        start_method: str = "auto",
    ) -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        # Phase-aware resolution: scores follow the auto heuristic, but
        # the FindMin walk only leaves sets when csr is explicitly forced.
        score_backend = resolve_backend(backend, graph.m)
        findmin_backend = "csr" if backend == "csr" else "sets"
        if scores is None:
            scores = node_scores(graph, k, listing_order, backend=score_backend)
        elif len(scores) != graph.n:
            raise InvalidParameterError(
                f"scores has length {len(scores)}, expected n={graph.n}"
            )
        self.graph = graph
        self.k = k
        self.prune = prune
        self.tag = "lp" if prune else "l"
        # ``oriented`` must be the by_score orientation of ``graph``
        # under ``scores`` (e.g. Preprocessing.score_oriented); it is
        # only read — the engine works on copies/masks.
        rank = oriented.rank if oriented is not None else by_score(graph, scores)
        self.stats: dict[str, float] = {
            "findmin_calls": 0,
            "branches_pruned": 0,
            "heap_pushes": 0,
            "heap_pops": 0,
            "stale_pops": 0,
            "cliques_taken": 0,
        }
        state: dict = {
            "backend": findmin_backend, "scores": scores, "prune": prune, "k": k
        }
        if findmin_backend == "csr":
            ocsr = oriented.csr() if oriented is not None else OrientedCSR.from_rank(
                graph, rank
            )
            valid_mask = np.ones(graph.n, dtype=bool)
            self.finder: _FindMin | _FindMinCSR = _FindMinCSR(
                ocsr, scores, prune, self.stats, valid_mask
            )
            state.update(ocsr=ocsr, valid=valid_mask)
        else:
            dag = oriented if oriented is not None else OrientedGraph(graph, rank)
            out = [set(s) for s in dag.out]
            self.finder = _FindMin(
                out, scores, prune, self.stats, graph, [True] * graph.n
            )
            # ``dag`` kept for the parallel path: HeapInit workers always
            # run the CSR walk (same candidates, same counters), so a
            # sets-backend engine lazily derives oriented-CSR arrays from
            # it when (and only when) the fan-out actually happens.
            state.update(out=out, dag=dag)
        self._pstate = state

        if workers == 0:
            workers = os.cpu_count() or 1
        self.workers = workers
        self.start_method = start_method
        use_parallel = workers > 1 and graph.n > workers
        self.phase = "init-parallel" if use_parallel else "init"
        if self.phase == "init" and graph.n == 0:
            self.phase = "done"  # nothing to scan; the heap stays empty
        self.next_root = 0
        self.heap: list[tuple[CliqueKey, int, tuple[int, ...]]] = []
        self.solution: list[frozenset[int]] = []

        if warm_start:
            self.stats["warm_seeded"] = 0
            for clique in warm_start:
                if is_seedable_clique(graph, k, clique, self.finder.alive):
                    self.solution.append(frozenset(clique))
                    self.stats["cliques_taken"] += 1
                    self.stats["warm_seeded"] += 1
                    self.finder.invalidate(clique)

    # -- stepping ------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the main loop drained the heap (solution maximal)."""
        return self.phase == "done"

    @property
    def size(self) -> int:
        """Current ``|S|`` of the partial solution."""
        return len(self.solution)

    def tick(self) -> None:
        """Advance one work unit (a HeapInit root or a main-loop pop)."""
        if self.phase == "init-parallel":
            # Workers return only merged results, so the whole parallel
            # HeapInit is one coarse (non-interruptible) tick. Deferred
            # import: repro.parallel sits above core in the layer DAG.
            from repro.parallel.heapinit import parallel_heap_init

            state = self._pstate
            ocsr = state["ocsr"] if "ocsr" in state else state["dag"].csr()
            finder = self.finder
            if isinstance(finder, _FindMinCSR):
                valid = finder.valid
            else:
                valid = np.asarray(finder.valid, dtype=bool)
            self.heap = parallel_heap_init(
                ocsr=ocsr,
                scores=state["scores"],
                valid=valid,
                k=self.k,
                prune=self.prune,
                workers=self.workers,
                stats=self.stats,
                start_method=self.start_method,
            )
            heapq.heapify(self.heap)
            self.phase = "drain" if self.heap else "done"
            return
        if self.phase == "init":
            u = self.next_root
            self.next_root += 1
            finder, k = self.finder, self.k
            found = finder.search(u, k) if finder.live_out_degree(u) >= k - 1 else None
            if found is not None:
                key, clique = found
                self.heap.append((key, u, clique))
                self.stats["heap_pushes"] += 1
            if self.next_root >= self.graph.n:
                heapq.heapify(self.heap)
                self.phase = "drain" if self.heap else "done"
            return
        if self.phase == "drain":
            finder, k, stats = self.finder, self.k, self.stats
            key, root, clique = heapq.heappop(self.heap)
            stats["heap_pops"] += 1
            if all(finder.alive(v) for v in clique):
                self.solution.append(frozenset(clique))
                stats["cliques_taken"] += 1
                finder.invalidate(clique)
            else:
                stats["stale_pops"] += 1
                if finder.alive(root) and finder.live_out_degree(root) >= k - 1:
                    found = finder.search(root, k)
                    if found is not None:
                        new_key, new_clique = found
                        heapq.heappush(self.heap, (new_key, root, new_clique))
                        stats["heap_pushes"] += 1
            if not self.heap:
                self.phase = "done"

    # -- anytime surface -----------------------------------------------
    def bound(self) -> int:
        """Upper bound on the final ``|S|`` of this run.

        Every future clique is taken from a heap pop, re-pushes never
        grow the heap, and each remaining HeapInit root contributes at
        most one push — so ``|S| + min(free // k, heap + roots left)``
        bounds what draining can still add.
        """
        if self.phase == "done":
            return len(self.solution)
        finder = self.finder
        if isinstance(finder, _FindMinCSR):
            free = int(np.count_nonzero(finder.valid))
        else:
            free = sum(1 for alive in finder.valid if alive)
        roots_left = 0
        if self.phase == "init":
            roots_left = self.graph.n - self.next_root
        elif self.phase == "init-parallel":
            roots_left = self.graph.n
        pending = len(self.heap) + roots_left
        return len(self.solution) + min(free // self.k, pending)

    def snapshot_result(self) -> CliqueSetResult:
        """Current partial solution (always a valid disjoint set)."""
        return CliqueSetResult(
            list(self.solution), k=self.k, method=self.tag, stats=dict(self.stats)
        )

    def result(self) -> CliqueSetResult:
        """Final result; raises unless the run drained to completion."""
        if not self.finished:
            raise InvalidParameterError(
                "engine has not finished; drive tick() to completion first"
            )
        return CliqueSetResult(
            self.solution, k=self.k, method=self.tag, stats=self.stats
        )

    # -- checkpoint / restore ------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable engine state (substrates excluded)."""
        return {
            "phase": self.phase,
            "next_root": self.next_root,
            "heap": [
                [int(key[0]), list(key[1]), int(root), list(clique)]
                for key, root, clique in self.heap
            ],
            "solution": [sorted(c) for c in self.solution],
            "stats": dict(self.stats),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto fresh substrates.

        The residual graph (validity mask / live out-sets) is rebuilt by
        replaying the checkpointed solution's invalidations; heap
        entries keep their total order under JSON round-tripping, so pop
        sequences — and therefore the final solution and stats — are
        identical to an uninterrupted run.
        """
        self.solution = []
        for clique in state["solution"]:
            self.solution.append(frozenset(clique))
            self.finder.invalidate(clique)
        self.heap = [
            ((int(score), tuple(key_clique)), int(root), tuple(clique))
            for score, key_clique, root, clique in state["heap"]
        ]
        heapq.heapify(self.heap)
        phase = state["phase"]
        if phase == "init-parallel" and self.phase != "init-parallel":
            # Checkpoint taken with workers > 1, restored onto an engine
            # configured sequentially (fewer cores, workers=1 options):
            # fall back to sequential HeapInit — same heap, same stats.
            phase = "init"
        self.phase = phase
        self.next_root = int(state["next_root"])
        # In-place replacement keeps the finder's reference valid.
        replaced = {key: value for key, value in state["stats"].items()}
        self.stats.clear()
        self.stats.update(replaced)


def lightweight(
    graph: Graph,
    k: int,
    prune: bool = True,
    listing_order: OrderSpec = "degeneracy",
    workers: int = 1,
    scores: np.ndarray | None = None,
    backend: str = "auto",
    oriented: OrientedGraph | None = None,
    start_method: str = "auto",
) -> CliqueSetResult:
    """Compute a disjoint k-clique set with Algorithm 3.

    Parameters
    ----------
    graph:
        Input undirected graph.
    k:
        Clique size, ``>= 2``.
    prune:
        ``True`` → the paper's ``LP`` (score-driven pruning in FindMin);
        ``False`` → plain ``L``. Both return identical solutions.
    listing_order:
        Orientation used only for the score-counting pass.
    workers:
        Processes for the HeapInit phase (the paper runs it in
        parallel). ``1`` is sequential; ``0`` uses the CPU count.
        Results and stats are identical for any worker count. The
        fan-out goes through the shared-memory process tier
        (:mod:`repro.parallel`), which is portable across the
        ``fork``, ``spawn`` and ``forkserver`` start methods.
    scores:
        Precomputed node scores for ``k`` (e.g. from a session cache);
        skips the counting pass and makes ``listing_order`` irrelevant.
    backend:
        ``"auto" | "sets" | "csr"`` — engine selection (see module
        docstring). ``"auto"`` is phase-aware: the score-counting pass
        uses the CSR kernels on large graphs (where the level-bulk
        vectorisation pays), while the FindMin walk stays on sets
        (per-root work over tiny candidate arrays, where numpy call
        overhead loses). ``"sets"`` / ``"csr"`` force one engine for
        both phases. Solutions and stats are backend-independent.
    oriented:
        An already-built ascending-score orientation of ``graph`` under
        the same ``scores`` (e.g. from
        :meth:`repro.core.session.Preprocessing.score_oriented`); skips
        the per-call orientation build. Only read, never mutated.
    start_method:
        Start method for the HeapInit worker processes (``"auto"``
        prefers ``fork``; see
        :func:`repro.parallel.context.resolve_context`). Irrelevant to
        the solution.

    Returns
    -------
    CliqueSetResult
        Same solution as :func:`repro.core.store_all.store_all_cliques`
        under the shared clique key (Theorem 4), with ``O(n+m)`` space.
        This is the drive-to-completion wrapper over
        :class:`LightweightEngine`; for anytime/interruptible execution
        use :meth:`repro.core.session.Session.task`.
    """
    engine = LightweightEngine(
        graph,
        k,
        prune=prune,
        listing_order=listing_order,
        workers=workers,
        scores=scores,
        backend=backend,
        oriented=oriented,
        start_method=start_method,
    )
    while not engine.finished:
        engine.tick()
    return engine.result()
