"""Solver registry: first-class methods with typed, validated options.

Each solver method (the paper's competitor tags ``hg``/``gc``/``l``/
``lp``/``opt``/``opt-bb``) is registered as a :class:`Method` object
carrying capability metadata — exact vs. heuristic, whether it honours a
``time_budget``, whether it can warm-start from a previous solution —
plus a frozen options dataclass that validates keyword arguments *up
front* instead of silently forwarding them into a solver. A typo like
``time_budgt=`` therefore fails immediately with the valid option names
for that method (and a did-you-mean suggestion) rather than raising a
confusing ``TypeError`` deep inside a solver, or worse, being swallowed.

Registered solve functions take ``(prep, k, options)`` where ``prep`` is
a :class:`repro.core.session.Preprocessing` cache, so every method pulls
its shared substrates (node scores, clique listings, oriented DAGs) from
the owning :class:`~repro.core.session.Session` instead of recomputing
them per call.

The module-level :data:`REGISTRY` holds the six paper methods; custom
methods can be added to a private :class:`SolverRegistry` instance for
experimentation without touching the default set.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import InvalidParameterError
from repro.cliques.csr_kernels import BACKENDS
from repro.core.basic import BasicEngine, basic_framework
from repro.core.exact import exact_optimum
from repro.core.exact_bb import ExactBBEngine, exact_optimum_bb
from repro.core.lightweight import LightweightEngine, lightweight
from repro.core.result import CliqueSetResult
from repro.core.store_all import store_all_cliques

if TYPE_CHECKING:  # deferred at runtime: session imports the registry
    from repro.core.session import Preprocessing


# ----------------------------------------------------------------------
# Typed per-method options
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolveOptions:
    """Base class for per-method solver options.

    Subclasses declare one field per accepted keyword; :meth:`validate`
    checks value domains after construction. Field names double as the
    public option names reported in error messages and by the
    ``python -m repro methods`` command.
    """

    @classmethod
    def option_names(cls) -> tuple[str, ...]:
        """The keyword names this options class accepts."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def describe(cls) -> str:
        """Human-readable ``name=default`` listing (``-`` when empty)."""
        parts = [f"{f.name}={f.default!r}" for f in fields(cls)]
        return ", ".join(parts) if parts else "-"

    def validate(self) -> None:
        """Raise :class:`InvalidParameterError` on out-of-domain values."""


def _check_backend(value: object) -> None:
    if value not in BACKENDS:
        raise InvalidParameterError(
            f"backend must be one of {BACKENDS}, got {value!r}"
        )


def _check_budget(name: str, value: object, *, integral: bool) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidParameterError(
            f"{name} must be a positive number or None, got {value!r}"
        )
    if integral and not isinstance(value, int):
        raise InvalidParameterError(
            f"{name} must be an int or None, got {value!r}"
        )
    if value <= 0:
        raise InvalidParameterError(
            f"{name} must be positive, got {value!r}"
        )


@dataclass(frozen=True)
class HGOptions(SolveOptions):
    """Options for Algorithm 1 (``hg``).

    ``order`` is the total node ordering used to orient the graph: a
    name (``"id" | "degree" | "degeneracy"``), a rank array, or a
    callable ``graph -> rank array``.
    """

    order: object = "degree"


@dataclass(frozen=True)
class GCOptions(SolveOptions):
    """Options for Algorithm 2 (``gc``): the stored-clique memory cap.

    The session always enumerates under its cached degeneracy
    orientation (the result is orientation-independent), so no
    ``order`` knob is exposed here; pass ``order=`` to
    :func:`repro.core.store_all.store_all_cliques` directly to
    experiment with listing orientations.
    """

    max_cliques: int | None = None
    backend: str = "auto"

    def validate(self) -> None:
        _check_budget("max_cliques", self.max_cliques, integral=True)
        _check_backend(self.backend)


@dataclass(frozen=True)
class LightweightOptions(SolveOptions):
    """Options for Algorithm 3 (``l``/``lp``).

    ``workers`` parallelises HeapInit (0 = CPU count) and never changes
    the solution. ``backend`` picks the FindMin/score-pass engine
    (``"auto" | "sets" | "csr"``); solutions and stats are
    backend-independent. The score-counting pass runs under the
    session's cached degeneracy orientation; pass ``listing_order=`` to
    :func:`repro.core.lightweight.lightweight` directly to experiment
    with other orientations.
    """

    workers: int = 1
    backend: str = "auto"

    def validate(self) -> None:
        if isinstance(self.workers, bool) or not isinstance(self.workers, int):
            raise InvalidParameterError(
                f"workers must be an int >= 0, got {self.workers!r}"
            )
        if self.workers < 0:
            raise InvalidParameterError(
                f"workers must be >= 0 (0 = CPU count), got {self.workers}"
            )
        _check_backend(self.backend)


@dataclass(frozen=True)
class ExactOptions(SolveOptions):
    """Options for the exact baselines (``opt``/``opt-bb``): OOT/OOM budgets."""

    time_budget: float | None = None
    max_cliques: int | None = None

    def validate(self) -> None:
        _check_budget("time_budget", self.time_budget, integral=False)
        _check_budget("max_cliques", self.max_cliques, integral=True)


# ----------------------------------------------------------------------
# Method objects and the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Method:
    """A registered solver method with capability metadata.

    Attributes
    ----------
    tag:
        The dispatch tag (``"lp"``, ``"opt-bb"``, ...), always lowercase.
    summary:
        One-line description shown by ``python -m repro methods``.
    exact:
        ``True`` for provably optimal solvers, ``False`` for heuristics.
    options_cls:
        The :class:`SolveOptions` subclass validating this method's
        keyword arguments.
    run:
        ``(prep, k, options) -> CliqueSetResult`` using the session's
        :class:`~repro.core.session.Preprocessing` cache.
    supports_time_budget:
        Whether the solver cooperatively honours ``time_budget``.
    supports_warm_start:
        Whether the solver can be seeded from a previous solution (the
        engine filters the seed to cliques still valid in the graph);
        :meth:`repro.core.session.Session.task` exposes this as
        ``warm_start=`` and :meth:`~repro.core.session.Session.dynamic`
        uses it to warm-restart after updates.
    deadline_safe:
        Whether the solver's running time is predictably bounded
        (near-linear heuristics) so a serving deadline is meaningful
        even without a cooperative ``time_budget`` hook. The scheduler
        in :mod:`repro.serve` only accepts per-request deadlines for
        methods where :attr:`can_meet_deadline` holds; others would
        occupy a worker long past their deadline with no way to stop.
    engine:
        Factory ``(prep, k, options, warm_start=None) -> engine`` for
        the method's resumable step machine, or ``None`` for methods
        that only run monolithically. When present the method is
        :attr:`resumable`: it can be opened as a
        :class:`repro.core.task.SolveTask`, the serving scheduler can
        preempt/timeslice it, and deadline expiry yields its partial
        solution instead of discarding the work.
    """

    tag: str
    summary: str
    exact: bool
    options_cls: type[SolveOptions]
    run: Callable[..., CliqueSetResult] = field(repr=False, compare=False)
    supports_time_budget: bool = False
    supports_warm_start: bool = False
    deadline_safe: bool = False
    engine: Callable | None = field(default=None, repr=False, compare=False)

    @property
    def resumable(self) -> bool:
        """Whether the method exposes a resumable engine (anytime-capable)."""
        return self.engine is not None

    @property
    def can_meet_deadline(self) -> bool:
        """Whether a per-request deadline is enforceable for this method.

        True when the method is :attr:`resumable` (the scheduler
        timeslices it and harvests ``best()`` at expiry), honours a
        cooperative ``time_budget`` (the scheduler forwards the
        remaining deadline), or is declared ``deadline_safe``
        (bounded-work heuristics that finish promptly on their own).
        """
        return self.resumable or self.deadline_safe or self.supports_time_budget

    def parse_options(self, kwargs: dict) -> SolveOptions:
        """Validate raw keyword arguments into a typed options object.

        Unknown names raise :class:`InvalidParameterError` listing the
        valid options for this method, with a close-match suggestion.
        """
        valid = self.options_cls.option_names()
        unknown = [name for name in kwargs if name not in valid]
        if unknown:
            bad = unknown[0]
            if bad == "prune":
                raise InvalidParameterError(
                    "pass method='l' or method='lp' instead of a prune= keyword"
                )
            valid_text = ", ".join(valid) if valid else "(none)"
            hint = ""
            # Prefer options containing the typo (order -> listing_order)
            # over pure edit-distance matches.
            containing = [name for name in valid if bad in name]
            close = containing or difflib.get_close_matches(bad, valid, n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
            raise InvalidParameterError(
                f"unknown option {bad!r} for method {self.tag!r}; "
                f"valid options: {valid_text}{hint}"
            )
        options = self.options_cls(**kwargs)
        options.validate()
        return options


class SolverRegistry:
    """Tag -> :class:`Method` mapping with decorator-based registration."""

    def __init__(self) -> None:
        self._methods: dict[str, Method] = {}

    def register(
        self,
        tag: str,
        *,
        summary: str,
        exact: bool,
        options: type[SolveOptions] = SolveOptions,
        supports_time_budget: bool = False,
        supports_warm_start: bool = False,
        deadline_safe: bool = False,
        engine: Callable | None = None,
    ) -> Callable:
        """Decorator registering a ``(prep, k, options)`` solve function.

        ``engine`` optionally attaches a resumable engine factory
        ``(prep, k, options, warm_start=None) -> engine`` making the
        method anytime-capable (see :attr:`Method.engine`).
        """

        def decorator(fn: Callable[..., CliqueSetResult]) -> Callable:
            key = tag.lower()
            if key in self._methods:
                raise InvalidParameterError(f"method {tag!r} is already registered")
            self._methods[key] = Method(
                tag=key,
                summary=summary,
                exact=exact,
                options_cls=options,
                run=fn,
                supports_time_budget=supports_time_budget,
                supports_warm_start=supports_warm_start,
                deadline_safe=deadline_safe,
                engine=engine,
            )
            return fn

        return decorator

    def get(self, tag: str) -> Method:
        """Resolve a (case-insensitive) tag; raise on unknown methods."""
        if not isinstance(tag, str):
            raise InvalidParameterError(
                f"method must be a string tag, got {type(tag).__name__}"
            )
        method = self._methods.get(tag.lower())
        if method is None:
            raise InvalidParameterError(
                f"unknown method {tag!r}; expected one of {self.tags()}"
            )
        return method

    def tags(self) -> tuple[str, ...]:
        """Registered tags in registration order."""
        return tuple(self._methods)

    def methods(self) -> tuple[Method, ...]:
        """Registered :class:`Method` objects in registration order."""
        # Registration order IS the documented contract here, and every
        # registration happens at deterministic module-import time.
        return tuple(self._methods.values())  # repro-lint: ignore=iterorder

    def __iter__(self) -> Iterator[Method]:
        return iter(self._methods.values())

    def __contains__(self, tag: object) -> bool:
        return isinstance(tag, str) and tag.lower() in self._methods

    def __len__(self) -> int:
        return len(self._methods)


#: The default registry holding the paper's six methods.
REGISTRY = SolverRegistry()


# ----------------------------------------------------------------------
# Resumable engine factories (Method.engine): same substrates as the
# blocking run functions, so a task driven to completion reproduces the
# blocking solve bit-for-bit.
# ----------------------------------------------------------------------
def _engine_hg(
    prep: Preprocessing,
    k: int,
    opts: HGOptions,
    warm_start: Iterable[Iterable[int]] | None = None,
) -> BasicEngine:
    return BasicEngine(
        prep.graph,
        k,
        order=opts.order,
        oriented=prep.oriented(opts.order),
        warm_start=warm_start,
    )


def _engine_lightweight(prune: bool) -> Callable[..., LightweightEngine]:
    def factory(
        prep: Preprocessing,
        k: int,
        opts: LightweightOptions,
        warm_start: Iterable[Iterable[int]] | None = None,
    ) -> LightweightEngine:
        return LightweightEngine(
            prep.graph,
            k,
            prune=prune,
            workers=opts.workers,
            scores=prep.scores(k, backend=opts.backend),
            backend=opts.backend,
            warm_start=warm_start,
            oriented=prep.score_oriented(k, backend=opts.backend),
        )

    return factory


def _engine_opt_bb(
    prep: Preprocessing,
    k: int,
    opts: ExactOptions,
    warm_start: Iterable[Iterable[int]] | None = None,
) -> ExactBBEngine:
    return ExactBBEngine(
        prep.graph,
        k,
        max_cliques=opts.max_cliques,
        scores=prep.scores(k),
        cliques=prep.cliques(k, max_cliques=opts.max_cliques),
        warm_start=warm_start,
    )


@REGISTRY.register(
    "hg",
    summary="Algorithm 1, basic greedy framework (maximal, k-approximate)",
    exact=False,
    options=HGOptions,
    deadline_safe=True,
    supports_warm_start=True,
    engine=_engine_hg,
)
def _run_hg(prep: Preprocessing, k: int, opts: HGOptions) -> CliqueSetResult:
    return basic_framework(
        prep.graph, k, order=opts.order, oriented=prep.oriented(opts.order)
    )


@REGISTRY.register(
    "gc",
    summary="Algorithm 2, stored cliques in ascending clique-score order",
    exact=False,
    options=GCOptions,
)
def _run_gc(prep: Preprocessing, k: int, opts: GCOptions) -> CliqueSetResult:
    cliques = prep.cliques(k, max_cliques=opts.max_cliques, backend=opts.backend)
    return store_all_cliques(
        prep.graph,
        k,
        max_cliques=opts.max_cliques,
        scores=prep.scores(k, backend=opts.backend),
        cliques=cliques,
    )


@REGISTRY.register(
    "l",
    summary="Algorithm 3 without score pruning (O(n+m) space)",
    exact=False,
    options=LightweightOptions,
    deadline_safe=True,
    supports_warm_start=True,
    engine=_engine_lightweight(prune=False),
)
def _run_l(prep: Preprocessing, k: int, opts: LightweightOptions) -> CliqueSetResult:
    return lightweight(
        prep.graph,
        k,
        prune=False,
        workers=opts.workers,
        scores=prep.scores(k, backend=opts.backend),
        backend=opts.backend,
        oriented=prep.score_oriented(k, backend=opts.backend),
    )


@REGISTRY.register(
    "lp",
    summary="Algorithm 3 with score pruning (the paper's headline method)",
    exact=False,
    options=LightweightOptions,
    deadline_safe=True,
    supports_warm_start=True,
    engine=_engine_lightweight(prune=True),
)
def _run_lp(prep: Preprocessing, k: int, opts: LightweightOptions) -> CliqueSetResult:
    return lightweight(
        prep.graph,
        k,
        prune=True,
        workers=opts.workers,
        scores=prep.scores(k, backend=opts.backend),
        backend=opts.backend,
        oriented=prep.score_oriented(k, backend=opts.backend),
    )


@REGISTRY.register(
    "opt",
    summary="exact: clique graph + exact MIS (blossom matching for k=2)",
    exact=True,
    options=ExactOptions,
    supports_time_budget=True,
)
def _run_opt(prep: Preprocessing, k: int, opts: ExactOptions) -> CliqueSetResult:
    if k == 2:
        # Blossom matching needs no clique substrate; skip the listing.
        return exact_optimum(
            prep.graph, 2, time_budget=opts.time_budget, max_cliques=opts.max_cliques
        )
    return exact_optimum(
        prep.graph,
        k,
        time_budget=opts.time_budget,
        max_cliques=opts.max_cliques,
        cliques=prep.cliques(k, max_cliques=opts.max_cliques),
    )


@REGISTRY.register(
    "opt-bb",
    summary="exact: direct branch-and-bound over cliques (cross-check)",
    exact=True,
    options=ExactOptions,
    supports_time_budget=True,
    supports_warm_start=True,
    engine=_engine_opt_bb,
)
def _run_opt_bb(prep: Preprocessing, k: int, opts: ExactOptions) -> CliqueSetResult:
    cliques = prep.cliques(k, max_cliques=opts.max_cliques)
    return exact_optimum_bb(
        prep.graph,
        k,
        time_budget=opts.time_budget,
        max_cliques=opts.max_cliques,
        scores=prep.scores(k),
        cliques=cliques,
    )
