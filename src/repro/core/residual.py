"""Iterative residual packing — the paper's deployment recipe.

The introduction describes how uncovered players are handled in the
teaming event: after packing disjoint k-cliques, "the maximum set of
disjoint dense-connected k nodes can be found iteratively in the
residual graph which removes the already contained nodes, until all
nodes are settled." This module implements that pipeline as a library
feature: pack at the target k, then fall back through smaller clique
sizes on the residual graph, and finally group leftovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.core.api import find_disjoint_cliques


@dataclass
class ResidualPacking:
    """Outcome of :func:`iterative_residual_packing`.

    Attributes
    ----------
    rounds:
        One entry per packing round: ``(k, cliques)`` in the order run.
    leftovers:
        Nodes not covered by any round, grouped into chunks of the
        target size when ``group_leftovers`` was requested (the final
        groups are *not* cliques).
    """

    rounds: list[tuple[int, list[frozenset[int]]]] = field(default_factory=list)
    leftovers: list[list[int]] = field(default_factory=list)

    @property
    def groups(self) -> list[list[int]]:
        """All formed groups: clique rounds first, then leftover chunks."""
        out = [sorted(c) for _, cliques in self.rounds for c in cliques]
        out.extend(self.leftovers)
        return out

    @property
    def covered_nodes(self) -> set[int]:
        """Nodes covered by clique rounds (leftover chunks excluded)."""
        return {u for _, cliques in self.rounds for c in cliques for u in c}

    def coverage(self, n: int) -> float:
        """Fraction of nodes inside genuine cliques."""
        return len(self.covered_nodes) / n if n else 0.0

    def round_sizes(self) -> dict[int, int]:
        """Number of cliques found per k."""
        return {k: len(cliques) for k, cliques in self.rounds}


def iterative_residual_packing(
    graph: Graph,
    ks: Sequence[int] = (4, 3, 2),
    method: str = "lp",
    group_leftovers: bool = True,
) -> ResidualPacking:
    """Pack disjoint cliques at decreasing sizes until nodes run out.

    Parameters
    ----------
    graph:
        Input undirected graph.
    ks:
        Clique sizes to pack, in order (must be strictly decreasing and
        all ``>= 2``). The first entry is the "team size" target.
    method:
        Static solver used for each round.
    group_leftovers:
        When true, nodes covered by no round are grouped into arbitrary
        chunks of ``ks[0]`` (the teaming event assigns every player).

    Returns
    -------
    ResidualPacking
    """
    ks = list(ks)
    if not ks or any(k < 2 for k in ks):
        raise InvalidParameterError(f"ks must be non-empty with all k >= 2, got {ks}")
    if ks != sorted(ks, reverse=True) or len(set(ks)) != len(ks):
        raise InvalidParameterError(f"ks must be strictly decreasing, got {ks}")

    packing = ResidualPacking()
    covered: set[int] = set()
    residual = graph
    for k in ks:
        result = find_disjoint_cliques(residual, k, method=method)
        if result.cliques:
            packing.rounds.append((k, list(result.cliques)))
            for clique in result.cliques:
                covered |= clique
            residual = graph.remove_nodes(covered)
        else:
            packing.rounds.append((k, []))
    if group_leftovers:
        leftover_nodes = [u for u in range(graph.n) if u not in covered]
        size = ks[0]
        packing.leftovers = [
            leftover_nodes[i : i + size] for i in range(0, len(leftover_nodes), size)
        ]
    return packing
