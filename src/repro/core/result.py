"""Result container and validators for disjoint k-clique sets.

Every solver returns a :class:`CliqueSetResult`; :func:`verify_solution`
checks the two problem invariants (each member is a k-clique of the
graph; members are pairwise node-disjoint) and :func:`is_maximal` checks
Definition 3's maximality, the precondition of the paper's
k-approximation guarantee (Theorem 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import SolutionError

if TYPE_CHECKING:  # imported for annotations only: core sits above graph
    from repro.graph.dynamic import DynamicGraph
    from repro.graph.graph import Graph

Clique = frozenset[int]


def canonicalize(cliques: Iterable[Iterable[int]]) -> list[Clique]:
    """Normalise an iterable of node collections into sorted frozensets."""
    return [frozenset(c) for c in cliques]


@dataclass
class CliqueSetResult:
    """A disjoint k-clique set plus solver metadata.

    Attributes
    ----------
    cliques:
        The solution, as frozensets of node ids.
    k:
        The clique size solved for.
    method:
        Solver tag (``"hg" | "gc" | "l" | "lp" | "opt"`` or custom).
    stats:
        Free-form solver counters (cliques enumerated, heap pops, ...).
    """

    cliques: list[Clique]
    k: int
    method: str = ""
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of cliques in the solution (the paper's ``|S|``)."""
        return len(self.cliques)

    @property
    def covered_nodes(self) -> set[int]:
        """Union of all member cliques' nodes."""
        covered: set[int] = set()
        for clique in self.cliques:
            covered |= clique
        return covered

    def coverage(self, n: int) -> float:
        """Fraction of the graph's nodes covered (paper: 75% on Orkut, k=4)."""
        return len(self.covered_nodes) / n if n else 0.0

    def sorted_cliques(self) -> list[tuple[int, ...]]:
        """Deterministic canonical listing (each clique sorted, then lex)."""
        return sorted(tuple(sorted(c)) for c in self.cliques)

    def __iter__(self) -> Iterator[Clique]:
        return iter(self.cliques)

    def __len__(self) -> int:
        return len(self.cliques)

    def __repr__(self) -> str:
        return (
            f"CliqueSetResult(size={self.size}, k={self.k}, "
            f"method={self.method!r})"
        )


def verify_solution(
    graph: "Graph | DynamicGraph", k: int, cliques: Iterable[Iterable[int]]
) -> None:
    """Raise :class:`SolutionError` unless ``cliques`` is a valid solution.

    Checks: every member has exactly ``k`` distinct nodes, induces a
    complete subgraph of ``graph``, and no node appears in two members.
    Works with both static and dynamic graphs (anything exposing
    ``has_edge``).
    """
    seen: set[int] = set()
    for clique in cliques:
        members = sorted(set(clique))
        if len(members) != k:
            raise SolutionError(
                f"clique {sorted(clique)} has {len(members)} distinct nodes, "
                f"expected k={k}"
            )
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not graph.has_edge(u, v):
                    raise SolutionError(
                        f"clique {members} is missing edge ({u}, {v})"
                    )
        overlap = seen.intersection(members)
        if overlap:
            raise SolutionError(
                f"clique {members} overlaps earlier cliques on nodes {sorted(overlap)}"
            )
        seen.update(members)


def is_seedable_clique(
    graph: "Graph | DynamicGraph",
    k: int,
    clique: Iterable[int],
    alive: Callable[[int], bool],
) -> bool:
    """Whether ``clique`` can seed a warm-started engine.

    True when the clique has exactly ``k`` distinct in-range nodes, all
    still available per the ``alive(node) -> bool`` predicate, and is a
    complete subgraph of ``graph``. Shared by the resumable engines'
    ``warm_start`` filters so their seeding semantics cannot diverge.
    """
    members = sorted(set(clique))
    if len(members) != k:
        return False
    if not all(0 <= u < graph.n and alive(u) for u in members):
        return False
    return all(
        graph.has_edge(u, v)
        for i, u in enumerate(members)
        for v in members[i + 1 :]
    )


def is_valid(
    graph: "Graph | DynamicGraph", k: int, cliques: Iterable[Iterable[int]]
) -> bool:
    """Boolean form of :func:`verify_solution`."""
    try:
        verify_solution(graph, k, cliques)
    except SolutionError:
        return False
    return True


def is_maximal(
    graph: "Graph | DynamicGraph", k: int, cliques: Iterable[Iterable[int]]
) -> bool:
    """Whether no further disjoint k-clique can be added (Definition 3).

    Enumerates k-cliques of the residual graph induced on uncovered
    nodes; exponential in the worst case, intended for tests and small
    instances.
    """
    from repro.cliques.listing import iter_cliques_in_nodes

    covered: set[int] = set()
    for clique in cliques:
        covered |= set(clique)
    if hasattr(graph, "snapshot"):
        graph = graph.snapshot()
    free = [u for u in range(graph.n) if u not in covered]
    for _ in iter_cliques_in_nodes(graph, free, k):
        return False
    return True
