"""Node scores, clique scores and the Theorem 2 degree bounds.

Definition 5: ``s_n(u)`` = number of k-cliques containing ``u``.
Definition 6: ``s_c(C) = sum_{u in C} s_n(u)``.
Theorem 2:   ``(s_c(C) - k) / (k - 1) <= deg_Gc(C) <= s_c(C) - k``.

The clique score is the paper's cheap surrogate for a clique's degree in
the (never materialised) clique graph; ascending-score processing mimics
min-degree greedy MIS there.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.ordering import OrderSpec
from repro.cliques.counting import node_scores
from repro.graph.graph import Graph

CliqueKey = tuple[int, tuple[int, ...]]


def clique_score(clique: Iterable[int], scores: Sequence[int]) -> int:
    """``s_c(C)``: total node score over the clique's members."""
    return int(sum(scores[u] for u in clique))


def clique_key(clique: Iterable[int], scores: Sequence[int]) -> CliqueKey:
    """Deterministic total order on cliques: ``(score, sorted nodes)``.

    Theorem 4 requires *some* fixed total clique ordering for Algorithm 2
    and Algorithm 3 to coincide; this is the one used across the package.
    """
    members = tuple(sorted(clique))
    return (clique_score(members, scores), members)


def degree_bounds(clique: Iterable[int], scores: Sequence[int], k: int) -> tuple[float, int]:
    """Theorem 2's (lower, upper) bounds on the clique-graph degree."""
    s = clique_score(clique, scores)
    return ((s - k) / (k - 1), s - k)


def compute_scores(
    graph: Graph, k: int, order: OrderSpec = "degeneracy"
) -> np.ndarray:
    """Per-node k-clique counts (re-export of :func:`node_scores`)."""
    return node_scores(graph, k, order)
