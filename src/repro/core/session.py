"""Session-oriented solver API with reusable preprocessing.

A :class:`Session` binds to one :class:`~repro.graph.graph.Graph` and
memoizes the shared substrates every solver needs — core numbers, the
degeneracy ordering, oriented DAGs, and per-k node scores and clique
listings — so repeated ``session.solve(k=..., method=...)`` calls reuse
work instead of recomputing it. This is the structural change the
service roadmap builds on: answering many clique-packing queries over
the same social graph amortises the preprocessing that dominates
runtime across methods and k values.

Typical use::

    from repro import Session

    session = Session(graph)
    lp = session.solve(k=4)                  # pays the k=4 score pass
    gc = session.solve(k=4, method="gc")     # reuses it, pays the listing
    opt = session.solve(k=4, method="opt")   # reuses the listing
    batch = session.solve_many([3, 4, 5], deadline=30.0)

The legacy one-shot :func:`repro.core.api.find_disjoint_cliques` remains
fully supported; it simply delegates to a throwaway session.

Cache invariants: all cached substrates are read-only after
construction (solvers copy the DAG out-sets and never mutate score
arrays or clique lists), and nothing here depends on the method tag —
only on ``(graph, k)`` and the orientation name — so any method mix
shares them safely.

Thread safety: a session may be shared by concurrent solves (the
serving layer in :mod:`repro.serve` does exactly that). Every
:class:`Preprocessing` accessor takes the cache's re-entrant lock
around the check-compute-store sequence, so an expensive substrate is
computed exactly once no matter how many threads race for it, and the
``stats`` counters stay consistent. Solver execution itself runs
outside the lock and only *reads* the returned substrates, which are
immutable by the cache invariant above.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.concurrency import make_lock, make_rlock
from repro.errors import InvalidParameterError, OutOfMemoryError, OutOfTimeError
from repro.graph.graph import Graph
from repro.graph import kcore
from repro.graph import ordering
from repro.graph.dag import OrientedGraph
from repro.cliques import counting
from repro.cliques import csr_kernels
from repro.cliques import listing
from repro.core.registry import REGISTRY, Method, SolverRegistry
from repro.core.result import CliqueSetResult

if TYPE_CHECKING:  # deferred at runtime: task/maintainer sit above core
    from repro.graph.dag import OrientedCSR
    from repro.core.task import SolveTask
    from repro.dynamic.maintainer import DynamicDisjointCliques


class Preprocessing:
    """Memoized per-graph substrates shared by all solver methods.

    Every accessor is compute-on-first-use; subsequent calls are cache
    hits. ``stats`` counts the expensive passes actually performed
    (clique enumerations, score passes, orientations) plus cache hits,
    so tests and services can assert work is not repeated.

    All accessors are thread-safe: the internal re-entrant lock guards
    the whole check-compute-store sequence, so under concurrency each
    substrate is computed once and handed to every waiter.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._lock = make_rlock("Preprocessing._lock")
        self._last_estimate = 0
        self._core: np.ndarray | None = None
        self._ranks: dict[str, np.ndarray] = {}
        self._oriented: dict[str, OrientedGraph] = {}
        self._score_oriented: dict[int, OrientedGraph] = {}
        self._scores: dict[int, np.ndarray] = {}
        self._cliques: dict[int, list[tuple[int, ...]]] = {}
        self._counts: dict[int, int] = {}
        self.stats: dict[str, int] = {
            "clique_listings": 0,
            "score_passes": 0,
            "count_passes": 0,
            "orientations": 0,
            "csr_builds": 0,
            "core_decompositions": 0,
            "cache_hits": 0,
        }

    # -- orderings and orientations ------------------------------------
    def core_numbers(self) -> np.ndarray:
        """Core number per node (cached k-core decomposition)."""
        with self._lock:
            if self._core is None:
                self._core = kcore.core_numbers(self.graph)
                self.stats["core_decompositions"] += 1
            else:
                self.stats["cache_hits"] += 1
            return self._core

    def rank(self, order: object = "degeneracy") -> np.ndarray:
        """Rank array for a named ordering (cached per name)."""
        if not isinstance(order, str):
            return ordering.resolve(order, self.graph)
        with self._lock:
            cached = self._ranks.get(order)
            if cached is None:
                cached = ordering.resolve(order, self.graph)
                self._ranks[order] = cached
            else:
                self.stats["cache_hits"] += 1
            return cached

    def degeneracy_order(self) -> np.ndarray:
        """The degeneracy (smallest-last) rank array."""
        return self.rank("degeneracy")

    def oriented(self, order: object = "degeneracy") -> OrientedGraph:
        """DAG orientation under ``order`` (cached for named orderings).

        Rank arrays and callables are oriented on the fly without
        caching (they have no stable cache key).
        """
        if not isinstance(order, str):
            return OrientedGraph(self.graph, self.rank(order))
        with self._lock:
            cached = self._oriented.get(order)
            if cached is None:
                cached = OrientedGraph(self.graph, self.rank(order))
                self._oriented[order] = cached
                self.stats["orientations"] += 1
            else:
                self.stats["cache_hits"] += 1
            return cached

    def score_oriented(self, k: int, backend: str = "auto") -> OrientedGraph:
        """The ascending-score DAG orientation for ``k`` (cached per k).

        Algorithm 3's FindMin phase walks the graph oriented by node
        score (Definition 5), an orientation that depends on ``k`` but
        not on the solver options — so repeated ``l``/``lp`` solves and
        tasks over one session share it instead of re-orienting the
        graph per call (on large graphs the orientation build dominates
        a warm solve's startup, which also bounds how long a resumable
        task blocks before its first preemptible step). ``backend``
        only selects the engine used if the ``k`` scores are a cache
        miss.
        """
        with self._lock:
            cached = self._score_oriented.get(k)
            if cached is None:
                rank = ordering.by_score(self.graph, self.scores(k, backend=backend))
                cached = OrientedGraph(self.graph, rank)
                self._score_oriented[k] = cached
                self.stats["orientations"] += 1
            else:
                self.stats["cache_hits"] += 1
            return cached

    def oriented_csr(self, order: object = "degeneracy") -> "OrientedCSR":
        """Oriented-CSR arrays for ``order`` (cached with the DAG).

        The :class:`~repro.graph.dag.OrientedCSR` twin is built lazily
        on the cached :class:`~repro.graph.dag.OrientedGraph` and shared
        by every CSR-backend pass under the same orientation.
        """
        with self._lock:
            dag = self.oriented(order)
            if dag.has_csr:
                self.stats["cache_hits"] += 1
            else:
                self.stats["csr_builds"] += 1
            return dag.csr()

    # -- per-k clique substrates ---------------------------------------
    def scores(self, k: int, backend: str = "auto") -> np.ndarray:
        """Node scores ``s_n`` for ``k`` (Definition 5), cached per k.

        When the k-clique listing is already cached the scores are
        derived from it by accumulation — no second enumeration.
        ``backend`` selects the enumeration engine for a cache miss
        (``"auto" | "sets" | "csr"``); the scores are identical either
        way, so the cache is backend-agnostic.
        """
        with self._lock:
            cached = self._scores.get(k)
            if cached is not None:
                self.stats["cache_hits"] += 1
                return cached
            stored = self._cliques.get(k)
            if stored is not None:
                scores = np.zeros(self.graph.n, dtype=np.int64)
                for clique in stored:
                    for u in clique:
                        scores[u] += 1
            else:
                dag = self._oriented_for(k, backend)
                scores = counting.node_scores(self.graph, k, dag=dag, backend=backend)
                self.stats["score_passes"] += 1
            self._scores[k] = scores
            return scores

    def _oriented_for(self, k: int, backend: str) -> OrientedGraph:
        """Cached degeneracy DAG, pre-building its CSR twin when the
        resolved backend will need it (keeps ``csr_builds`` accounting
        accurate regardless of which accessor triggers the build)."""
        if k >= 3 and csr_kernels.resolve_backend(backend, self.graph.m) == "csr":
            self.oriented_csr()
        return self.oriented()

    def cliques(
        self, k: int, max_cliques: int | None = None, backend: str = "auto"
    ) -> list[tuple[int, ...]]:
        """All k-cliques as canonical sorted tuples, cached per k.

        ``max_cliques`` keeps the paper's OOM semantics: the enumeration
        aborts with :class:`OutOfMemoryError` as soon as the budget is
        exceeded (nothing is cached on failure), and a cached listing
        larger than the budget raises the same error. The cached list is
        sorted lexicographically, so its content *and order* are
        independent of the enumeration ``backend`` that filled the
        cache.
        """
        with self._lock:
            stored = self._cliques.get(k)
            if stored is not None:
                self.stats["cache_hits"] += 1
                self._check_clique_budget(len(stored), k, max_cliques)
                return stored
            stored = []
            dag = self._oriented_for(k, backend)
            for clique in listing.iter_cliques_oriented(dag, k, backend=backend):
                if max_cliques is not None and len(stored) >= max_cliques:
                    raise OutOfMemoryError(
                        f"clique listing exceeded its budget of {max_cliques} (k={k})"
                    )
                stored.append(tuple(sorted(clique)))
            stored.sort()
            self.stats["clique_listings"] += 1
            self._cliques[k] = stored
            self._counts[k] = len(stored)
            return stored

    @staticmethod
    def _check_clique_budget(count: int, k: int, max_cliques: int | None) -> None:
        if max_cliques is not None and count > max_cliques:
            raise OutOfMemoryError(
                f"clique listing exceeded its budget of {max_cliques} (k={k}): "
                f"{count} cliques"
            )

    def clique_count(self, k: int, backend: str = "auto") -> int:
        """Number of k-cliques, cached; counts without storing if unknown."""
        with self._lock:
            cached = self._counts.get(k)
            if cached is not None:
                self.stats["cache_hits"] += 1
                return cached
            if k >= 3 and csr_kernels.resolve_backend(backend, self.graph.m) == "csr":
                count = csr_kernels.count_cliques_csr(self.oriented_csr(), k)
            else:
                count = listing.count_cliques(
                    self.graph, k, order=self.rank("degeneracy"), backend="sets"
                )
            self.stats["count_passes"] += 1
            self._counts[k] = count
            return count

    def cached_ks(self) -> tuple[int, ...]:
        """The k values with at least one cached per-k substrate."""
        with self._lock:
            return tuple(sorted(set(self._scores) | set(self._cliques)))

    def cache_info(self) -> dict:
        """A snapshot of cache contents and work counters."""
        with self._lock:
            return {
                "ks_with_scores": tuple(sorted(self._scores)),
                "ks_with_cliques": tuple(sorted(self._cliques)),
                "orientations": tuple(sorted(self._oriented)),
                "csr_orientations": tuple(
                    sorted(name for name, dag in self._oriented.items() if dag.has_csr)
                ),
                "core_numbers": self._core is not None,
                **self.stats,
            }

    def estimated_bytes(self, blocking: bool = True) -> int:
        """Rough resident size of the graph plus every cached substrate.

        The estimate is intentionally cheap (no ``sys.getsizeof`` walks):
        numpy arrays report ``nbytes`` exactly, while Python-object
        substrates (adjacency sets, clique tuples) use fixed per-entry
        costs calibrated to CPython 3.11. The serving layer's
        :class:`~repro.serve.pool.SessionPool` uses this for its byte
        budget, so what matters is that the estimate is monotone in the
        real footprint and stable across processes, not byte-exact.

        With ``blocking=False``, a cache busy computing a substrate (the
        lock is held for the whole pass) is not waited for: the last
        measured size is returned instead — or the graph-only baseline
        if the session was never measured. Latency-sensitive callers
        (pool eviction surveys, the ``stats`` endpoint) use this so one
        long enumeration never stalls them.
        """
        graph = self.graph
        # Adjacency sets: ~60 bytes per directed entry, two per edge.
        total = graph.n * 64 + graph.m * 2 * 60
        if not self._lock.acquire(blocking=blocking):
            return self._last_estimate if self._last_estimate else total
        try:
            if graph._csr_cache is not None:  # noqa: SLF001 - sizing peek
                csr = graph._csr_cache
                total += int(csr.indptr.nbytes + csr.cols.nbytes)
            if self._core is not None:
                total += int(self._core.nbytes)
            for rank in self._ranks.values():
                total += int(rank.nbytes)
            # Order-independent accumulation into a size total.
            for dag in (*self._oriented.values(), *self._score_oriented.values()):  # repro-lint: ignore=iterorder
                total += graph.n * 64 + graph.m * 60 + int(dag.rank.nbytes)
                if dag.has_csr:
                    csr = dag.csr()
                    total += int(csr.indptr.nbytes + csr.cols.nbytes)
            for scores in self._scores.values():
                total += int(scores.nbytes)
            for k, cliques in self._cliques.items():
                total += len(cliques) * (56 + 28 * max(k, 1))
            self._last_estimate = total
        finally:
            self._lock.release()
        return total


@dataclass(frozen=True)
class SolveRequest:
    """One entry of a :meth:`Session.solve_many` batch."""

    k: int
    method: str = "lp"
    options: dict = field(default_factory=dict)


def _coerce_request(item: object) -> SolveRequest:
    """Accept SolveRequest | int k | (k,) | (k, method) | (k, method, opts) | dict."""
    if isinstance(item, SolveRequest):
        return item
    if isinstance(item, dict):
        return SolveRequest(**item)
    if isinstance(item, tuple):
        if not 1 <= len(item) <= 3:
            raise InvalidParameterError(
                f"request tuple must be (k[, method[, options]]), got {item!r}"
            )
        k = item[0]
        method = item[1] if len(item) > 1 else "lp"
        options = item[2] if len(item) > 2 else {}
        return SolveRequest(k, method, dict(options))
    try:
        return SolveRequest(item.__index__())
    except AttributeError:
        raise InvalidParameterError(
            f"cannot interpret {item!r} as a solve request; pass a k, a "
            "(k, method) tuple, a dict, or a SolveRequest"
        ) from None


class Session:
    """A solver session bound to one graph, reusing preprocessing.

    Parameters
    ----------
    graph:
        The undirected input graph (use ``DynamicGraph.snapshot()`` for
        dynamic graphs; a fresh session is needed after updates because
        cached substrates describe one immutable snapshot).
    registry:
        Method registry to dispatch through (default: the package
        :data:`~repro.core.registry.REGISTRY`).
    default_method:
        Tag used when :meth:`solve` is called without ``method``.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        registry: SolverRegistry = REGISTRY,
        default_method: str = "lp",
    ) -> None:
        if not isinstance(graph, Graph):
            raise InvalidParameterError(
                f"graph must be a repro Graph, got {type(graph).__name__}; "
                "call .snapshot() on DynamicGraph first"
            )
        self.graph = graph
        self.registry = registry
        self.default_method = registry.get(default_method).tag
        self.prep = Preprocessing(graph)
        self._fingerprint: str | None = None
        # Guards the fingerprint memo; the session pool fingerprints
        # sessions from multiple worker threads.
        self._lock = make_lock("Session._lock")

    # -- solving -------------------------------------------------------
    @staticmethod
    def _check_k(k: object) -> int:
        try:
            k = int(k.__index__())
        except AttributeError:
            raise InvalidParameterError(
                f"k must be an integer >= 2, got {k!r}"
            ) from None
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        return k

    def solve(
        self, k: int, method: str | None = None, **options: object
    ) -> CliqueSetResult:
        """Find a (near-)maximum disjoint k-clique set, reusing caches.

        ``method`` is a registry tag (default: the session's
        ``default_method``); ``options`` are validated against that
        method's typed options class — unknown names raise
        :class:`InvalidParameterError` listing the valid ones.
        """
        k = self._check_k(k)
        m = self.registry.get(method if method is not None else self.default_method)
        opts = m.parse_options(options)
        return m.run(self.prep, k, opts)

    def task(
        self,
        k: int,
        method: str | None = None,
        *,
        warm_start: Iterable[Iterable[int]] | None = None,
        **options: object,
    ) -> "SolveTask":
        """Open a resumable :class:`~repro.core.task.SolveTask`.

        The task wraps the method's step engine over this session's
        shared preprocessing: drive it with ``step()``/``run()``,
        observe ``best()``/``bound()`` at any boundary, ``pause()`` /
        ``resume()`` it, and ``checkpoint()`` it across processes.
        Driving a task to completion yields the same solution and stats
        as :meth:`solve` with the same arguments.

        Parameters
        ----------
        k / method / options:
            As for :meth:`solve`; the method must be resumable
            (``Method.resumable`` — ``hg``/``l``/``lp``/``opt-bb``).
            ``time_budget`` is rejected here: the caller controls time
            by how it drives ``step()``.
        warm_start:
            Optional previous solution (a
            :class:`~repro.core.result.CliqueSetResult` or iterable of
            cliques) to seed the engine with; cliques no longer valid in
            this session's graph are silently skipped. Greedy engines
            keep the seed in the solution; the exact B&B uses it as its
            starting incumbent.
        """
        from repro.core.task import SolveTask, normalize_warm_start

        k = self._check_k(k)
        m = self.registry.get(method if method is not None else self.default_method)
        if not m.resumable:
            resumable = tuple(t.tag for t in self.registry if t.resumable)
            raise InvalidParameterError(
                f"method {m.tag!r} is not resumable; resumable methods: "
                f"{resumable}"
            )
        if options.get("time_budget") is not None:
            raise InvalidParameterError(
                "tasks are driven by step()/run(); drop time_budget and "
                "bound the work from the caller instead"
            )
        seed = normalize_warm_start(warm_start)
        if seed is not None and not m.supports_warm_start:
            raise InvalidParameterError(
                f"method {m.tag!r} does not support warm_start"
            )
        opts = m.parse_options(options)
        engine = m.engine(self.prep, k, opts, warm_start=seed)
        return SolveTask(self, m, k, opts, engine)

    def restore_task(self, checkpoint: Mapping) -> "SolveTask":
        """Revive a :meth:`~repro.core.task.SolveTask.checkpoint` here.

        The checkpoint must come from a session over an equal graph
        (matching content fingerprint); continuing the restored task
        produces the same final solution and stats as the uninterrupted
        run. Returns the restored :class:`~repro.core.task.SolveTask`.
        """
        from repro.core.task import SolveTask

        return SolveTask.restore(self, checkpoint)

    def solve_many(
        self,
        requests: Iterable,
        *,
        deadline: float | None = None,
        on_progress: Callable[[int, int, SolveRequest, CliqueSetResult], None] | None = None,
    ) -> list[CliqueSetResult]:
        """Solve a batch of requests against the shared caches.

        Parameters
        ----------
        requests:
            Iterable of :class:`SolveRequest`, plain ``k`` ints,
            ``(k, method[, options])`` tuples, or dicts.
        deadline:
            Wall-clock budget in seconds for the whole batch. When the
            elapsed time reaches it before a request starts,
            :class:`OutOfTimeError` is raised naming how many solves
            completed (use ``on_progress`` to keep partial results).
            The remaining budget is also forwarded as ``time_budget``
            to methods that support it (per their registry metadata),
            so a single long exact solve is interrupted cooperatively
            rather than overrunning the deadline; an explicit
            ``time_budget`` in a request's options takes precedence.
        on_progress:
            ``hook(done, total, request, result)`` called after each
            completed solve.
        """
        reqs = [_coerce_request(item) for item in requests]
        start = time.monotonic()
        results: list[CliqueSetResult] = []
        for index, req in enumerate(reqs):
            options = dict(req.options)
            if deadline is not None:
                remaining = deadline - (time.monotonic() - start)
                if remaining <= 0:
                    raise OutOfTimeError(
                        f"solve_many exceeded its {deadline}s deadline after "
                        f"{index} of {len(reqs)} solves"
                    )
                method = self.registry.get(
                    req.method if req.method is not None else self.default_method
                )
                if method.supports_time_budget and "time_budget" not in options:
                    options["time_budget"] = remaining
            result = self.solve(req.k, req.method, **options)
            results.append(result)
            if on_progress is not None:
                on_progress(index + 1, len(reqs), req, result)
        return results

    # -- cache management ----------------------------------------------
    def warm(
        self, ks: Sequence[int], *, cliques: bool = False, backend: str = "auto"
    ) -> "Session":
        """Precompute per-k substrates (scores; listings when asked).

        Useful before serving latency-sensitive queries or before timing
        solves whose preprocessing should not be on the clock.
        ``backend`` selects the enumeration engine used to fill cold
        caches (``"auto" | "sets" | "csr"``); cached values are
        backend-independent. With the CSR backend the oriented-CSR
        substrate is built (and cached) as a side effect, so later
        CSR-backend solves skip that step too.
        """
        csr_kernels.resolve_backend(backend, self.graph.m)  # validate early
        for k in ks:
            k = self._check_k(k)
            if cliques:
                self.prep.cliques(k, backend=backend)
            self.prep.scores(k, backend=backend)
        return self

    def dynamic(
        self,
        k: int,
        method: str | None = None,
        *,
        warm_start: Iterable[Iterable[int]] | None = None,
        **options: object,
    ) -> "DynamicDisjointCliques":
        """Construct a dynamic maintainer seeded from this session.

        The initial static solve runs through :meth:`solve`, so it
        reuses every cached substrate (scores, listings, orientations)
        instead of re-deriving them the way a bare
        :class:`~repro.dynamic.maintainer.DynamicDisjointCliques`
        constructor would. The maintainer owns a private
        :class:`~repro.graph.dynamic.DynamicGraph` copy and evolves
        independently; the session (and its caches) keep describing the
        original immutable snapshot.

        ``warm_start`` warm-restarts the initial solve from a previous
        (e.g. pre-update) solution: the solve runs as a
        :meth:`task` seeded with the still-valid cliques, so after a
        burst of graph updates a new maintainer starts from the old
        answer instead of from scratch. Requires a method that supports
        warm starts (``hg``/``l``/``lp``/``opt-bb``).

        Returns
        -------
        repro.dynamic.maintainer.DynamicDisjointCliques
        """
        from repro.dynamic.maintainer import DynamicDisjointCliques

        k = self._check_k(k)
        if warm_start is not None:
            result = self.task(k, method, warm_start=warm_start, **options).run()
        else:
            result = self.solve(k, method, **options)
        # The solve just came from this session's own registry method;
        # re-validating it (free-subgraph maximality enumeration) would
        # duplicate work the caller is here to avoid.
        return DynamicDisjointCliques(
            self.graph, k, initial=result, validate_initial=False
        )

    def method(self, tag: str) -> Method:
        """Look up a :class:`Method` (metadata) from this session's registry."""
        return self.registry.get(tag)

    def cache_info(self) -> dict:
        """Snapshot of the preprocessing cache (see :meth:`Preprocessing.cache_info`)."""
        return self.prep.cache_info()

    def fingerprint(self) -> str:
        """Content hash of the bound graph's edge set (cached).

        Two sessions over equal graphs — same node count, same edge set,
        regardless of construction order — share the fingerprint, which
        is how :class:`repro.serve.pool.SessionPool` detects that a
        request can reuse an already-warm session.
        """
        if self._fingerprint is None:
            from repro.graph.fingerprint import graph_fingerprint

            with self._lock:
                if self._fingerprint is None:
                    self._fingerprint = graph_fingerprint(self.graph)
        return self._fingerprint

    def estimated_bytes(self, blocking: bool = True) -> int:
        """Rough resident size (see :meth:`Preprocessing.estimated_bytes`)."""
        return self.prep.estimated_bytes(blocking=blocking)

    def __repr__(self) -> str:
        return (
            f"Session(n={self.graph.n}, m={self.graph.m}, "
            f"cached_ks={self.prep.cached_ks()})"
        )
