"""Algorithm 2 — clique-score ordering over all stored cliques (``GC``).

Lists and *stores* every k-clique, scores each by the sum of its nodes'
k-clique counts (Definition 6), then scans cliques in ascending
``(score, node-tuple)`` order adding each clique that is still disjoint
from the solution. Near-optimal in practice because low-score cliques
have few clique-graph neighbours (Theorem 2), echoing min-degree greedy
MIS — but memory grows with the clique count, which is the deficiency
Algorithm 3 removes.

``max_cliques`` emulates the paper's OOM outcome: exceeding it raises
:class:`repro.errors.OutOfMemoryError`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError, OutOfMemoryError
from repro.graph.graph import Graph
from repro.graph.ordering import OrderSpec
from repro.cliques.counting import node_scores
from repro.cliques.listing import iter_cliques
from repro.core.result import CliqueSetResult
from repro.core.scores import clique_key


def store_all_cliques(
    graph: Graph,
    k: int,
    order: OrderSpec = "degeneracy",
    max_cliques: int | None = None,
    scores: np.ndarray | None = None,
    cliques: Sequence[tuple[int, ...]] | None = None,
    backend: str = "auto",
) -> CliqueSetResult:
    """Compute a disjoint k-clique set with Algorithm 2.

    Parameters
    ----------
    graph:
        Input undirected graph.
    k:
        Clique size, ``>= 2``.
    order:
        DAG orientation used for listing (affects speed, not the result:
        scores and the clique key are orientation-independent).
    max_cliques:
        Memory-budget cap on the number of stored cliques; ``None`` means
        unbounded.
    scores:
        Precomputed node scores for ``k`` (skips the counting pass).
    cliques:
        Precomputed k-clique tuples (skips the enumeration); the budget
        still applies. Both typically come from a session cache. The
        tuples are used as-is (member order is irrelevant downstream),
        so the cached list is never copied element-wise.
    backend:
        ``"auto" | "sets" | "csr"`` — enumeration backend for the
        listing and score passes (see
        :mod:`repro.cliques.csr_kernels`). The solution is
        backend-independent because stored cliques are re-sorted by the
        clique key before the greedy scan.

    Returns
    -------
    CliqueSetResult
        The greedy-by-score solution; deterministic for a given graph.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if scores is None:
        scores = node_scores(graph, k, order, backend=backend)

    stored: list[tuple[int, ...]]
    if cliques is None:
        stored = []
        for clique in iter_cliques(graph, k, order, backend=backend):
            if max_cliques is not None and len(stored) >= max_cliques:
                raise OutOfMemoryError(
                    f"Algorithm 2 exceeded its clique budget of {max_cliques} (k={k})"
                )
            stored.append(tuple(sorted(clique)))
    else:
        if max_cliques is not None and len(cliques) > max_cliques:
            raise OutOfMemoryError(
                f"Algorithm 2 exceeded its clique budget of {max_cliques} (k={k})"
            )
        stored = list(cliques)
    stored.sort(key=lambda c: clique_key(c, scores))

    used = [False] * graph.n
    solution: list[frozenset[int]] = []
    for clique in stored:
        if any(used[u] for u in clique):
            continue
        solution.append(frozenset(clique))
        for u in clique:
            used[u] = True
    stats = {"cliques_stored": float(len(stored)), "cliques_taken": float(len(solution))}
    return CliqueSetResult(solution, k=k, method="gc", stats=stats)
