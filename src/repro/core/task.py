"""Anytime solver protocol: resumable, checkpointable solve tasks.

A :class:`SolveTask` (create one with
:meth:`repro.core.session.Session.task`) wraps a registered method's
*resumable engine* — :class:`repro.core.basic.BasicEngine`,
:class:`repro.core.lightweight.LightweightEngine` or
:class:`repro.core.exact_bb.ExactBBEngine` — and exposes the execution
model the serving roadmap needs:

* :meth:`SolveTask.step` runs a bounded amount of work (work units are
  FindOne/FindMin calls for the greedy methods, branch expansions for
  the exact B&B) and returns a :class:`TaskSnapshot`;
* :meth:`SolveTask.best` is *always* a valid disjoint k-clique set
  (Section V invariants hold at every step boundary) and
  :meth:`SolveTask.bound` an upper bound on what the run can still
  reach — together they make any interruption point a usable answer;
* :meth:`SolveTask.pause` / :meth:`SolveTask.resume` cooperatively
  suspend a task (another thread's ``pause()`` takes effect at the next
  work-unit boundary of a running ``step``);
* :meth:`SolveTask.checkpoint` serialises the run to a JSON-safe dict
  that :meth:`SolveTask.restore` (or
  :meth:`~repro.core.session.Session.restore_task`) revives in another
  process bound to an equal graph — the continued run finishes with the
  same solution and stats as an uninterrupted one;
* :meth:`SolveTask.on_progress` subscribes to improvement events
  (fired whenever ``|S|`` or the bound changed at a step boundary),
  which the serving layer streams to clients as ``progress`` messages.

Driving a task to completion (:meth:`SolveTask.run`) produces solutions
and stats bit-identical to the blocking ``Session.solve`` path — the
blocking solvers are themselves thin drive-to-completion wrappers over
the same engines.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol

from repro.errors import InvalidParameterError
from repro.jsonsafe import json_safe
from repro.core.result import CliqueSetResult

if TYPE_CHECKING:  # deferred at runtime: session imports this module
    from repro.core.registry import Method, SolveOptions
    from repro.core.session import Session


class StepEngine(Protocol):
    """The engine interface a resumable method factory must produce.

    One ``tick()`` performs one bounded work unit; ``state_dict()`` /
    ``load_state()`` round-trip the engine through a JSON-safe mapping
    (see :meth:`SolveTask.checkpoint`).
    """

    @property
    def finished(self) -> bool:
        """Whether the run is complete (``tick`` must not be called)."""
        ...

    @property
    def size(self) -> int:
        """Current ``|S|`` of the best-so-far solution."""
        ...

    def tick(self) -> None:
        """Perform one bounded work unit."""
        ...

    def bound(self) -> int:
        """Upper bound on the final ``|S|`` this run can reach."""
        ...

    def snapshot_result(self) -> CliqueSetResult:
        """Best-so-far solution (valid at every work-unit boundary)."""
        ...

    def result(self) -> CliqueSetResult:
        """Final solution; only meaningful once :attr:`finished`."""
        ...

    def state_dict(self) -> dict:
        """JSON-safe serialisation of the engine's run state."""
        ...

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` payload onto a fresh engine."""
        ...


#: Checkpoint schema version (bumped on incompatible layout changes).
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class TaskSnapshot:
    """Progress summary returned by :meth:`SolveTask.step`.

    Attributes
    ----------
    state:
        Task state after the step: ``"ready" | "paused" | "done"``.
    work:
        Total work units executed since the task was created (or since
        the checkpoint it was restored from began counting).
    size:
        Current ``|S|`` of :meth:`SolveTask.best`.
    bound:
        Current upper bound (see :meth:`SolveTask.bound`).
    done:
        Whether the task has run to completion.
    """

    state: str
    work: int
    size: int
    bound: int
    done: bool

    def as_dict(self) -> dict:
        """JSON-safe dict form (what the process lane streams back).

        Plain builtins only, so snapshots survive pickling across the
        worker boundary and ``json.dumps`` in the serving layer without
        further sanitising.
        """
        return {
            "state": self.state,
            "work": int(self.work),
            "size": int(self.size),
            "bound": int(self.bound),
            "done": bool(self.done),
        }


def normalize_warm_start(
    warm_start: "CliqueSetResult | Iterable[Iterable[int]] | None",
) -> list[frozenset[int]] | None:
    """Coerce a warm-start spec into a list of candidate cliques.

    Accepts a :class:`~repro.core.result.CliqueSetResult` or any
    iterable of node collections; returns ``None`` for ``None``.
    Engines filter the candidates themselves (membership in the bound
    graph, disjointness), so stale cliques are skipped, not errors.
    """
    if warm_start is None:
        return None
    if isinstance(warm_start, CliqueSetResult):
        cliques: Iterable = warm_start.cliques
    else:
        cliques = warm_start
    return [frozenset(int(u) for u in clique) for clique in cliques]


class SolveTask:
    """A resumable solve: step, observe, pause, checkpoint, finish.

    Construct via :meth:`repro.core.session.Session.task` (which
    validates the method is resumable and builds the engine from the
    session's shared preprocessing). The task is single-consumer: one
    driver calls :meth:`step`; ``pause()`` may be called from any
    thread and takes effect at the next work-unit boundary.
    """

    def __init__(
        self,
        session: "Session",
        method: "Method",
        k: int,
        options: "SolveOptions",
        engine: StepEngine,
    ) -> None:
        self.session = session
        self.method = method
        self.k = k
        self.options = options
        self.engine = engine
        self.work = 0
        self._state = "done" if engine.finished else "ready"
        self._pause_requested = False
        self._callbacks: list[Callable[[TaskSnapshot], None]] = []
        self._last_reported: tuple[int, int] | None = None

    # -- observation ---------------------------------------------------
    @property
    def state(self) -> str:
        """``"ready" | "running" | "paused" | "done"``."""
        return self._state

    @property
    def done(self) -> bool:
        """Whether the underlying engine has run to completion."""
        return self.engine.finished

    def best(self) -> CliqueSetResult:
        """Best-so-far solution — valid at every step boundary.

        Always a valid disjoint k-clique set of the session's graph
        (the engines only admit verified cliques and remove their nodes
        atomically within a work unit); maximality and the paper's
        quality guarantees attach once :attr:`done` is true.
        """
        if self.engine.finished:
            return self.engine.result()
        return self.engine.snapshot_result()

    def bound(self) -> int:
        """Upper bound on the final ``|S|`` this run can reach.

        For the greedy engines this bounds what *this algorithm run*
        will return (so ``best().size / bound()`` is an anytime progress
        ratio); for the exact B&B it is a certified bound on the true
        optimum that equals ``|S|`` at completion.
        """
        return self.engine.bound()

    def snapshot(self) -> TaskSnapshot:
        """Current :class:`TaskSnapshot` without doing any work."""
        return TaskSnapshot(
            state=self._state,
            work=self.work,
            size=self.engine.size,
            bound=self.engine.bound(),
            done=self.engine.finished,
        )

    def result(self) -> CliqueSetResult:
        """Final result; raises unless the task has completed."""
        if not self.engine.finished:
            raise InvalidParameterError(
                "task has not completed; call run(), or step() until done "
                "(best() returns the partial solution)"
            )
        return self.engine.result()

    # -- progress events -----------------------------------------------
    def on_progress(self, fn: Callable[[TaskSnapshot], None]) -> None:
        """Call ``fn(snapshot)`` whenever ``|S|`` or the bound improves.

        Fired at step boundaries (after the work of a :meth:`step` call,
        at most once per call) and once more on completion. Callbacks
        run on the stepping thread.
        """
        self._callbacks.append(fn)

    def _report(self, snapshot: TaskSnapshot) -> None:
        key = (snapshot.size, snapshot.bound)
        if self._callbacks and (key != self._last_reported or snapshot.done):
            self._last_reported = key
            for fn in self._callbacks:
                fn(snapshot)
        else:
            self._last_reported = key

    # -- driving -------------------------------------------------------
    def step(
        self, max_work: int | None = None, max_seconds: float | None = None
    ) -> TaskSnapshot:
        """Run up to ``max_work`` units / ``max_seconds`` seconds.

        With both limits ``None`` the task runs until completion or
        until :meth:`pause` is observed. A paused task reports its
        snapshot without working (call :meth:`resume` first); a
        completed task is a no-op. Returns the post-step snapshot.
        """
        if max_work is not None and max_work < 1:
            raise InvalidParameterError(
                f"max_work must be a positive int, got {max_work!r}"
            )
        if self._state in ("paused", "done"):
            return self.snapshot()
        if self._state == "running":
            raise InvalidParameterError(
                "task is already running a step (tasks are single-consumer)"
            )
        self._state = "running"
        engine = self.engine
        started = time.monotonic() if max_seconds is not None else 0.0
        did = 0
        try:
            while not engine.finished:
                if self._pause_requested:
                    break
                engine.tick()
                self.work += 1
                did += 1
                if max_work is not None and did >= max_work:
                    break
                # Per-tick clock read: a tick can be milliseconds on big
                # graphs, so coarser checking would overshoot the slice
                # (and with it the scheduler's preemption latency).
                if (
                    max_seconds is not None
                    and time.monotonic() - started >= max_seconds
                ):
                    break
        finally:
            if engine.finished:
                self._state = "done"
            elif self._pause_requested:
                self._state = "paused"
            else:
                self._state = "ready"
        snapshot = self.snapshot()
        self._report(snapshot)
        return snapshot

    def run(self) -> CliqueSetResult:
        """Drive the task to completion and return the final result.

        Produces the same solution and stats as the blocking
        ``Session.solve`` path for this method/options (both drive the
        same engine). Raises if the task is paused mid-way by another
        thread — call :meth:`resume` and ``run()`` again to continue.
        """
        while not self.engine.finished:
            snapshot = self.step()
            if snapshot.state == "paused":
                raise InvalidParameterError(
                    "task was paused while run() was driving it; resume() "
                    "to continue"
                )
        return self.engine.result()

    def pause(self) -> None:
        """Request suspension at the next work-unit boundary."""
        if self._state != "done":
            self._pause_requested = True
            if self._state == "ready":
                self._state = "paused"

    def resume(self) -> None:
        """Clear a pause request so stepping can continue."""
        self._pause_requested = False
        if self._state == "paused":
            self._state = "ready"

    # -- checkpoint / restore ------------------------------------------
    def checkpoint(self) -> dict:
        """Serialise the task to a JSON-safe dict.

        The checkpoint carries the method tag, ``k``, the validated
        options, the work counter, the session's graph fingerprint and
        the engine state — but *not* the graph or its substrates, which
        the restoring session recomputes deterministically. Cannot be
        taken while a ``step`` is executing.
        """
        if self._state == "running":
            raise InvalidParameterError(
                "cannot checkpoint while a step is running; pause() first"
            )
        return {
            "version": CHECKPOINT_VERSION,
            "method": self.method.tag,
            "k": self.k,
            # Options dataclasses have object-typed fields (e.g. an
            # array-valued `order`); sanitise before they hit json.dumps.
            "options": json_safe(asdict(self.options)),
            "work": self.work,
            "fingerprint": self.session.fingerprint(),
            "engine": json_safe(self.engine.state_dict()),
        }

    @classmethod
    def restore(cls, session: "Session", checkpoint: Mapping) -> "SolveTask":
        """Revive a :meth:`checkpoint` onto ``session`` (same graph).

        The session must be bound to a graph with the same content
        fingerprint as the checkpointing one; substrates are rebuilt
        from the session's caches and the engine state is loaded on
        top, so continuing the task finishes with the same solution and
        stats as the uninterrupted run.
        """
        if not isinstance(checkpoint, Mapping):
            raise InvalidParameterError(
                f"checkpoint must be a mapping, got {type(checkpoint).__name__}"
            )
        version = checkpoint.get("version")
        if version != CHECKPOINT_VERSION:
            raise InvalidParameterError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        fingerprint = checkpoint.get("fingerprint")
        if fingerprint is not None and fingerprint != session.fingerprint():
            raise InvalidParameterError(
                "checkpoint was taken on a different graph (fingerprint "
                "mismatch); restore onto a session over an equal graph"
            )
        task = session.task(
            int(checkpoint["k"]),
            checkpoint["method"],
            **dict(checkpoint.get("options") or {}),
        )
        task.engine.load_state(checkpoint["engine"])
        task.work = int(checkpoint.get("work", 0))
        task._state = "done" if task.engine.finished else "ready"
        return task

    def __repr__(self) -> str:
        return (
            f"SolveTask(method={self.method.tag!r}, k={self.k}, "
            f"state={self._state!r}, work={self.work}, "
            f"size={self.best().size})"
        )
