"""Dynamic maintenance: candidate index, swaps, batching, maintainer."""

from repro.dynamic.batch import UpdateBatch
from repro.dynamic.index import CandidateIndex, RefreshReport
from repro.dynamic.maintainer import DynamicDisjointCliques
from repro.dynamic.swap import select_disjoint, try_swap
from repro.dynamic.workload import (
    deletion_workload,
    insertion_workload,
    iter_batches,
    make_workload,
    mixed_workload,
)

__all__ = [
    "DynamicDisjointCliques",
    "UpdateBatch",
    "CandidateIndex",
    "RefreshReport",
    "try_swap",
    "select_disjoint",
    "deletion_workload",
    "insertion_workload",
    "mixed_workload",
    "make_workload",
    "iter_batches",
]
