"""Batched update planning: coalesce an edge-update stream.

The dynamic maintainer's per-edge handlers (Algorithms 6 and 7) pay a
candidate-index discovery pass and a swap cascade for *every* update.
Under the paper's Section VI-E workloads most of that work is redundant
across neighbouring updates: an ``UpdateBatch`` reduces a stream of
``("insert" | "delete", u, v)`` operations to its **net structural
effect** against the current graph — per edge, the last operation wins,
so duplicate inserts, re-deletions, and self-cancelling
insert-then-delete pairs coalesce away — and the maintainer then repairs
the solution and candidate index once over the union of dirty
neighbourhoods (:meth:`~repro.dynamic.maintainer.DynamicDisjointCliques.apply_batch`)
instead of once per edge.

Planning is purely functional: nothing is mutated, so a batch can be
inspected (or tested) before being applied. Validation is transactional:
a malformed update (unknown op, self-loop, endpoint out of range)
raises before any structural change is made, unlike the per-edge path
which fails mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # imported for annotations only
    from repro.graph.dynamic import DynamicGraph

from repro.errors import GraphError, InvalidParameterError

Edge = tuple[int, int]
Update = tuple[str, int, int]

_OPS = {"insert": True, "delete": False}


def validate_update(op: str, u: int, v: int, n: int) -> tuple[bool, int, int]:
    """Validate one ``(op, u, v)`` update against a graph of ``n`` nodes.

    Returns ``(want_present, u, v)`` with the endpoints coerced to plain
    ints. Raises :class:`~repro.errors.InvalidParameterError` for an
    unknown op and :class:`~repro.errors.GraphError` for a self-loop or
    an endpoint outside ``[0, n)``. Shared by :meth:`UpdateBatch.plan`
    and the serving layer's push-time validation
    (:meth:`repro.serve.feeds.DynamicFeed.push`), so what a feed buffers
    is exactly what planning will accept.
    """
    want = _OPS.get(op)
    if want is None:
        raise InvalidParameterError(f"unknown update op {op!r}")
    u, v = int(u), int(v)
    if u == v:
        raise GraphError(f"self-loop on node {u} is not allowed")
    if not (0 <= u < n and 0 <= v < n):
        raise GraphError(f"edge ({u}, {v}) outside node range [0, {n})")
    return want, u, v


@dataclass(frozen=True)
class UpdateBatch:
    """The net structural effect of an update stream on one graph state.

    Attributes
    ----------
    inserts:
        Edges absent from the planning graph whose final desired state
        is *present*, in first-touched order, as ``(min, max)`` pairs of
        plain ints.
    deletes:
        Edges present in the planning graph whose final desired state is
        *absent*, in first-touched order.
    nops:
        Number of stream operations coalesced away (duplicates,
        operations matching the current state, and self-cancelling
        pairs). ``nops + effective`` equals the stream length.
    """

    inserts: tuple[Edge, ...] = ()
    deletes: tuple[Edge, ...] = ()
    nops: int = 0

    @property
    def effective(self) -> int:
        """Number of structural edge changes the batch will make."""
        return len(self.inserts) + len(self.deletes)

    @property
    def is_noop(self) -> bool:
        """Whether applying the batch leaves the graph unchanged."""
        return not self.inserts and not self.deletes

    def __len__(self) -> int:
        return self.effective + self.nops

    @classmethod
    def plan(cls, updates: Iterable[Update], graph: "DynamicGraph") -> "UpdateBatch":
        """Coalesce ``updates`` against ``graph``'s current edge set.

        Per edge the last operation in stream order determines the
        desired final state; edges whose desired state matches the graph
        contribute nothing. Operations on distinct edges commute, so any
        permutation of such a stream plans to the same batch.

        ``graph`` is anything exposing ``n`` and ``has_edge`` (it is
        only read). Raises :class:`~repro.errors.InvalidParameterError`
        for unknown ops and :class:`~repro.errors.GraphError` for
        self-loops or endpoints outside ``[0, n)`` — before any caller
        mutation, so a rejected batch has no partial effect.
        """
        desired: dict[Edge, bool] = {}
        order: list[Edge] = []
        total = 0
        n = graph.n
        for op, u, v in updates:
            total += 1
            want, u, v = validate_update(op, u, v, n)
            edge = (u, v) if u < v else (v, u)
            if edge not in desired:
                order.append(edge)
            desired[edge] = want
        inserts: list[Edge] = []
        deletes: list[Edge] = []
        for edge in order:
            present = graph.has_edge(*edge)
            if desired[edge] and not present:
                inserts.append(edge)
            elif not desired[edge] and present:
                deletes.append(edge)
        return cls(tuple(inserts), tuple(deletes), total - len(inserts) - len(deletes))
