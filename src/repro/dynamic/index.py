"""Candidate-clique index (Section V-B, Algorithm 5).

A *free* node is one not covered by the solution ``S``. A *candidate*
k-clique mixes at least one free node with at least one non-free node,
and all its non-free nodes belong to the **same** clique of ``S`` (its
*owner*) — the only shape a profitable swap can use. The index maintains
exactly the set of all candidate cliques of the current graph, grouped by
owner, with a per-node inverted index for O(1)-amortised invalidation.

The full-build entry point (:meth:`CandidateIndex.build`) is the paper's
Algorithm 5: for each owner clique ``C``, enumerate k-cliques inside
``C ∪ N_F(C)`` (its nodes plus their free neighbours) and keep all but
``C`` itself. Incremental maintenance goes through
:meth:`refresh_nodes` (status changes) and
:meth:`remove_candidates_with_edge` (structural edge deletions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import SolutionError
from repro.cliques import csr_kernels
from repro.dynamic.local import (
    cliques_through_edge,
    cliques_through_node,
    iter_cliques_within,
)

if TYPE_CHECKING:  # imported for annotations only
    from repro.graph.dynamic import DynamicGraph

Clique = frozenset[int]

#: ``backend="auto"`` hands a dirty region to the CSR frontier engine
#: only when it spans at least this many nodes/edges — below that, the
#: per-node set recursion wins on patch-extraction overhead alone.
AUTO_DIRTY_THRESHOLD = 16


@dataclass
class RefreshReport:
    """Outcome of a :meth:`CandidateIndex.refresh_nodes` pass.

    Attributes
    ----------
    new_by_owner:
        Candidates that entered the index and were not present before the
        pass, grouped by owner id — the paper's trigger for re-queueing
        owners into TrySwap.
    all_free:
        k-cliques discovered whose nodes are *all* free. These are not
        candidates; the maintainer must absorb them into ``S`` to keep it
        maximal.
    removed:
        Candidates dropped by the pass.
    """

    new_by_owner: dict[int, set[Clique]] = field(default_factory=dict)
    all_free: set[Clique] = field(default_factory=set)
    removed: set[Clique] = field(default_factory=set)


class CandidateIndex:
    """Exact candidate-clique index over a dynamic graph.

    Parameters
    ----------
    graph:
        A :class:`repro.graph.dynamic.DynamicGraph` shared with the
        maintainer (the index never mutates it).
    k:
        Clique size.
    """

    def __init__(self, graph: "DynamicGraph", k: int) -> None:
        self.graph = graph
        self.k = k
        self.solution: dict[int, Clique] = {}
        self.owner_of: dict[int, int] = {}
        self.cands_by_owner: dict[int, set[Clique]] = {}
        self.cands_by_node: dict[int, set[Clique]] = {}
        self.owner_of_cand: dict[Clique, int] = {}
        #: Owners whose candidate set changed since the consumer last
        #: cleared this (the batched maintainer's sweep frontier: an
        #: owner with an untouched candidate set cannot have gained a
        #: swap opportunity, so sweeps skip it).
        self.touched_owners: set[int] = set()
        self._next_owner = 0

    # ------------------------------------------------------------------
    # Solution bookkeeping
    # ------------------------------------------------------------------
    def is_free(self, u: int) -> bool:
        """Whether node ``u`` is uncovered by the solution."""
        return u not in self.owner_of

    def add_solution_clique(self, clique: Clique) -> int:
        """Register a clique of ``S``; returns its owner id."""
        clique = frozenset(clique)
        for u in clique:
            if u in self.owner_of:
                raise SolutionError(
                    f"node {u} already belongs to solution clique "
                    f"{sorted(self.solution[self.owner_of[u]])}"
                )
        owner = self._next_owner
        self._next_owner += 1
        self.solution[owner] = clique
        for u in clique:
            self.owner_of[u] = owner
        self.cands_by_owner[owner] = set()
        return owner

    def remove_solution_clique(self, owner: int) -> Clique:
        """Drop an owner from ``S``; its nodes become free.

        The owner's candidate entries are removed; the caller is expected
        to run :meth:`refresh_nodes` on the freed nodes afterwards.
        """
        clique = self.solution.pop(owner)
        for u in clique:
            del self.owner_of[u]
        for cand in list(self.cands_by_owner.pop(owner, ())):
            self._detach(cand)
        # Keep the sweep frontier bounded by live owners: a departed
        # owner can never be swept again (ids are never reused).
        self.touched_owners.discard(owner)
        return clique

    # ------------------------------------------------------------------
    # Candidate bookkeeping
    # ------------------------------------------------------------------
    def classify(self, clique: Clique) -> tuple[str, int | None]:
        """Classify a k-clique: ``("candidate", owner)``, ``("all_free",
        None)`` or ``("invalid", None)``."""
        owners = {self.owner_of[u] for u in clique if u in self.owner_of}
        if not owners:
            return ("all_free", None)
        if len(owners) == 1 and any(u not in self.owner_of for u in clique):
            # Singleton set: pop() is deterministic by the guard above.
            return ("candidate", owners.pop())  # repro-lint: ignore=iterorder
        return ("invalid", None)

    def add_candidate(self, clique: Clique, owner: int) -> bool:
        """Insert a candidate; returns ``False`` if already present."""
        if clique in self.owner_of_cand:
            return False
        self.owner_of_cand[clique] = owner
        self.cands_by_owner.setdefault(owner, set()).add(clique)
        self.touched_owners.add(owner)
        for u in clique:
            self.cands_by_node.setdefault(u, set()).add(clique)
        return True

    def _detach(self, cand: Clique) -> None:
        """Remove a candidate from the node index and the global map."""
        self.owner_of_cand.pop(cand, None)
        for u in cand:
            bucket = self.cands_by_node.get(u)
            if bucket is not None:
                bucket.discard(cand)
                if not bucket:
                    del self.cands_by_node[u]

    def remove_candidate(self, cand: Clique) -> None:
        """Remove a candidate from all structures."""
        owner = self.owner_of_cand.get(cand)
        if owner is not None:
            self.cands_by_owner.get(owner, set()).discard(cand)
            self.touched_owners.add(owner)
        self._detach(cand)

    def candidates_of(self, owner: int) -> set[Clique]:
        """Live view of an owner's candidate set."""
        return self.cands_by_owner.get(owner, set())

    @property
    def num_candidates(self) -> int:
        """Total candidate cliques (the paper's "index size", Table VII)."""
        return len(self.owner_of_cand)

    def remove_candidates_with_edge(self, u: int, v: int) -> set[Clique]:
        """Drop every candidate containing both endpoints (edge deleted)."""
        doomed = self.cands_by_node.get(u, set()) & self.cands_by_node.get(v, set())
        doomed = set(doomed)
        for cand in doomed:
            self.remove_candidate(cand)
        return doomed

    # ------------------------------------------------------------------
    # Construction and refresh
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Algorithm 5: construct all candidates from scratch.

        For each owner ``C``, enumerate the k-cliques of the subgraph
        induced on ``B = C ∪ N_F(C)`` and register every one except ``C``
        itself. Assumes ``S`` is maximal (no all-free clique exists);
        violations raise :class:`SolutionError` because they indicate the
        static solver handed over a non-maximal solution.
        """
        for owner in self.solution:
            report = self.discover_owner_candidates(owner)
            if report.all_free:
                raise SolutionError(
                    "solution is not maximal: free k-clique "
                    f"{sorted(map(sorted, report.all_free))[0]}"
                )

    def discover_owner_candidates(self, owner: int, backend: str = "sets") -> RefreshReport:
        """Register one owner's candidates from its Algorithm-5 patch.

        Enumerates the k-cliques of ``C ∪ N_F(C)`` (the owner's nodes
        plus their *free* neighbours — the only pool that can hold a
        candidate of ``C``) and folds every clique except ``C`` itself
        into a report: newly registered candidates under
        ``new_by_owner[owner]``, and any all-free clique under
        ``all_free`` (which callers treat as a maximality violation or
        as absorption work, depending on context).
        """
        clique = self.solution[owner]
        pool = set(clique)
        for u in clique:
            for v in self.graph.neighbors(u):
                if v not in self.owner_of:
                    pool.add(v)
        report = RefreshReport()
        if backend != "sets":
            volume = sum(len(self.graph.neighbors(u)) for u in pool) // 2
            if csr_kernels.resolve_backend(backend, volume) == "csr":
                for cand in csr_kernels.iter_cliques_within_csr(
                    self.graph, pool, self.k, labels=self.owner_of
                ):
                    if cand != clique:
                        self._classify_into(cand, report)
                return report
        for cand in iter_cliques_within(self.graph, pool, self.k):
            if cand != clique:
                self._classify_into(cand, report)
        return report

    def refresh_nodes(
        self, dirty: Iterable[int], *, backend: str = "sets"
    ) -> RefreshReport:
        """Re-derive all candidates touching ``dirty`` nodes.

        Call after the free status of ``dirty`` changed (solution cliques
        added/removed) or after local structure changed around them. Any
        candidate whose validity could have changed contains a dirty
        node, so removing those and re-discovering cliques through each
        dirty node restores exactness.

        ``backend`` selects the re-discovery engine: ``"sets"`` (default)
        runs the per-node set recursion of
        :func:`repro.dynamic.local.cliques_through_node`; ``"csr"`` builds
        one relabelled CSR patch over ``dirty`` and its neighbourhood and
        enumerates the whole dirty region with the frontier engine
        (:func:`repro.cliques.csr_kernels.iter_cliques_within_csr`);
        ``"auto"`` picks by the patch's adjacency volume. The resulting
        report is identical either way.
        """
        report = RefreshReport()
        doomed: set[Clique] = set()
        for node in dirty:
            doomed |= self.cands_by_node.get(node, set())
        for cand in doomed:
            self.remove_candidate(cand)
        report.removed = doomed

        # Canonical processing order: discovery order differs between
        # the sets and csr engines, and it leaks into the owner queue
        # (dict insertion order) hence into downstream swap
        # trajectories. Sorting makes refresh backend-invariant.
        dirty_set = set(dirty)
        discovered = sorted(self._cliques_through_dirty(dirty_set, backend), key=sorted)
        for clique in discovered:
            kind, owner = self.classify(clique)
            if kind == "candidate":
                if self.add_candidate(clique, owner) and clique not in doomed:
                    report.new_by_owner.setdefault(owner, set()).add(clique)
            elif kind == "all_free":
                report.all_free.add(clique)
        return report

    def _cliques_through_dirty(
        self, dirty: set[int], backend: str
    ) -> Iterator[Clique]:
        """Every *classifiable* k-clique touching a dirty node, once each.

        The ``sets`` engine unions per-node enumerations (dedup via a
        ``seen`` set) and leaves discarding owner-mixing cliques to
        ``classify``. The ``csr`` engine enumerates the patch induced on
        ``dirty ∪ N(dirty)`` in one frontier pass — any clique through a
        dirty node lies inside that node's closed neighbourhood, hence
        inside the patch — restricted to cliques through a dirty node
        (``require``) whose covered members share one owner (``labels``,
        pruned inside the frontier). The engines may therefore yield
        different *invalid* cliques, but classification maps both to the
        same refresh report. ``auto`` resolves on the patch's summed
        adjacency volume (the analogue of the global edge-count
        threshold).
        """
        # ``auto`` only considers the frontier engine once the dirty set
        # is large enough for patch extraction to amortise (the engine's
        # win is batching many neighbourhoods into one pass); a forced
        # ``csr`` always honours the caller.
        if backend == "csr" or (backend == "auto" and len(dirty) >= AUTO_DIRTY_THRESHOLD):
            pool: set[int] = set(dirty)
            for node in dirty:
                pool |= self.graph.neighbors(node)
            volume = sum(len(self.graph.neighbors(u)) for u in pool) // 2
            if csr_kernels.resolve_backend(backend, volume) == "csr":
                yield from csr_kernels.iter_cliques_within_csr(
                    self.graph, pool, self.k, require=dirty, labels=self.owner_of
                )
                return
        seen: set[Clique] = set()
        for node in dirty:
            for clique in cliques_through_node(self.graph, node, self.k):
                if clique not in seen:
                    seen.add(clique)
                    yield clique

    def discover_through_edge(self, u: int, v: int) -> RefreshReport:
        """Classify every k-clique through edge ``(u, v)`` (fresh insert).

        Only cliques containing the new edge can be new, so this is the
        complete discovery step for Algorithm 6.
        """
        report = RefreshReport()
        for clique in cliques_through_edge(self.graph, u, v, self.k):
            self._classify_into(clique, report)
        return report

    def discover_through_edges(
        self, edges: Iterable[tuple[int, int]], *, backend: str = "sets"
    ) -> RefreshReport:
        """Batched :meth:`discover_through_edge` over many fresh edges.

        The ``sets`` engine recurses per edge; the ``csr`` engine builds
        one relabelled patch over the union of the edges' closed common
        neighbourhoods (every clique through edge ``(u, v)`` lies in
        ``{u, v} ∪ (N(u) ∩ N(v))``) and runs a single frontier
        enumeration restricted to cliques touching an endpoint. The
        patch may surface cliques through an endpoint but not through
        any new edge; those are exactly the cliques the index already
        holds (or, when they touch freed nodes, ones a refresh already
        reported), so candidate dedup keeps the merged report identical
        to per-edge discovery up to set union.
        """
        report = RefreshReport()
        edges = list(edges)
        if (
            self.k >= 3
            and len(edges) >= 2
            and (
                backend == "csr"
                or (backend == "auto" and len(edges) >= AUTO_DIRTY_THRESHOLD)
            )
        ):
            patch: set[int] = set()
            touch: set[int] = set()
            for u, v in edges:
                common = self.graph.neighbors(u) & self.graph.neighbors(v)
                if len(common) >= self.k - 2:
                    patch.add(u)
                    patch.add(v)
                    patch |= common
                    touch.add(u)
                    touch.add(v)
            if touch:
                volume = sum(len(self.graph.neighbors(u)) for u in patch) // 2
                if csr_kernels.resolve_backend(backend, volume) == "csr":
                    for clique in sorted(
                        csr_kernels.iter_cliques_within_csr(
                            self.graph, patch, self.k,
                            require=touch, labels=self.owner_of,
                        ),
                        key=sorted,
                    ):
                        self._classify_into(clique, report)
                    return report
        # Canonical order here too: without it the sets fallback would
        # classify in raw edge/enumeration order and diverge from the
        # csr branch's trajectory (same clique set, different owner
        # queue order downstream).
        seen: set[Clique] = set()
        for u, v in edges:
            seen.update(cliques_through_edge(self.graph, u, v, self.k))
        # Distinct cliques have distinct sorted node lists, so the key
        # is tie-free and the sort is a total (hash-independent) order.
        for clique in sorted(seen, key=sorted):  # repro-lint: ignore=iterorder
            self._classify_into(clique, report)
        return report

    def _classify_into(self, clique: Clique, report: RefreshReport) -> None:
        """Classify a discovered clique and fold it into ``report``."""
        kind, owner = self.classify(clique)
        if kind == "candidate":
            if self.add_candidate(clique, owner):
                report.new_by_owner.setdefault(owner, set()).add(clique)
        elif kind == "all_free":
            report.all_free.add(clique)

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Raise :class:`SolutionError` on any internal inconsistency.

        Recomputes the candidate universe from scratch (Algorithm 5
        semantics over the whole graph) and compares. Exponential-ish;
        tests only.
        """
        for owner, clique in self.solution.items():
            if not self.graph.is_clique(clique):
                raise SolutionError(f"solution clique {sorted(clique)} is broken")
            for u in clique:
                if self.owner_of.get(u) != owner:
                    raise SolutionError(f"owner map wrong for node {u}")
        for u, owner in self.owner_of.items():
            if u not in self.solution[owner]:
                raise SolutionError(f"node {u} mapped to wrong owner {owner}")

        expected: dict[Clique, int] = {}
        for owner, clique in self.solution.items():
            free_neighbours = {
                v
                for u in clique
                for v in self.graph.neighbors(u)
                if v not in self.owner_of
            }
            pool = set(clique) | free_neighbours
            for cand in iter_cliques_within(self.graph, pool, self.k):
                if cand == clique:
                    continue
                kind, cand_owner = self.classify(cand)
                if kind == "candidate" and cand_owner == owner:
                    expected[cand] = owner
        if expected.keys() != self.owner_of_cand.keys():
            missing = expected.keys() - self.owner_of_cand.keys()
            extra = self.owner_of_cand.keys() - expected.keys()
            raise SolutionError(
                f"candidate index drift: missing={sorted(map(sorted, missing))} "
                f"extra={sorted(map(sorted, extra))}"
            )
        for cand, owner in expected.items():
            if self.owner_of_cand[cand] != owner:
                raise SolutionError(
                    f"candidate {sorted(cand)} has owner "
                    f"{self.owner_of_cand[cand]}, expected {owner}"
                )
