"""Candidate-clique index (Section V-B, Algorithm 5).

A *free* node is one not covered by the solution ``S``. A *candidate*
k-clique mixes at least one free node with at least one non-free node,
and all its non-free nodes belong to the **same** clique of ``S`` (its
*owner*) — the only shape a profitable swap can use. The index maintains
exactly the set of all candidate cliques of the current graph, grouped by
owner, with a per-node inverted index for O(1)-amortised invalidation.

The full-build entry point (:meth:`CandidateIndex.build`) is the paper's
Algorithm 5: for each owner clique ``C``, enumerate k-cliques inside
``C ∪ N_F(C)`` (its nodes plus their free neighbours) and keep all but
``C`` itself. Incremental maintenance goes through
:meth:`refresh_nodes` (status changes) and
:meth:`remove_candidates_with_edge` (structural edge deletions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SolutionError
from repro.dynamic.local import (
    cliques_through_edge,
    cliques_through_node,
    iter_cliques_within,
)

Clique = frozenset[int]


@dataclass
class RefreshReport:
    """Outcome of a :meth:`CandidateIndex.refresh_nodes` pass.

    Attributes
    ----------
    new_by_owner:
        Candidates that entered the index and were not present before the
        pass, grouped by owner id — the paper's trigger for re-queueing
        owners into TrySwap.
    all_free:
        k-cliques discovered whose nodes are *all* free. These are not
        candidates; the maintainer must absorb them into ``S`` to keep it
        maximal.
    removed:
        Candidates dropped by the pass.
    """

    new_by_owner: dict[int, set[Clique]] = field(default_factory=dict)
    all_free: set[Clique] = field(default_factory=set)
    removed: set[Clique] = field(default_factory=set)


class CandidateIndex:
    """Exact candidate-clique index over a dynamic graph.

    Parameters
    ----------
    graph:
        A :class:`repro.graph.dynamic.DynamicGraph` shared with the
        maintainer (the index never mutates it).
    k:
        Clique size.
    """

    def __init__(self, graph, k: int) -> None:
        self.graph = graph
        self.k = k
        self.solution: dict[int, Clique] = {}
        self.owner_of: dict[int, int] = {}
        self.cands_by_owner: dict[int, set[Clique]] = {}
        self.cands_by_node: dict[int, set[Clique]] = {}
        self.owner_of_cand: dict[Clique, int] = {}
        self._next_owner = 0

    # ------------------------------------------------------------------
    # Solution bookkeeping
    # ------------------------------------------------------------------
    def is_free(self, u: int) -> bool:
        """Whether node ``u`` is uncovered by the solution."""
        return u not in self.owner_of

    def add_solution_clique(self, clique: Clique) -> int:
        """Register a clique of ``S``; returns its owner id."""
        clique = frozenset(clique)
        for u in clique:
            if u in self.owner_of:
                raise SolutionError(
                    f"node {u} already belongs to solution clique "
                    f"{sorted(self.solution[self.owner_of[u]])}"
                )
        owner = self._next_owner
        self._next_owner += 1
        self.solution[owner] = clique
        for u in clique:
            self.owner_of[u] = owner
        self.cands_by_owner[owner] = set()
        return owner

    def remove_solution_clique(self, owner: int) -> Clique:
        """Drop an owner from ``S``; its nodes become free.

        The owner's candidate entries are removed; the caller is expected
        to run :meth:`refresh_nodes` on the freed nodes afterwards.
        """
        clique = self.solution.pop(owner)
        for u in clique:
            del self.owner_of[u]
        for cand in list(self.cands_by_owner.pop(owner, ())):
            self._detach(cand)
        return clique

    # ------------------------------------------------------------------
    # Candidate bookkeeping
    # ------------------------------------------------------------------
    def classify(self, clique: Clique) -> tuple[str, int | None]:
        """Classify a k-clique: ``("candidate", owner)``, ``("all_free",
        None)`` or ``("invalid", None)``."""
        owners = {self.owner_of[u] for u in clique if u in self.owner_of}
        if not owners:
            return ("all_free", None)
        if len(owners) == 1 and any(u not in self.owner_of for u in clique):
            return ("candidate", owners.pop())
        return ("invalid", None)

    def add_candidate(self, clique: Clique, owner: int) -> bool:
        """Insert a candidate; returns ``False`` if already present."""
        if clique in self.owner_of_cand:
            return False
        self.owner_of_cand[clique] = owner
        self.cands_by_owner.setdefault(owner, set()).add(clique)
        for u in clique:
            self.cands_by_node.setdefault(u, set()).add(clique)
        return True

    def _detach(self, cand: Clique) -> None:
        """Remove a candidate from the node index and the global map."""
        self.owner_of_cand.pop(cand, None)
        for u in cand:
            bucket = self.cands_by_node.get(u)
            if bucket is not None:
                bucket.discard(cand)
                if not bucket:
                    del self.cands_by_node[u]

    def remove_candidate(self, cand: Clique) -> None:
        """Remove a candidate from all structures."""
        owner = self.owner_of_cand.get(cand)
        if owner is not None:
            self.cands_by_owner.get(owner, set()).discard(cand)
        self._detach(cand)

    def candidates_of(self, owner: int) -> set[Clique]:
        """Live view of an owner's candidate set."""
        return self.cands_by_owner.get(owner, set())

    @property
    def num_candidates(self) -> int:
        """Total candidate cliques (the paper's "index size", Table VII)."""
        return len(self.owner_of_cand)

    def remove_candidates_with_edge(self, u: int, v: int) -> set[Clique]:
        """Drop every candidate containing both endpoints (edge deleted)."""
        doomed = self.cands_by_node.get(u, set()) & self.cands_by_node.get(v, set())
        doomed = set(doomed)
        for cand in doomed:
            self.remove_candidate(cand)
        return doomed

    # ------------------------------------------------------------------
    # Construction and refresh
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Algorithm 5: construct all candidates from scratch.

        For each owner ``C``, enumerate the k-cliques of the subgraph
        induced on ``B = C ∪ N_F(C)`` and register every one except ``C``
        itself. Assumes ``S`` is maximal (no all-free clique exists);
        violations raise :class:`SolutionError` because they indicate the
        static solver handed over a non-maximal solution.
        """
        for owner, clique in self.solution.items():
            free_neighbours = {
                v
                for u in clique
                for v in self.graph.neighbors(u)
                if v not in self.owner_of
            }
            pool = set(clique) | free_neighbours
            for cand in iter_cliques_within(self.graph, pool, self.k):
                if cand == clique:
                    continue
                kind, cand_owner = self.classify(cand)
                if kind == "candidate" and cand_owner == owner:
                    self.add_candidate(cand, owner)
                elif kind == "all_free":
                    raise SolutionError(
                        f"solution is not maximal: free k-clique {sorted(cand)}"
                    )

    def refresh_nodes(self, dirty) -> RefreshReport:
        """Re-derive all candidates touching ``dirty`` nodes.

        Call after the free status of ``dirty`` changed (solution cliques
        added/removed) or after local structure changed around them. Any
        candidate whose validity could have changed contains a dirty
        node, so removing those and re-discovering cliques through each
        dirty node restores exactness.
        """
        report = RefreshReport()
        doomed: set[Clique] = set()
        for node in dirty:
            doomed |= self.cands_by_node.get(node, set())
        for cand in doomed:
            self.remove_candidate(cand)
        report.removed = doomed

        seen: set[Clique] = set()
        for node in dirty:
            for clique in cliques_through_node(self.graph, node, self.k):
                if clique in seen:
                    continue
                seen.add(clique)
                kind, owner = self.classify(clique)
                if kind == "candidate":
                    if self.add_candidate(clique, owner) and clique not in doomed:
                        report.new_by_owner.setdefault(owner, set()).add(clique)
                elif kind == "all_free":
                    report.all_free.add(clique)
        return report

    def discover_through_edge(self, u: int, v: int) -> RefreshReport:
        """Classify every k-clique through edge ``(u, v)`` (fresh insert).

        Only cliques containing the new edge can be new, so this is the
        complete discovery step for Algorithm 6.
        """
        report = RefreshReport()
        for clique in cliques_through_edge(self.graph, u, v, self.k):
            kind, owner = self.classify(clique)
            if kind == "candidate":
                if self.add_candidate(clique, owner):
                    report.new_by_owner.setdefault(owner, set()).add(clique)
            elif kind == "all_free":
                report.all_free.add(clique)
        return report

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Raise :class:`SolutionError` on any internal inconsistency.

        Recomputes the candidate universe from scratch (Algorithm 5
        semantics over the whole graph) and compares. Exponential-ish;
        tests only.
        """
        for owner, clique in self.solution.items():
            if not self.graph.is_clique(clique):
                raise SolutionError(f"solution clique {sorted(clique)} is broken")
            for u in clique:
                if self.owner_of.get(u) != owner:
                    raise SolutionError(f"owner map wrong for node {u}")
        for u, owner in self.owner_of.items():
            if u not in self.solution[owner]:
                raise SolutionError(f"node {u} mapped to wrong owner {owner}")

        expected: dict[Clique, int] = {}
        for owner, clique in self.solution.items():
            free_neighbours = {
                v
                for u in clique
                for v in self.graph.neighbors(u)
                if v not in self.owner_of
            }
            pool = set(clique) | free_neighbours
            for cand in iter_cliques_within(self.graph, pool, self.k):
                if cand == clique:
                    continue
                kind, cand_owner = self.classify(cand)
                if kind == "candidate" and cand_owner == owner:
                    expected[cand] = owner
        if expected.keys() != self.owner_of_cand.keys():
            missing = expected.keys() - self.owner_of_cand.keys()
            extra = self.owner_of_cand.keys() - expected.keys()
            raise SolutionError(
                f"candidate index drift: missing={sorted(map(sorted, missing))} "
                f"extra={sorted(map(sorted, extra))}"
            )
        for cand, owner in expected.items():
            if self.owner_of_cand[cand] != owner:
                raise SolutionError(
                    f"candidate {sorted(cand)} has owner "
                    f"{self.owner_of_cand[cand]}, expected {owner}"
                )
