"""Local clique enumeration over mutable adjacency (dynamic substrate).

The dynamic maintainer constantly enumerates small, *local* clique sets:
all k-cliques through a node, through an edge, or inside a bounded node
set. These helpers work directly on anything exposing ``neighbors(u)``
(both :class:`~repro.graph.graph.Graph` and
:class:`~repro.graph.dynamic.DynamicGraph`), avoiding the subgraph
relabelling that the static listing module uses. Uniqueness is obtained
by ascending-id recursion inside the candidate set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # imported for annotations only
    from repro.graph.dynamic import DynamicGraph
    from repro.graph.graph import Graph


def iter_cliques_within(
    graph: "Graph | DynamicGraph", nodes: Iterable[int], k: int
) -> Iterator[frozenset[int]]:
    """Yield every k-clique whose nodes all lie in ``nodes``, once each."""
    if k < 1:
        return
    pool = sorted(set(nodes))
    if len(pool) < k:
        return
    if k == 1:
        for u in pool:
            yield frozenset((u,))
        return
    pool_set = set(pool)
    # Ascending-id orientation restricted to the pool.
    higher = {
        u: {v for v in graph.neighbors(u) if v > u and v in pool_set} for u in pool
    }

    def extend(prefix: list[int], candidates: set[int], need: int) -> Iterator[frozenset[int]]:
        if need == 1:
            for v in candidates:
                yield frozenset(prefix + [v])
            return
        for v in sorted(candidates):
            nxt = candidates & higher[v]
            if len(nxt) >= need - 1:
                prefix.append(v)
                yield from extend(prefix, nxt, need - 1)
                prefix.pop()

    for u in pool:
        cand = higher[u]
        if len(cand) >= k - 1:
            yield from extend([u], cand, k - 1)


def cliques_through_node(
    graph: "Graph | DynamicGraph", u: int, k: int
) -> Iterator[frozenset[int]]:
    """Yield every k-clique of ``graph`` containing node ``u``, once each."""
    if k < 1:
        return
    if k == 1:
        yield frozenset((u,))
        return
    neigh = graph.neighbors(u)
    if len(neigh) < k - 1:
        return
    for sub in iter_cliques_within(graph, neigh, k - 1):
        yield sub | {u}


def cliques_through_edge(
    graph: "Graph | DynamicGraph", u: int, v: int, k: int
) -> Iterator[frozenset[int]]:
    """Yield every k-clique containing edge ``(u, v)``, once each."""
    if k < 2 or not graph.has_edge(u, v):
        return
    if k == 2:
        yield frozenset((u, v))
        return
    common = graph.neighbors(u) & graph.neighbors(v)
    if len(common) < k - 2:
        return
    for sub in iter_cliques_within(graph, common, k - 2):
        yield sub | {u, v}


def has_clique_within(
    graph: "Graph | DynamicGraph", nodes: Iterable[int], k: int
) -> bool:
    """Whether the induced subgraph on ``nodes`` contains any k-clique."""
    for _ in iter_cliques_within(graph, nodes, k):
        return True
    return False
