"""Dynamic maintenance of a near-optimal disjoint k-clique set.

:class:`DynamicDisjointCliques` is the paper's Section V put together:
an initial static solve (LP by default), the candidate index
(Algorithm 5), swap operations (Algorithm 4) and the insertion/deletion
handlers (Algorithms 6 and 7). After every public update the following
invariants hold (property-tested in ``tests/test_dynamic_*.py``):

* the solution is a valid disjoint k-clique set of the current graph;
* the solution is maximal (no k-clique among free nodes), hence still a
  k-approximation by Theorem 3;
* the candidate index matches its from-scratch definition exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import InvalidParameterError
from repro.graph.dynamic import DynamicGraph
from repro.graph.graph import Graph
from repro.core.api import find_disjoint_cliques
from repro.core.result import CliqueSetResult
from repro.dynamic.index import CandidateIndex, Clique, RefreshReport
from repro.dynamic.swap import select_disjoint, try_swap


class DynamicDisjointCliques:
    """Maintains a maximal disjoint k-clique set under edge updates.

    Parameters
    ----------
    graph:
        Initial graph; a private :class:`DynamicGraph` copy is kept.
    k:
        Clique size, ``>= 2``.
    method:
        Static solver for the initial solution (default ``"lp"``).

    Examples
    --------
    >>> from repro.graph.generators import planted_clique_packing
    >>> g, _ = planted_clique_packing(3, 3, seed=0)
    >>> dyn = DynamicDisjointCliques(g, k=3)
    >>> dyn.size
    3
    >>> dyn.delete_edge(0, 1)      # break the first planted triangle
    >>> dyn.size
    2
    >>> dyn.insert_edge(0, 1)      # restore it
    >>> dyn.size
    3
    """

    def __init__(self, graph, k: int, method: str = "lp") -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if isinstance(graph, Graph):
            self.graph = DynamicGraph.from_graph(graph)
            static = graph
        elif isinstance(graph, DynamicGraph):
            self.graph = DynamicGraph(graph.n, graph.edges())
            static = self.graph.snapshot()
        else:
            raise InvalidParameterError(
                f"graph must be Graph or DynamicGraph, got {type(graph).__name__}"
            )
        self.k = k
        self.stats: dict[str, float] = {
            "insertions": 0,
            "deletions": 0,
            "pops": 0,
            "swaps": 0,
            "swap_gain": 0,
            "direct_additions": 0,
            "destroyed_cliques": 0,
        }
        initial = find_disjoint_cliques(static, k, method=method)
        self.index = CandidateIndex(self.graph, k)
        for clique in initial.cliques:
            self.index.add_solution_clique(clique)
        self.index.build()

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current ``|S|``."""
        return len(self.index.solution)

    @property
    def index_size(self) -> int:
        """Number of candidate cliques (the paper's index size)."""
        return self.index.num_candidates

    def solution(self) -> CliqueSetResult:
        """Snapshot of the maintained solution."""
        return CliqueSetResult(
            list(self.index.solution.values()),
            k=self.k,
            method="dynamic",
            stats=dict(self.stats),
        )

    def free_nodes(self) -> set[int]:
        """Nodes not covered by any solution clique."""
        return {u for u in self.graph.nodes() if u not in self.index.owner_of}

    # ------------------------------------------------------------------
    # Update API
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Algorithm 6. Returns ``False`` when the edge already existed."""
        if not self.graph.insert_edge(u, v):
            return False
        self.stats["insertions"] += 1
        u_free = self.index.is_free(u)
        v_free = self.index.is_free(v)
        if not u_free and not v_free:
            # Both covered: any new clique would contain (u, v) and two
            # non-free nodes; same owner is impossible (the edge would
            # have existed), different owners can't form a candidate.
            return True

        report = self.index.discover_through_edge(u, v)
        if u_free and v_free and report.all_free:
            # A brand-new clique among free nodes: add directly, no swap
            # cascade needed (no other owner gains candidates from it).
            self._absorb_all_free(report.all_free)
            return True
        if report.new_by_owner:
            queue: deque[int] = deque(
                owner for owner in report.new_by_owner if owner in self.index.solution
            )
            try_swap(self.index, queue, self.stats)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Algorithm 7. Returns ``False`` when the edge was absent."""
        if not self.graph.delete_edge(u, v):
            return False
        self.stats["deletions"] += 1
        self.index.remove_candidates_with_edge(u, v)

        owner_u = self.index.owner_of.get(u)
        owner_v = self.index.owner_of.get(v)
        if owner_u is None or owner_u != owner_v:
            # The edge was not inside a solution clique; candidate
            # invalidation above is all that is needed.
            return True

        # The deletion split a solution clique: remove it, re-cover its
        # freed nodes from surviving local cliques, then cascade swaps.
        self.stats["destroyed_cliques"] += 1
        freed = self.index.remove_solution_clique(owner_u)
        report = self.index.refresh_nodes(freed)
        new_owners = self._absorb_all_free(report.all_free)
        queue: deque[int] = deque(
            owner for owner in report.new_by_owner if owner in self.index.solution
        )
        for owner in new_owners:
            if owner not in queue:
                queue.append(owner)
        try_swap(self.index, queue, self.stats)
        return True

    def add_node(self, neighbors: Iterable[int] = ()) -> int:
        """Add a node (a player joining), optionally wired to neighbours.

        The paper treats node updates as bundles of edge updates; each
        neighbour edge goes through :meth:`insert_edge` so the solution
        and index stay exact.
        """
        node = self.graph.add_node()
        for v in neighbors:
            self.insert_edge(node, v)
        return node

    def remove_node(self, u: int) -> int:
        """Detach a node (a player leaving) by deleting its edges.

        The node id stays allocated but isolated and free. Returns the
        number of edges removed.
        """
        removed = 0
        for v in sorted(self.graph.neighbors(u)):
            if self.delete_edge(u, v):
                removed += 1
        return removed

    def apply(self, updates: Iterable[tuple[str, int, int]]) -> None:
        """Apply a stream of ``("insert" | "delete", u, v)`` updates."""
        for op, u, v in updates:
            if op == "insert":
                self.insert_edge(u, v)
            elif op == "delete":
                self.delete_edge(u, v)
            else:
                raise InvalidParameterError(f"unknown update op {op!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _absorb_all_free(self, all_free: set[Clique]) -> list[int]:
        """Greedily add disjoint all-free cliques to ``S`` (keeps S maximal).

        Absorption makes nodes non-free, which can only *reveal new
        candidates* for the just-added owners, never new all-free
        cliques — so one refresh pass per absorption round suffices.
        """
        new_owners: list[int] = []
        pending = set(all_free)
        while pending:
            chosen = select_disjoint(pending, self.k)
            pending.clear()
            dirty: set[int] = set()
            for clique in chosen:
                # Re-validate: earlier additions may have consumed nodes.
                if any(not self.index.is_free(w) for w in clique):
                    continue
                if not self.graph.is_clique(clique):
                    continue
                new_owners.append(self.index.add_solution_clique(clique))
                self.stats["direct_additions"] += 1
                dirty |= clique
            if not dirty:
                break
            report = self.index.refresh_nodes(dirty)
            pending = report.all_free
        return new_owners

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise unless solution validity/maximality and index exactness hold."""
        from repro.core.result import is_maximal, verify_solution

        verify_solution(self.graph, self.k, self.index.solution.values())
        self.index.check_consistency()
        if not is_maximal(self.graph, self.k, self.index.solution.values()):
            raise AssertionError("maintained solution is not maximal")
