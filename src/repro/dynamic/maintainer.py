"""Dynamic maintenance of a near-optimal disjoint k-clique set.

:class:`DynamicDisjointCliques` is the paper's Section V put together:
an initial static solve (LP by default), the candidate index
(Algorithm 5), swap operations (Algorithm 4) and the insertion/deletion
handlers (Algorithms 6 and 7), plus a batched update engine
(:meth:`DynamicDisjointCliques.apply_batch`) that coalesces a stream to
its net structural effect (:class:`repro.dynamic.batch.UpdateBatch`)
and repairs the solution and index with one deferred pass per batch.
After every public update — per-edge or batched — the following
invariants hold (property-tested in ``tests/test_dynamic_*.py`` and
differentially in ``tests/test_dynamic_batch_equivalence.py``):

* the solution is a valid disjoint k-clique set of the current graph;
* the solution is maximal (no k-clique among free nodes), hence still a
  k-approximation by Theorem 3;
* the candidate index matches its from-scratch definition exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import InvalidParameterError, SolutionError
from repro.graph.dynamic import DynamicGraph
from repro.graph.graph import Graph
from repro.core.api import find_disjoint_cliques
from repro.core.result import CliqueSetResult, is_maximal, verify_solution
from repro.dynamic.batch import UpdateBatch
from repro.dynamic.index import CandidateIndex, Clique, RefreshReport
from repro.dynamic.swap import select_disjoint, try_swap


class DynamicDisjointCliques:
    """Maintains a maximal disjoint k-clique set under edge updates.

    Parameters
    ----------
    graph:
        Initial graph; a private :class:`DynamicGraph` copy is kept.
    k:
        Clique size, ``>= 2``.
    method:
        Static solver for the initial solution (default ``"lp"``).
    initial:
        Optional precomputed initial solution (must be a valid *maximal*
        disjoint k-clique set of ``graph``); when given, ``method`` is
        not consulted and no static solve is run. This is how
        :meth:`repro.core.session.Session.dynamic` shares a session's
        cached preprocessing with the maintainer.
    validate_initial:
        Verify a supplied ``initial`` (validity and maximality) before
        building the index. Maximality checking enumerates the free
        subgraph; benchmarks constructing many maintainers from one
        already-validated solve can pass ``False``.

    Examples
    --------
    >>> from repro.graph.generators import planted_clique_packing
    >>> g, _ = planted_clique_packing(3, 3, seed=0)
    >>> dyn = DynamicDisjointCliques(g, k=3)
    >>> dyn.size
    3
    >>> dyn.delete_edge(0, 1)      # break the first planted triangle
    >>> dyn.size
    2
    >>> dyn.insert_edge(0, 1)      # restore it
    >>> dyn.size
    3
    """

    def __init__(
        self,
        graph: Graph | DynamicGraph,
        k: int,
        method: str = "lp",
        initial: CliqueSetResult | None = None,
        validate_initial: bool = True,
    ) -> None:
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if isinstance(graph, Graph):
            self.graph = DynamicGraph.from_graph(graph)
            static = graph
        elif isinstance(graph, DynamicGraph):
            self.graph = DynamicGraph(graph.n, graph.edges())
            static = self.graph.snapshot()
        else:
            raise InvalidParameterError(
                f"graph must be Graph or DynamicGraph, got {type(graph).__name__}"
            )
        self.k = k
        self.stats: dict[str, float] = {
            "insertions": 0,
            "deletions": 0,
            "pops": 0,
            "swaps": 0,
            "swap_gain": 0,
            "direct_additions": 0,
            "destroyed_cliques": 0,
            "batches": 0,
            "coalesced_updates": 0,
        }
        if initial is None:
            initial = find_disjoint_cliques(static, k, method=method)
        else:
            if initial.k != k:
                raise InvalidParameterError(
                    f"initial solution was solved for k={initial.k}, expected {k}"
                )
            if validate_initial:
                verify_solution(static, k, initial.cliques)
                if not is_maximal(static, k, initial.cliques):
                    raise SolutionError(
                        "initial solution is not maximal; the dynamic index "
                        "requires a maximal starting point (Theorem 3)"
                    )
        self.index = CandidateIndex(self.graph, k)
        for clique in initial.cliques:
            self.index.add_solution_clique(clique)
        self.index.build()

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current ``|S|``."""
        return len(self.index.solution)

    @property
    def index_size(self) -> int:
        """Number of candidate cliques (the paper's index size)."""
        return self.index.num_candidates

    def solution(self) -> CliqueSetResult:
        """Snapshot of the maintained solution."""
        return CliqueSetResult(
            # Owner-sorted listing: the solution dict's insertion order
            # encodes the update trajectory, which equivalent maintenance
            # paths are allowed to differ on; the snapshot must not.
            [self.index.solution[owner] for owner in sorted(self.index.solution)],
            k=self.k,
            method="dynamic",
            stats=dict(self.stats),
        )

    def free_nodes(self) -> set[int]:
        """Nodes not covered by any solution clique."""
        return {u for u in self.graph.nodes() if u not in self.index.owner_of}

    # ------------------------------------------------------------------
    # Update API
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Algorithm 6. Returns ``False`` when the edge already existed."""
        if not self.graph.insert_edge(u, v):
            return False
        self.stats["insertions"] += 1
        u_free = self.index.is_free(u)
        v_free = self.index.is_free(v)
        if not u_free and not v_free:
            # Both covered: any new clique would contain (u, v) and two
            # non-free nodes; same owner is impossible (the edge would
            # have existed), different owners can't form a candidate.
            return True

        report = self.index.discover_through_edge(u, v)
        if u_free and v_free and report.all_free:
            # A brand-new clique among free nodes: add directly, no swap
            # cascade needed (no other owner gains candidates from it).
            self._absorb_all_free(report.all_free)
            return True
        if report.new_by_owner:
            queue: deque[int] = deque(
                owner for owner in report.new_by_owner if owner in self.index.solution
            )
            try_swap(self.index, queue, self.stats)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Algorithm 7. Returns ``False`` when the edge was absent."""
        if not self.graph.delete_edge(u, v):
            return False
        self.stats["deletions"] += 1
        self.index.remove_candidates_with_edge(u, v)

        owner_u = self.index.owner_of.get(u)
        owner_v = self.index.owner_of.get(v)
        if owner_u is None or owner_u != owner_v:
            # The edge was not inside a solution clique; candidate
            # invalidation above is all that is needed.
            return True

        # The deletion split a solution clique: remove it, re-cover its
        # freed nodes from surviving local cliques, then cascade swaps.
        self.stats["destroyed_cliques"] += 1
        freed = self.index.remove_solution_clique(owner_u)
        report = self.index.refresh_nodes(freed)
        new_owners = self._absorb_all_free(report.all_free)
        queue: deque[int] = deque(
            owner for owner in report.new_by_owner if owner in self.index.solution
        )
        for owner in new_owners:
            if owner not in queue:
                queue.append(owner)
        try_swap(self.index, queue, self.stats)
        return True

    def add_node(self, neighbors: Iterable[int] = ()) -> int:
        """Add a node (a player joining), optionally wired to neighbours.

        The paper treats node updates as bundles of edge updates; each
        neighbour edge goes through :meth:`insert_edge` so the solution
        and index stay exact.
        """
        node = self.graph.add_node()
        for v in neighbors:
            self.insert_edge(node, v)
        return node

    def remove_node(self, u: int) -> int:
        """Detach a node (a player leaving) by deleting its edges.

        The node id stays allocated but isolated and free. Returns the
        number of edges removed.
        """
        removed = 0
        for v in sorted(self.graph.neighbors(u)):
            if self.delete_edge(u, v):
                removed += 1
        return removed

    def apply(
        self,
        updates: Iterable[tuple[str, int, int]],
        *,
        batch_size: int | None = None,
        backend: str = "auto",
    ) -> None:
        """Apply a stream of ``("insert" | "delete", u, v)`` updates.

        With ``batch_size=None`` (default) every update goes through the
        per-edge handlers (Algorithms 6/7) — the legacy behaviour. With a
        positive ``batch_size``, consecutive chunks of that size are
        coalesced and applied through :meth:`apply_batch`, which shares
        one deferred repair pass per chunk; ``backend`` then selects the
        dirty-region re-enumeration engine (``"auto" | "sets" | "csr"``).
        """
        if batch_size is None:
            for op, u, v in updates:
                if op == "insert":
                    self.insert_edge(u, v)
                elif op == "delete":
                    self.delete_edge(u, v)
                else:
                    raise InvalidParameterError(f"unknown update op {op!r}")
            return
        from repro.dynamic.workload import iter_batches

        for chunk in iter_batches(updates, batch_size):
            self.apply_batch(chunk, backend=backend)

    def apply_batch(
        self,
        updates: Iterable[tuple[str, int, int]],
        *,
        backend: str = "auto",
    ) -> UpdateBatch:
        """Apply a whole update stream with one deferred repair pass.

        The stream is first coalesced to its net structural effect
        (:meth:`UpdateBatch.plan`), then all graph changes land at once,
        and the solution/index are repaired in one sweep instead of once
        per edge:

        1. purge candidates containing a deleted edge (inverted index);
        2. drop solution cliques broken by deletions, freeing their
           nodes;
        3. one candidate-index refresh over the union of freed nodes
           (their status changed — CSR-backed for large regions when
           ``backend`` allows) plus one clique discovery per net
           inserted edge with a free endpoint (only cliques through a
           new edge can be new);
        4. one absorb pass over discovered all-free cliques and one swap
           cascade (the maximality sweep) over every owner whose
           candidate set changed and still holds >= 2 candidates.

        All Section V invariants (validity, maximality, exact index)
        hold on return, exactly as after a per-edge stream. Returns the
        planned batch (net inserts/deletes and coalesced-op count).

        ``backend`` governs the *batch-level* passes (freed-union
        refresh, shared insert discovery, absorb discovery); the
        re-enumerations inside individual swaps stay on the set engine
        by design — their dirty regions are a handful of nodes, below
        any patch-extraction break-even.

        Correctness of the single repair pass: every clique whose index
        status can change either contains a deleted edge (purged in
        step 1), touches a freed node (refreshed in step 3), or is a
        brand-new clique through an inserted edge (discovered in
        step 3). Inserted edges between two covered nodes cannot appear
        in a candidate or all-free clique — their endpoints belong to
        distinct owners, since same-owner endpoints would already be
        adjacent — so skipping their discovery is exact.
        """
        batch = UpdateBatch.plan(updates, self.graph)
        self.stats["batches"] += 1
        self.stats["coalesced_updates"] += batch.nops
        if batch.is_noop:
            # No structural change, but still drain the sweep frontier:
            # an empty batch doubles as an explicit stabilisation point
            # (e.g. right after construction, to harvest latent swap
            # opportunities of the initial static solve).
            self._sweep_touched_owners()
            return batch

        # 1. Structural changes, all up front (nets touch distinct edges).
        self.graph.delete_edges(batch.deletes)
        self.graph.insert_edges(batch.inserts)
        self.stats["insertions"] += len(batch.inserts)
        self.stats["deletions"] += len(batch.deletes)

        # 2. Candidate purge + broken solution cliques.
        destroyed: set[int] = set()
        for u, v in batch.deletes:
            self.index.remove_candidates_with_edge(u, v)
            owner_u = self.index.owner_of.get(u)
            if owner_u is not None and owner_u == self.index.owner_of.get(v):
                destroyed.add(owner_u)
        freed: set[int] = set()
        for owner in destroyed:
            freed |= self.index.remove_solution_clique(owner)
            self.stats["destroyed_cliques"] += 1

        # 3. One deferred repair over the union of dirty regions: a
        # node-granular refresh where free status changed, and an
        # edge-granular discovery for each effective insertion.
        report = RefreshReport()
        if freed:
            report = self.index.refresh_nodes(freed, backend=backend)
        eligible = [
            (u, v)
            for u, v in batch.inserts
            if self.index.is_free(u) or self.index.is_free(v)
        ]
        if eligible:
            ins_report = self.index.discover_through_edges(eligible, backend=backend)
            for owner, cands in ins_report.new_by_owner.items():
                report.new_by_owner.setdefault(owner, set()).update(cands)
            report.all_free |= ins_report.all_free

        # 4. One absorb pass and one swap cascade. The explicit queue
        # (owners that gained candidates, in canonical report order,
        # then freshly absorbed owners) overlaps the touched-owner
        # sweep below, but the overlap is kept deliberately: cascading
        # from the gaining owners first is measurably faster than a
        # sorted-order sweep alone, and a re-examined unchanged owner
        # costs one failed select_disjoint.
        new_owners = self._absorb_all_free(report.all_free, backend=backend)
        queue: deque[int] = deque(
            owner for owner in report.new_by_owner if owner in self.index.solution
        )
        for owner in new_owners:
            if owner not in queue:
                queue.append(owner)
        try_swap(self.index, queue, self.stats)

        # 5. Maximality sweep over the rest of the touched frontier.
        self._sweep_touched_owners()
        return batch

    def _sweep_touched_owners(self) -> None:
        """Swap-sweep owners whose candidate sets changed since last sweep.

        Per-edge application sees intermediate candidate sets batching
        never materialises, so swap opportunities can survive in owners
        that gained nothing *new* this batch. Sweeping every owner the
        index marked touched (an untouched candidate set cannot have
        gained an opportunity, and losses never create one) harvests
        those without rescanning the whole solution. The first sweep
        pays for the latent opportunities of the initial static solve;
        later sweeps are incremental.
        """
        sweep: deque[int] = deque(
            owner
            for owner in sorted(self.index.touched_owners)
            if owner in self.index.solution
            and len(self.index.cands_by_owner.get(owner, ())) >= 2
        )
        self.index.touched_owners.clear()
        try_swap(self.index, sweep, self.stats)
        self.index.touched_owners.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _absorb_all_free(
        self, all_free: set[Clique], *, backend: str = "sets"
    ) -> list[int]:
        """Greedily add disjoint all-free cliques to ``S`` (keeps S maximal).

        Absorption makes nodes non-free, which cuts both ways in the
        index — candidates that used those nodes as free members die
        (dropped via the inverted node index, no enumeration), and the
        just-added owners gain candidates, discovered from each one's
        own Algorithm-5 patch ``C ∪ N_F(C)``. Existing owners can only
        *lose* candidates and no new all-free clique can appear, so one
        pass per absorption round suffices. ``backend`` selects the
        per-owner discovery engine (batched application forwards its
        own; the per-edge handlers keep ``"sets"``).
        """
        new_owners: list[int] = []
        pending = set(all_free)
        while pending:
            chosen = select_disjoint(pending, self.k)
            pending.clear()
            added: list[int] = []
            covered: set[int] = set()
            for clique in chosen:
                # Re-validate: earlier additions may have consumed nodes.
                if any(not self.index.is_free(w) for w in clique):
                    continue
                if not self.graph.is_clique(clique):
                    continue
                added.append(self.index.add_solution_clique(clique))
                self.stats["direct_additions"] += 1
                covered |= clique
            if not added:
                break
            doomed: set[Clique] = set()
            for node in covered:
                doomed |= self.index.cands_by_node.get(node, set())
            for cand in doomed:
                self.index.remove_candidate(cand)
            for owner in added:
                report = self.index.discover_owner_candidates(owner, backend=backend)
                pending |= report.all_free
            new_owners.extend(added)
        return new_owners

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise unless solution validity/maximality and index exactness hold."""
        from repro.core.result import is_maximal, verify_solution

        verify_solution(self.graph, self.k, self.index.solution.values())
        self.index.check_consistency()
        if not is_maximal(self.graph, self.k, self.index.solution.values()):
            raise AssertionError("maintained solution is not maximal")
