"""Swap operations (Section V-A, Algorithm 4).

``try_swap`` pops solution cliques from a FIFO queue and, for each, looks
for a set of >= 2 pairwise-disjoint candidate cliques to replace it —
each swap grows ``|S|`` by at least one, so the loop terminates after at
most ``n/k`` swaps. Replacement sets are chosen exactly the way
Algorithm 2 chooses cliques globally: ascending clique score, where
scores are computed *locally* over the candidate set under inspection
(the paper runs "Algorithm 2 ... among C(C)").
"""

from __future__ import annotations

from collections import deque

from repro.dynamic.index import CandidateIndex, Clique


def select_disjoint(cliques, k: int) -> list[Clique]:
    """Greedy maximal disjoint subset in ascending local-score order.

    ``s_n`` is recomputed inside the candidate pool (how many pool
    cliques contain each node); the greedy key is the package-wide
    ``(score, sorted nodes)`` order, so selection is deterministic.
    """
    pool = [frozenset(c) for c in cliques]
    counts: dict[int, int] = {}
    for clique in pool:
        for u in clique:
            counts[u] = counts.get(u, 0) + 1
    keyed = sorted(
        pool, key=lambda c: (sum(counts[u] for u in c), tuple(sorted(c)))
    )
    used: set[int] = set()
    chosen: list[Clique] = []
    for clique in keyed:
        if used.isdisjoint(clique):
            chosen.append(clique)
            used |= clique
    return chosen


def try_swap(
    index: CandidateIndex,
    queue: deque[int],
    stats: dict[str, float] | None = None,
) -> list[int]:
    """Run Algorithm 4 until the owner queue drains.

    Parameters
    ----------
    index:
        The candidate index (shared with the maintainer; mutated).
    queue:
        FIFO of owner ids eligible for swapping. Owners that left the
        solution in the meantime are skipped.
    stats:
        Optional counter dict (``swaps``, ``swap_gain``, ``pops``).

    Returns
    -------
    list[int]
        Owner ids newly added to the solution by swaps (useful for
        callers that track which cliques changed).
    """
    if stats is None:
        stats = {}
    stats.setdefault("pops", 0)
    stats.setdefault("swaps", 0)
    stats.setdefault("swap_gain", 0)
    created: list[int] = []

    while queue:
        owner = queue.popleft()
        if owner not in index.solution:
            continue
        stats["pops"] += 1
        candidates = index.candidates_of(owner)
        if len(candidates) < 2:
            continue
        replacement = select_disjoint(candidates, index.k)
        if len(replacement) <= 1:
            continue

        # Perform the swap: C out, replacement in.
        removed = index.remove_solution_clique(owner)
        dirty: set[int] = set(removed)
        new_ids: list[int] = []
        for clique in replacement:
            new_ids.append(index.add_solution_clique(clique))
            dirty |= clique
        stats["swaps"] += 1
        stats["swap_gain"] += len(replacement) - 1

        report = index.refresh_nodes(dirty)
        # A maximal replacement leaves no all-free clique behind: any such
        # clique would have been a candidate of the removed owner disjoint
        # from everything chosen, contradicting greedy maximality.
        if report.all_free:
            raise AssertionError(
                f"swap left uncovered free cliques: "
                f"{sorted(map(sorted, report.all_free))}"
            )
        for gained_owner in report.new_by_owner:
            if gained_owner in index.solution and gained_owner not in queue:
                queue.append(gained_owner)
        created.extend(new_ids)
    return created
