"""Swap operations (Section V-A, Algorithm 4).

``try_swap`` pops solution cliques from a FIFO queue and, for each, looks
for a set of >= 2 pairwise-disjoint candidate cliques to replace it —
each swap grows ``|S|`` by at least one, so the loop terminates after at
most ``n/k`` swaps. Replacement sets are chosen exactly the way
Algorithm 2 chooses cliques globally: ascending clique score, where
scores are computed *locally* over the candidate set under inspection
(the paper runs "Algorithm 2 ... among C(C)").
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.dynamic.index import CandidateIndex, Clique


def select_disjoint(cliques: Iterable[Clique], k: int) -> list[Clique]:
    """Greedy maximal disjoint subset in ascending local-score order.

    ``s_n`` is recomputed inside the candidate pool (how many pool
    cliques contain each node); the greedy key is the package-wide
    ``(score, sorted nodes)`` order, so selection is deterministic.
    """
    pool = [frozenset(c) for c in cliques]
    counts: dict[int, int] = {}
    for clique in pool:
        for u in clique:
            counts[u] = counts.get(u, 0) + 1
    keyed = sorted(
        pool, key=lambda c: (sum(counts[u] for u in c), tuple(sorted(c)))
    )
    used: set[int] = set()
    chosen: list[Clique] = []
    for clique in keyed:
        if used.isdisjoint(clique):
            chosen.append(clique)
            used |= clique
    return chosen


def try_swap(
    index: CandidateIndex,
    queue: deque[int],
    stats: dict[str, float] | None = None,
) -> list[int]:
    """Run Algorithm 4 until the owner queue drains.

    Parameters
    ----------
    index:
        The candidate index (shared with the maintainer; mutated).
    queue:
        FIFO of owner ids eligible for swapping. Owners that left the
        solution in the meantime are skipped.
    stats:
        Optional counter dict (``swaps``, ``swap_gain``, ``pops``).

    Returns
    -------
    list[int]
        Owner ids newly added to the solution by swaps (useful for
        callers that track which cliques changed).
    """
    if stats is None:
        stats = {}
    stats.setdefault("pops", 0)
    stats.setdefault("swaps", 0)
    stats.setdefault("swap_gain", 0)
    created: list[int] = []

    while queue:
        owner = queue.popleft()
        if owner not in index.solution:
            continue
        stats["pops"] += 1
        candidates = index.candidates_of(owner)
        if len(candidates) < 2:
            continue
        replacement = select_disjoint(candidates, index.k)
        if len(replacement) <= 1:
            continue

        # Perform the swap: C out, replacement in.
        removed = index.remove_solution_clique(owner)
        covered: set[int] = set()
        new_ids: list[int] = []
        for clique in replacement:
            new_ids.append(index.add_solution_clique(clique))
            covered |= clique
        stats["swaps"] += 1
        stats["swap_gain"] += len(replacement) - 1

        # Repair the index around the swap in three targeted moves
        # (together equivalent to a full refresh of removed ∪ covered):
        # candidates using newly covered free nodes die via the node
        # index; nodes of C left uncovered get a through-node refresh
        # (they may now seed candidates of *other* owners); and each
        # replacement owner's own candidates come from its Algorithm-5
        # patch. Covered-to-covered cliques need no enumeration at all.
        doomed = set()
        for node in covered:
            doomed |= index.cands_by_node.get(node, set())
        for cand in doomed:
            index.remove_candidate(cand)

        gained: list[int] = []
        freed = set(removed) - covered
        if freed:
            report = index.refresh_nodes(freed)
            # A maximal replacement leaves no all-free clique behind: any
            # such clique would have been a candidate of the removed owner
            # disjoint from everything chosen, contradicting greedy
            # maximality.
            if report.all_free:
                raise AssertionError(
                    f"swap left uncovered free cliques: "
                    f"{sorted(map(sorted, report.all_free))}"
                )
            gained.extend(report.new_by_owner)
        for new_id in new_ids:
            report = index.discover_owner_candidates(new_id)
            if report.all_free:
                raise AssertionError(
                    f"swap left uncovered free cliques: "
                    f"{sorted(map(sorted, report.all_free))}"
                )
            gained.extend(report.new_by_owner)
        for gained_owner in gained:
            if gained_owner in index.solution and gained_owner not in queue:
                queue.append(gained_owner)
        created.extend(new_ids)
    return created
