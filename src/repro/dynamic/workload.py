"""Update-workload generators matching the paper's Section VI-E protocol.

Three workloads are evaluated there:

* **deletion**: sample ``count`` existing edges uniformly, delete them;
* **insertion**: re-insert those same edges (so both workloads touch the
  same edge population);
* **mixed**: sample ``count`` edges to *pre-delete* (forming ``G'``) and
  ``count`` different edges to delete online, then interleave the
  ``count`` re-insertions and ``count`` deletions in random order.

All generators are seeded and return plain ``(op, u, v)`` tuples — the
endpoints are Python ints even when the graph's adjacency or the
sampler hands back numpy integers — that
:meth:`repro.dynamic.maintainer.DynamicDisjointCliques.apply` consumes,
either per edge or chunked through :func:`iter_batches` for the batched
path.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

Update = tuple[str, int, int]


def _sample_edges(graph: Graph, count: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    edges = list(graph.edges())
    if count > len(edges):
        raise InvalidParameterError(
            f"cannot sample {count} edges from a graph with {len(edges)}"
        )
    picks = rng.choice(len(edges), size=count, replace=False)
    # int() per endpoint: graphs built from numpy data carry np.int64
    # through edges(), and downstream consumers (serialisation, exact
    # tuple comparisons) rely on plain-int updates.
    return [(int(u), int(v)) for u, v in (edges[i] for i in picks)]


def make_workload(
    graph: Graph, kind: str, count: int, seed: int | None = None
) -> tuple[Graph, list[Update]]:
    """Build one Section VI-E workload: ``(start_graph, updates)``.

    ``kind`` is ``"deletion"`` (start = ``graph``), ``"insertion"``
    (start = ``graph`` minus the sampled edges, stream re-inserts them)
    or ``"mixed"``. One dispatch point shared by the CLI, the dynamic
    benchmark and the differential tests, so they all measure the same
    streams.
    """
    if kind == "deletion":
        return graph, deletion_workload(graph, count, seed=seed)
    if kind == "insertion":
        updates = insertion_workload(graph, count, seed=seed)
        start = graph.remove_edges([(u, v) for _, u, v in updates])
        return start, updates
    if kind == "mixed":
        return mixed_workload(graph, count, seed=seed)
    raise InvalidParameterError(
        f"unknown workload kind {kind!r}; expected deletion, insertion or mixed"
    )


def iter_batches(updates: Iterable[Update], batch_size: int) -> Iterator[list[Update]]:
    """Split an update stream into consecutive chunks of ``batch_size``.

    The last chunk may be shorter; an empty stream yields nothing.
    Chunks preserve stream order, so applying them in sequence through
    :meth:`~repro.dynamic.maintainer.DynamicDisjointCliques.apply_batch`
    reaches the same final graph as the per-edge path.
    """
    if batch_size < 1:
        raise InvalidParameterError(f"batch_size must be >= 1, got {batch_size}")
    chunk: list[Update] = []
    for update in updates:
        chunk.append(update)
        if len(chunk) == batch_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def deletion_workload(graph: Graph, count: int, seed: int | None = None) -> list[Update]:
    """``count`` random edge deletions."""
    rng = np.random.default_rng(seed)
    return [("delete", u, v) for u, v in _sample_edges(graph, count, rng)]


def insertion_workload(graph: Graph, count: int, seed: int | None = None) -> list[Update]:
    """``count`` insertions restoring edges sampled from ``graph``.

    Meant to be applied to a graph from which those edges were first
    removed (the paper deletes then re-adds the same sample).
    """
    rng = np.random.default_rng(seed)
    return [("insert", u, v) for u, v in _sample_edges(graph, count, rng)]


def mixed_workload(
    graph: Graph, count: int, seed: int | None = None
) -> tuple[Graph, list[Update]]:
    """The paper's mixed stream.

    Samples ``2 * count`` distinct edges; the first half is removed from
    ``graph`` up-front (forming the start graph ``G'``), then the stream
    interleaves their re-insertions with deletions of the second half in
    a random permutation.

    Returns ``(start_graph, updates)``.
    """
    rng = np.random.default_rng(seed)
    sample = _sample_edges(graph, 2 * count, rng)
    to_insert, to_delete = sample[:count], sample[count:]
    start = graph.remove_edges(to_insert)
    updates: list[Update] = [("insert", u, v) for u, v in to_insert]
    updates += [("delete", u, v) for u, v in to_delete]
    perm = rng.permutation(len(updates))
    return start, [updates[i] for i in perm]
