"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Resource-budget violations raised by the benchmark
harness (mirroring the paper's ``OOT``/``OOM`` markers) have dedicated
subclasses so experiment runners can record them per-cell.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GraphError(ReproError):
    """Invalid graph construction or mutation (e.g. self-loop, unknown node)."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain (e.g. ``k < 2``)."""


class SolutionError(ReproError):
    """A clique-set result violates the problem invariants."""


class BudgetExceededError(ReproError):
    """Base class for resource-budget violations in the bench harness."""


class OutOfTimeError(BudgetExceededError):
    """Computation exceeded its wall-clock budget (paper marker: ``OOT``).

    Anytime-capable solvers attach the best solution found before the
    budget expired as :attr:`partial` (``None`` when no partial work
    exists), so a deadline miss no longer discards completed work: the
    serving layer forwards it over the wire and library callers can
    read it off the exception.
    """

    def __init__(self, *args: object, partial: object = None) -> None:
        super().__init__(*args)
        #: Best-so-far work at expiry: a
        #: :class:`repro.core.result.CliqueSetResult` from solvers, a
        #: wire payload dict from the serving layer, or ``None``.
        self.partial = partial


class OutOfMemoryError(BudgetExceededError):
    """Computation exceeded its memory budget (paper marker: ``OOM``)."""


class ServeError(ReproError):
    """Base class for errors raised by the serving layer (:mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """A serving request is malformed (bad JSON, missing/invalid fields)."""


class UnknownGraphError(ServeError):
    """A serving request names a graph that was never registered (or evicted)."""


class UnknownFeedError(ServeError):
    """A serving request names a dynamic feed that is not open."""


class OverloadedError(ServeError):
    """The scheduler shed the request at admission (bounded queue full).

    This is the backpressure signal: clients should retry with jitter or
    reduce their request rate; the server is protecting its latency for
    already-admitted work instead of queueing without bound.
    """


class RequestCancelledError(ServeError):
    """The request was cancelled before it started running."""


class DeadlineExceededError(ServeError, OutOfTimeError):
    """The request's deadline passed before (or while) it ran.

    Subclasses :class:`OutOfTimeError` so code treating the paper's
    ``OOT`` marker generically keeps working, while serving clients can
    distinguish a missed per-request deadline from a solver's own
    ``time_budget`` overrun.
    """
