"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Resource-budget violations raised by the benchmark
harness (mirroring the paper's ``OOT``/``OOM`` markers) have dedicated
subclasses so experiment runners can record them per-cell.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GraphError(ReproError):
    """Invalid graph construction or mutation (e.g. self-loop, unknown node)."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain (e.g. ``k < 2``)."""


class SolutionError(ReproError):
    """A clique-set result violates the problem invariants."""


class BudgetExceededError(ReproError):
    """Base class for resource-budget violations in the bench harness."""


class OutOfTimeError(BudgetExceededError):
    """Computation exceeded its wall-clock budget (paper marker: ``OOT``)."""


class OutOfMemoryError(BudgetExceededError):
    """Computation exceeded its memory budget (paper marker: ``OOM``)."""
