"""Graph substrates: static/dynamic graphs, orderings, DAGs, generators, I/O."""

from repro.graph.graph import Graph
from repro.graph.dynamic import DynamicGraph
from repro.graph.dag import OrientedCSR, OrientedGraph
from repro.graph import datasets, generators, io, ordering

__all__ = [
    "Graph",
    "DynamicGraph",
    "OrientedGraph",
    "OrientedCSR",
    "datasets",
    "generators",
    "io",
    "ordering",
]
