"""Compressed-sparse-row adjacency backed by numpy arrays.

The CSR view powers the vectorised parts of the pipeline: degree
statistics, degeneracy-order computation and bulk triangle counting. The
row for node ``u`` is ``cols[indptr[u]:indptr[u+1]]``, sorted ascending,
which also enables ``numpy``/``bisect`` membership probes.
"""

from __future__ import annotations

import numpy as np


class CSRAdjacency:
    """Immutable CSR adjacency of an undirected graph.

    Attributes
    ----------
    indptr:
        int64 array of length ``n + 1``; row pointers.
    cols:
        int64 array of length ``2m``; concatenated sorted neighbour lists.
    """

    __slots__ = ("indptr", "cols")

    def __init__(self, indptr: np.ndarray, cols: np.ndarray) -> None:
        self.indptr = indptr
        self.cols = cols

    @classmethod
    def from_graph(cls, graph) -> "CSRAdjacency":
        """Build from a :class:`repro.graph.graph.Graph`."""
        n = graph.n
        degrees = graph.degrees
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        cols = np.empty(int(indptr[-1]), dtype=np.int64)
        for u in range(n):
            start, stop = indptr[u], indptr[u + 1]
            cols[start:stop] = sorted(graph.neighbors(u))
        return cls(indptr, cols)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.cols) // 2

    def row(self, u: int) -> np.ndarray:
        """Sorted neighbour array of ``u`` (a view; do not mutate)."""
        return self.cols[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """int64 degree array."""
        return np.diff(self.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Binary-search membership probe."""
        row = self.row(u)
        idx = np.searchsorted(row, v)
        return idx < len(row) and row[idx] == v

    def triangle_count_per_node(self) -> np.ndarray:
        """Number of triangles through each node.

        Uses the standard forward algorithm on the degeneracy-free
        orientation ``u -> v iff (deg, id)`` increases, intersecting
        sorted out-neighbour arrays. Intended for Table I statistics,
        where it is markedly faster than generic k-clique listing.
        """
        n = self.n
        deg = self.degrees()
        rank = np.lexsort((np.arange(n), deg))  # positions sorted by (deg, id)
        order = np.empty(n, dtype=np.int64)
        order[rank] = np.arange(n)
        counts = np.zeros(n, dtype=np.int64)
        out: list[np.ndarray] = []
        for u in range(n):
            row = self.row(u)
            out.append(row[order[row] > order[u]])
        for u in range(n):
            row_u = out[u]
            for v in row_u:
                common = np.intersect1d(row_u, out[int(v)], assume_unique=True)
                if len(common):
                    counts[u] += len(common)
                    counts[int(v)] += len(common)
                    counts[common] += 1
        return counts
