"""Compressed-sparse-row adjacency backed by numpy arrays.

The CSR view is the array-native substrate of the package: the row for
node ``u`` is ``cols[indptr[u]:indptr[u+1]]``, sorted ascending, which
makes neighbourhoods amenable to vectorised set algebra. Beyond the
Table-I statistics it now powers the ``"csr"`` enumeration backend (see
:mod:`repro.cliques.csr_kernels`): sorted-array intersections via the
module-level helpers below replace Python ``set`` operations on the hot
paths, following the sorted-CSR design of Rossi & Gleich's parallel
maximum-clique work.

Helpers
-------
:func:`concat_rows`
    Gather the rows of many nodes in one vectorised operation.
:func:`in_sorted`
    Bulk membership of values in one sorted array.
:func:`intersect_sorted`
    Galloping (searchsorted) intersection of two sorted unique arrays.
:func:`adjacency_sets`
    Materialise per-node neighbour sets from flat CSR arrays (the
    shared-memory attach path of :mod:`repro.parallel`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # deferred at runtime: graph imports csr lazily
    from repro.graph.graph import Graph


def concat_rows(
    indptr: np.ndarray, cols: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``nodes`` without a Python loop.

    Returns ``(owner_pos, values)`` where ``values`` is the
    concatenation of ``cols[indptr[u]:indptr[u+1]]`` for each ``u`` in
    ``nodes`` (in order) and ``owner_pos[i]`` is the *position* into
    ``nodes`` whose row produced ``values[i]`` (so
    ``nodes[owner_pos[i]]`` is the owning node). Both are int64 arrays;
    empty when all rows are empty.
    """
    starts = indptr[nodes]
    lens = indptr[nodes + 1] - starts
    total = int(lens.sum())
    if not total:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ends = np.cumsum(lens)
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - ends + lens, lens)
    return np.repeat(np.arange(len(nodes), dtype=np.int64), lens), cols[idx]


def in_sorted(haystack: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``values`` occur in the sorted array ``haystack``."""
    if not len(haystack):
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(haystack, values).clip(max=len(haystack) - 1)
    return haystack[pos] == values


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique int64 arrays (sorted result).

    Binary-searches the smaller array into the larger one —
    ``O(min log max)`` — which beats ``np.intersect1d``'s
    concatenate-and-sort when the operands are lopsided, the common case
    when intersecting a shrinking candidate set with adjacency rows.
    """
    if len(a) > len(b):
        a, b = b, a
    if not len(a):
        return a
    return a[in_sorted(b, a)]


def adjacency_sets(indptr: np.ndarray, cols: np.ndarray) -> list[set[int]]:
    """Per-node neighbour sets from flat CSR arrays.

    The inverse of draining a graph's adjacency into CSR form: used by
    :meth:`repro.graph.graph.Graph.from_csr_arrays` to rebuild the
    set substrate in worker processes that attached to shared CSR
    arrays zero-copy. Rows need not be sorted; values are converted to
    builtin ``int`` so downstream set algebra never mixes numpy
    scalars in.
    """
    n = len(indptr) - 1
    return [
        {int(v) for v in cols[indptr[u] : indptr[u + 1]]} for u in range(n)
    ]


class CSRAdjacency:
    """Immutable CSR adjacency of an undirected graph.

    Attributes
    ----------
    indptr:
        int64 array of length ``n + 1``; row pointers.
    cols:
        int64 array of length ``2m``; concatenated sorted neighbour lists.
    """

    __slots__ = ("indptr", "cols")

    def __init__(self, indptr: np.ndarray, cols: np.ndarray) -> None:
        self.indptr = indptr
        self.cols = cols

    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRAdjacency":
        """Build from a :class:`repro.graph.graph.Graph`.

        Construction is bulk numpy work: one pass drains every adjacency
        set into a flat int64 array, then a single stable ``np.lexsort``
        keyed on ``(row, col)`` sorts all rows at once — no per-node
        Python ``sorted()`` calls.
        """
        n = graph.n
        degrees = graph.degrees
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        cols = np.fromiter(
            (v for u in range(n) for v in graph.neighbors(u)),
            dtype=np.int64,
            count=total,
        )
        if total:
            rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
            cols = cols[np.lexsort((cols, rows))]
        return cls(indptr, cols)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.cols) // 2

    def row(self, u: int) -> np.ndarray:
        """Sorted neighbour array of ``u`` (a view; do not mutate)."""
        return self.cols[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """int64 degree array."""
        return np.diff(self.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Binary-search membership probe."""
        row = self.row(u)
        idx = np.searchsorted(row, v)
        return idx < len(row) and row[idx] == v

    def triangle_count_per_node(self) -> np.ndarray:
        """Number of triangles through each node.

        Uses the standard forward algorithm on the degeneracy-free
        orientation ``u -> v iff (deg, id)`` increases. The oriented
        adjacency is built as flat CSR arrays in one vectorised filter
        (no per-node list of row slices), and each node's triangles are
        counted with a single bulk gather + sorted-membership test over
        all of its out-neighbours' rows at once.
        """
        n = self.n
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        deg = self.degrees()
        pos = np.empty(n, dtype=np.int64)
        pos[np.lexsort((np.arange(n), deg))] = np.arange(n)
        rows = np.repeat(np.arange(n, dtype=np.int64), deg)
        keep = pos[self.cols] > pos[rows]
        out_cols = self.cols[keep]
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows[keep], minlength=n), out=out_indptr[1:])
        counts = np.zeros(n, dtype=np.int64)
        for u in range(n):
            row_u = out_cols[out_indptr[u] : out_indptr[u + 1]]
            if len(row_u) < 2:
                continue
            owner_pos, vals = concat_rows(out_indptr, out_cols, row_u)
            if not len(vals):
                continue
            hit = in_sorted(row_u, vals)
            nhit = int(hit.sum())
            if not nhit:
                continue
            counts[u] += nhit
            np.add.at(counts, row_u[owner_pos[hit]], 1)
            np.add.at(counts, vals[hit], 1)
        return counts
