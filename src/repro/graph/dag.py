"""DAG orientation of an undirected graph by a total node ordering.

Given a rank array ``eta`` (see :mod:`repro.graph.ordering`), the oriented
graph has an arc ``u -> v`` iff ``eta(u) > eta(v)`` — i.e. out-neighbours
have *smaller* rank, matching Algorithm 1 of the paper ("the ordering of
nodes v in N+(u) is smaller than the one of u"). Every k-clique then has a
unique *root*: its node of largest rank, from whose out-neighbourhood the
remaining k-1 nodes are drawn. This is the standard kClist device that
makes each clique enumerable exactly once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.concurrency import make_lock
from repro.graph.graph import Graph
from repro.graph import ordering as _ordering


class OrientedCSR:
    """Array form of an orientation: sorted int64 out-neighbour rows.

    The out-neighbourhood of ``u`` is ``cols[indptr[u]:indptr[u+1]]``,
    sorted ascending by node id. This is the substrate the ``"csr"``
    enumeration backend intersects (see
    :mod:`repro.cliques.csr_kernels`); it carries exactly the same arcs
    as :attr:`OrientedGraph.out` for the same rank array.
    """

    __slots__ = ("indptr", "cols", "rank")

    def __init__(self, indptr: np.ndarray, cols: np.ndarray, rank: np.ndarray) -> None:
        self.indptr = indptr
        self.cols = cols
        self.rank = rank

    @classmethod
    def from_rank(cls, graph: Graph, rank: Sequence[int] | np.ndarray) -> "OrientedCSR":
        """Orient ``graph`` by a rank array, fully vectorised.

        Filters the graph's (cached) undirected CSR with one boolean
        mask ``rank[v] < rank[u]`` — no per-node Python loop, and no
        intermediate ``set`` materialisation.
        """
        csr = graph.csr()
        n = graph.n
        rank = np.asarray(rank, dtype=np.int64)
        rows = np.repeat(np.arange(n, dtype=np.int64), csr.degrees())
        keep = rank[csr.cols] < rank[rows]
        cols = csr.cols[keep]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows[keep], minlength=n), out=indptr[1:])
        return cls(indptr, cols, rank)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.indptr) - 1

    def row(self, u: int) -> np.ndarray:
        """Sorted out-neighbour array of ``u`` (a view; do not mutate)."""
        return self.cols[self.indptr[u] : self.indptr[u + 1]]

    def out_degrees(self) -> np.ndarray:
        """int64 out-degree array."""
        return np.diff(self.indptr)


class OrientedGraph:
    """An orientation of a :class:`Graph` under a total ordering.

    Attributes
    ----------
    graph:
        The underlying undirected graph.
    rank:
        ``rank[u]`` is the position of ``u`` in the total order.
    out:
        ``out[u]`` is the *set* of out-neighbours of ``u`` (all with
        smaller rank), used by the ``"sets"`` enumeration backend. The
        array twin for the ``"csr"`` backend is built lazily by
        :meth:`csr`.
    """

    __slots__ = ("graph", "rank", "out", "_csr", "_lock")

    def __init__(self, graph: Graph, rank: np.ndarray) -> None:
        self.graph = graph
        self.rank = rank
        self.out: list[set[int]] = [
            {v for v in graph.neighbors(u) if rank[v] < rank[u]}
            for u in range(graph.n)
        ]
        self._csr: OrientedCSR | None = None
        # Guards the lazy CSR memo: engines call csr() outside the
        # preprocessing lock (e.g. the lightweight engine's deferred
        # substrate build), so concurrent tasks over a shared session
        # could otherwise race the O(n + m) orientation build.
        self._lock = make_lock("OrientedGraph._lock")

    def csr(self) -> OrientedCSR:
        """Lazily-built (and cached) :class:`OrientedCSR` of this orientation."""
        if self._csr is None:
            with self._lock:
                if self._csr is None:
                    self._csr = OrientedCSR.from_rank(self.graph, self.rank)
        return self._csr

    @property
    def has_csr(self) -> bool:
        """Whether the CSR twin has been built (without building it)."""
        return self._csr is not None

    @classmethod
    def orient(cls, graph: Graph, order: _ordering.OrderSpec = "degeneracy") -> "OrientedGraph":
        """Orient ``graph`` by a named ordering, rank array or callable."""
        rank = _ordering.resolve(order, graph)
        return cls(graph, rank)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        return len(self.out[u])

    def max_out_degree(self) -> int:
        """Largest out-degree; bounds the clique-listing recursion width."""
        return max((len(s) for s in self.out), default=0)

    def nodes_ascending(self) -> list[int]:
        """Node ids sorted by ascending rank (Algorithm 1's scan order)."""
        order = np.empty(self.n, dtype=np.int64)
        order[self.rank] = np.arange(self.n)
        return [int(u) for u in order]

    def root_of(self, clique: Sequence[int]) -> int:
        """The unique largest-rank node of ``clique`` under this orientation."""
        return max(clique, key=lambda u: self.rank[u])
