"""DAG orientation of an undirected graph by a total node ordering.

Given a rank array ``eta`` (see :mod:`repro.graph.ordering`), the oriented
graph has an arc ``u -> v`` iff ``eta(u) > eta(v)`` — i.e. out-neighbours
have *smaller* rank, matching Algorithm 1 of the paper ("the ordering of
nodes v in N+(u) is smaller than the one of u"). Every k-clique then has a
unique *root*: its node of largest rank, from whose out-neighbourhood the
remaining k-1 nodes are drawn. This is the standard kClist device that
makes each clique enumerable exactly once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.graph import ordering as _ordering


class OrientedGraph:
    """An orientation of a :class:`Graph` under a total ordering.

    Attributes
    ----------
    graph:
        The underlying undirected graph.
    rank:
        ``rank[u]`` is the position of ``u`` in the total order.
    out:
        ``out[u]`` is the *set* of out-neighbours of ``u`` (all with
        smaller rank). Sets are used because clique listing intersects
        them constantly.
    """

    __slots__ = ("graph", "rank", "out")

    def __init__(self, graph: Graph, rank: np.ndarray) -> None:
        self.graph = graph
        self.rank = rank
        self.out: list[set[int]] = [
            {v for v in graph.neighbors(u) if rank[v] < rank[u]}
            for u in range(graph.n)
        ]

    @classmethod
    def orient(cls, graph: Graph, order="degeneracy") -> "OrientedGraph":
        """Orient ``graph`` by a named ordering, rank array or callable."""
        rank = _ordering.resolve(order, graph)
        return cls(graph, rank)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        return len(self.out[u])

    def max_out_degree(self) -> int:
        """Largest out-degree; bounds the clique-listing recursion width."""
        return max((len(s) for s in self.out), default=0)

    def nodes_ascending(self) -> list[int]:
        """Node ids sorted by ascending rank (Algorithm 1's scan order)."""
        order = np.empty(self.n, dtype=np.int64)
        order[self.rank] = np.arange(self.n)
        return [int(u) for u in order]

    def root_of(self, clique: Sequence[int]) -> int:
        """The unique largest-rank node of ``clique`` under this orientation."""
        return max(clique, key=lambda u: self.rank[u])
