"""Dataset registry: scaled synthetic substitutes for the paper's graphs.

The paper evaluates on 10 KONECT / Network Repository graphs (Table I,
Football through Orkut, up to 117M edges) plus 6 small animal/sport
networks (Table IV). Those dumps are not redistributable here and the
build machine has no network access, so this module ships *seeded
synthetic substitutes* that preserve the evaluation's load-bearing
properties — the size ladder from tiny to large and the density/
clustering regime that controls per-k clique counts (see DESIGN.md §4).

Every entry is generated deterministically from a fixed seed, so Table I
statistics are stable across runs and machines. ``networkx`` classics
(karate, davis, florentine, les misérables) are exposed as true real-world
graphs for the small-graph exact comparison when networkx is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import InvalidParameterError
from repro.graph import generators as gen
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """A named, seeded graph recipe.

    Attributes
    ----------
    name:
        Short key used throughout the bench harness (e.g. ``"FTB"``).
    description:
        Human-readable provenance, including what paper dataset this
        substitutes for and why the recipe matches its regime.
    builder:
        Zero-argument callable producing the graph.
    paper_counterpart:
        The dataset name in the paper's Table I / Table IV, if any.
    tier:
        ``"tiny" | "small" | "medium" | "large"`` — drives OOT/OOM budget
        selection in the bench harness.
    """

    name: str
    description: str
    builder: Callable[[], Graph] = field(repr=False)
    paper_counterpart: str = ""
    tier: str = "small"

    def build(self) -> Graph:
        """Materialise the graph (cached by the registry helpers)."""
        return self.builder()


_REGISTRY: dict[str, DatasetSpec] = {}
_CACHE: dict[str, Graph] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


def register_dataset(spec: DatasetSpec) -> None:
    """Add a user-defined dataset to the registry (overwrites same name)."""
    _REGISTRY[spec.name] = spec
    _CACHE.pop(spec.name, None)


def names() -> list[str]:
    """Registered dataset names in registry order."""
    return list(_REGISTRY)


def spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def load(name: str) -> Graph:
    """Build (and memoise) a registered dataset."""
    if name not in _CACHE:
        _CACHE[name] = spec(name).build()
    return _CACHE[name]


def specs(tier: str | None = None) -> list[DatasetSpec]:
    """All specs, optionally filtered by tier."""
    # Registration order is the documented catalog order; registrations
    # all happen at deterministic module-import time.
    out = list(_REGISTRY.values())  # repro-lint: ignore=iterorder
    if tier is not None:
        out = [s for s in out if s.tier == tier]
    return out


# ----------------------------------------------------------------------
# Paper Table I substitutes (scaled: ~1/10 to ~1/1000 of the originals).
# Density regimes: FTB community-heavy; FB-like dense clique-rich core;
# DS/SK sparse power-law; OR-like heavy-clustered power-law.
# ----------------------------------------------------------------------
_register(
    DatasetSpec(
        name="FTB",
        description=(
            "Planted-partition substitute for the Football network "
            "(n=115, m=613 in the paper): 115 nodes, 12 communities, "
            "dense inside, sparse across."
        ),
        builder=lambda: gen.planted_partition(115, 12, 0.68, 0.03, seed=101),
        paper_counterpart="Football (FTB)",
        tier="tiny",
    )
)
_register(
    DatasetSpec(
        name="HST",
        description=(
            "Power-law-cluster substitute for Hamsterster "
            "(n=1.86K, m=12.5K): 1 858 nodes, attachment 7, strong "
            "triangle closure."
        ),
        builder=lambda: gen.powerlaw_cluster(1858, 7, 0.55, seed=102),
        paper_counterpart="Hamsterster (HST)",
        tier="small",
    )
)
_register(
    DatasetSpec(
        name="FB",
        description=(
            "Dense clique-rich substitute for the Facebook ego network "
            "(n=4K, m=88K, triangles ~400x n in the paper): 1 200 nodes, "
            "24 dense planted communities; its k-clique counts reach "
            "~350x n, reproducing the regime where storing cliques "
            "explodes memory."
        ),
        builder=lambda: gen.planted_partition(1200, 24, 0.62, 0.003, seed=103),
        paper_counterpart="Facebook (FB)",
        tier="small",
    )
)
_register(
    DatasetSpec(
        name="FBP",
        description=(
            "Power-law-cluster substitute for FBPages (n=28K, m=206K): "
            "4 000 nodes, attachment 8, moderate closure."
        ),
        builder=lambda: gen.powerlaw_cluster(4000, 8, 0.4, seed=104),
        paper_counterpart="FBPages (FBP)",
        tier="medium",
    )
)
_register(
    DatasetSpec(
        name="FBW",
        description=(
            "Power-law-cluster substitute for FBWosn (n=63.7K, m=817K): "
            "6 000 nodes, attachment 12, strong closure."
        ),
        builder=lambda: gen.powerlaw_cluster(6000, 12, 0.5, seed=105),
        paper_counterpart="FBWosn (FBW)",
        tier="medium",
    )
)
_register(
    DatasetSpec(
        name="DS",
        description=(
            "Sparse power-law substitute for Dogster (n=260K, m=2.15M): "
            "8 000 nodes, attachment 6, weak closure."
        ),
        builder=lambda: gen.powerlaw_cluster(8000, 6, 0.25, seed=106),
        paper_counterpart="Dogster (DS)",
        tier="medium",
    )
)
_register(
    DatasetSpec(
        name="SK",
        description=(
            "Sparse substitute for Skitter (n=1.7M, m=11M): 12 000 nodes, "
            "Barabási–Albert attachment 5 (low clustering, long tail)."
        ),
        builder=lambda: gen.barabasi_albert(12000, 5, seed=107),
        paper_counterpart="Skitter (SK)",
        tier="large",
    )
)
_register(
    DatasetSpec(
        name="FL",
        description=(
            "Clique-heavy substitute for Flickr (n=1.7M, m=15.6M, 548M "
            "triangles): 5 000 nodes, power-law cluster attachment 18, "
            "very strong closure."
        ),
        builder=lambda: gen.powerlaw_cluster(5000, 18, 0.8, seed=108),
        paper_counterpart="Flickr (FL)",
        tier="large",
    )
)
_register(
    DatasetSpec(
        name="LJ",
        description=(
            "Substitute for LiveJournal (n=5.2M, m=48.7M): 15 000 nodes, "
            "power-law cluster attachment 8, moderate closure."
        ),
        builder=lambda: gen.powerlaw_cluster(15000, 8, 0.35, seed=109),
        paper_counterpart="LiveJournal (LJ)",
        tier="large",
    )
)
_register(
    DatasetSpec(
        name="OR",
        description=(
            "Substitute for Orkut (n=3M, m=117M): 10 000 nodes, "
            "power-law cluster attachment 18, moderate closure."
        ),
        builder=lambda: gen.powerlaw_cluster(10000, 18, 0.5, seed=110),
        paper_counterpart="Orkut (OR)",
        tier="large",
    )
)

# ----------------------------------------------------------------------
# Paper Table IV small graphs (animal social networks + Football).
# ----------------------------------------------------------------------
_register(
    DatasetSpec(
        name="Swallow",
        description=(
            "Substitute for the barn-swallow contact network "
            "(n=17, m=53): dense G(n, m) at the same size."
        ),
        builder=lambda: gen.erdos_renyi_gnm(17, 53, seed=201),
        paper_counterpart="Swallow",
        tier="tiny",
    )
)
_register(
    DatasetSpec(
        name="Tortoise",
        description=(
            "Substitute for the desert-tortoise network (n=35, m=104): "
            "planted partition, 6 burrow communities."
        ),
        builder=lambda: gen.planted_partition(35, 6, 0.55, 0.08, seed=202),
        paper_counterpart="Tortoise",
        tier="tiny",
    )
)
_register(
    DatasetSpec(
        name="Lizard",
        description=(
            "Substitute for the sleepy-lizard network (n=60, m=318): "
            "dense planted partition, 5 communities."
        ),
        builder=lambda: gen.planted_partition(60, 5, 0.48, 0.09, seed=203),
        paper_counterpart="Lizard",
        tier="tiny",
    )
)
_register(
    DatasetSpec(
        name="Voles",
        description=(
            "Substitute for the field-vole trapping network "
            "(n=181, m=515): planted partition, 24 communities."
        ),
        builder=lambda: gen.planted_partition(181, 24, 0.55, 0.012, seed=204),
        paper_counterpart="Voles",
        tier="tiny",
    )
)

SMALL_EXACT_NAMES = ["Swallow", "Tortoise", "Lizard", "FTB", "Voles", "HST"]
TABLE1_NAMES = ["FTB", "HST", "FB", "FBP", "FBW", "DS", "SK", "FL", "LJ", "OR"]


# ----------------------------------------------------------------------
# Real classics via networkx (optional dependency, used in tests/examples)
# ----------------------------------------------------------------------
def networkx_classic(name: str) -> Graph:
    """Load a classic real-world graph shipped with networkx.

    Supported names: ``karate``, ``davis``, ``florentine``,
    ``les_miserables``. Raises :class:`InvalidParameterError` for unknown
    names and ``ImportError`` when networkx is unavailable.
    """
    import networkx as nx

    loaders = {
        "karate": nx.karate_club_graph,
        "davis": lambda: nx.bipartite.projected_graph(
            nx.davis_southern_women_graph(),
            [n for n, d in nx.davis_southern_women_graph().nodes(data=True)
             if d.get("bipartite") == 0],
        ),
        "florentine": nx.florentine_families_graph,
        "les_miserables": nx.les_miserables_graph,
    }
    if name not in loaders:
        raise InvalidParameterError(
            f"unknown classic {name!r}; available: {sorted(loaders)}"
        )
    nxg = loaders[name]()
    mapping = {label: i for i, label in enumerate(sorted(nxg.nodes(), key=str))}
    edges = [(mapping[a], mapping[b]) for a, b in nxg.edges() if a != b]
    return Graph(len(mapping), edges)
