"""Mutable undirected graph supporting O(1) edge insertions and deletions.

The dynamic-maintenance algorithms (Section V of the paper) interleave
edge updates with local clique searches, so the structure keeps plain
``set`` adjacency. A :meth:`snapshot` produces the immutable
:class:`repro.graph.graph.Graph` consumed by the static algorithms, e.g.
for rebuild-from-scratch comparisons (Table VIII).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import GraphError

if TYPE_CHECKING:  # deferred at runtime: graph.py imports this module
    from repro.graph.graph import Graph

Edge = tuple[int, int]


class DynamicGraph:
    """A simple undirected graph on ``0 .. n-1`` with edge updates."""

    __slots__ = ("_n", "_m", "_adj")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self._n = n
        self._m = 0
        self._adj: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            self.insert_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``; return ``False`` if it already existed."""
        self._check(u, v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete edge ``(u, v)``; return ``False`` if it was absent."""
        self._check(u, v)
        if v not in self._adj[u]:
            return False
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1
        return True

    def insert_edges(self, edges: Iterable[Edge]) -> int:
        """Bulk insert; returns how many edges were actually created."""
        return sum(1 for u, v in edges if self.insert_edge(u, v))

    def delete_edges(self, edges: Iterable[Edge]) -> int:
        """Bulk delete; returns how many edges were actually removed."""
        return sum(1 for u, v in edges if self.delete_edge(u, v))

    def add_node(self) -> int:
        """Append an isolated node and return its id."""
        self._adj.append(set())
        self._n += 1
        return self._n - 1

    def _check(self, u: int, v: int) -> None:
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(f"edge ({u}, {v}) outside node range [0, {self._n})")

    # ------------------------------------------------------------------
    # Accessors (mirror the static Graph API)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return len(self._adj[u])

    def neighbors(self, u: int) -> set[int]:
        """Neighbour set of ``u`` (live view; do not mutate)."""
        return self._adj[u]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` exists."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return v in self._adj[u]

    def nodes(self) -> range:
        """Iterate node ids."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate each edge once as ``(min, max)``."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def is_clique(self, nodes: Iterable[int]) -> bool:
        """Whether ``nodes`` induce a complete subgraph."""
        node_list = list(nodes)
        if len(set(node_list)) != len(node_list):
            return False
        for i, u in enumerate(node_list):
            adj_u = self._adj[u]
            for v in node_list[i + 1 :]:
                if v not in adj_u:
                    return False
        return True

    def snapshot(self) -> "Graph":
        """Freeze into an immutable :class:`repro.graph.graph.Graph`."""
        from repro.graph.graph import Graph

        return Graph(self._n, list(self.edges()))

    @classmethod
    def from_graph(cls, graph: "Graph") -> "DynamicGraph":
        """Thaw an immutable :class:`repro.graph.graph.Graph`."""
        return cls(graph.n, graph.edges())

    def __repr__(self) -> str:
        return f"DynamicGraph(n={self._n}, m={self._m})"
