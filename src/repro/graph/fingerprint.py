"""Content-addressed graph identity (edge-set hashing).

Answers "are these two graphs the same graph?" by value rather than by
object: a SHA-256 digest over the node count and the canonical
(lexicographically sorted, undirected) edge array. The serving layer
keys its session pool on this — tenants that built equal graphs
independently share one warm session — but the function itself is a
pure graph property, which is why it lives here rather than up in
:mod:`repro.serve`.

The digest is computed from the graph's CSR view — sorted int64 rows —
so it is invariant under edge insertion order and duplicate edges, and
costs one ``indptr``/``cols`` serialisation rather than a Python-level
edge sort.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

#: Fingerprints are prefixed so logs and wire payloads are self-describing.
_PREFIX = "g1-"


def graph_fingerprint(graph: Graph) -> str:
    """SHA-256 content hash of ``graph``'s edge set (and node count).

    Properties relied on by the session pool and its tests:

    * **stability** — equal graphs (same ``n``, same undirected edge
      set) hash identically regardless of construction order;
    * **sensitivity** — adding/removing an edge, or changing ``n``
      (isolated nodes count: they change coverage denominators), yields
      a different fingerprint;
    * **portability** — the digest only covers little-endian int64
      arrays, so it is stable across processes and platforms.
    """
    if not isinstance(graph, Graph):
        raise InvalidParameterError(
            f"can only fingerprint a repro Graph, got {type(graph).__name__}; "
            "call .snapshot() on DynamicGraph first"
        )
    csr = graph.csr()
    digest = hashlib.sha256()
    digest.update(np.int64(graph.n).tobytes())
    digest.update(np.ascontiguousarray(csr.indptr, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(csr.cols, dtype="<i8").tobytes())
    return _PREFIX + digest.hexdigest()
