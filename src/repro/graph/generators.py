"""Seeded random-graph generators used for datasets and experiments.

All generators return :class:`repro.graph.graph.Graph` and take an integer
``seed`` so every experiment in this repository is reproducible bit-for-
bit. The Watts–Strogatz model is the one the paper's synthetic evaluation
uses (Section VI-D); the others provide the density/community regimes of
its real-world datasets (see DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi_gnm(n: int, m: int, seed: int | None = None) -> Graph:
    """Uniform random graph with exactly ``n`` nodes and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise InvalidParameterError(f"m={m} exceeds max edges {max_edges} for n={n}")
    rng = _rng(seed)
    edges: set[tuple[int, int]] = set()
    # Dense regime: sample from the full edge universe without replacement.
    if max_edges and m > max_edges // 2:
        idx = rng.choice(max_edges, size=m, replace=False)
        for e in idx:
            u = int((1 + np.sqrt(1 + 8 * e)) // 2)
            v = int(e - u * (u - 1) // 2)
            edges.add((v, u))
    else:
        while len(edges) < m:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v:
                edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges))


def erdos_renyi_gnp(n: int, p: float, seed: int | None = None) -> Graph:
    """G(n, p) random graph via geometric edge skipping (O(n + m))."""
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    if p == 0.0:
        return Graph(n, edges)
    if p == 1.0:
        return complete_graph(n)
    lp = np.log1p(-p)
    if lp == 0.0:
        # p is below float resolution: no edge fires in n(n-1)/2 trials.
        return Graph(n, edges)
    max_skip = n * n + 1  # past the last possible edge slot
    v, w = 1, -1
    while v < n:
        with np.errstate(over="ignore", divide="ignore"):
            skip = np.log(1.0 - rng.random()) / lp
        w += 1 + int(min(skip, max_skip))
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            edges.append((w, v))
    return Graph(n, edges)


def complete_graph(n: int) -> Graph:
    """K_n."""
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def watts_strogatz(n: int, degree: int, p: float, seed: int | None = None) -> Graph:
    """Watts–Strogatz small-world graph (the paper's synthetic model).

    Starts from a ring lattice where each node connects to ``degree // 2``
    neighbours on each side, then rewires each edge's far endpoint with
    probability ``p``. ``degree`` must be even and less than ``n``.
    """
    if degree % 2 or degree >= n:
        raise InvalidParameterError(
            f"degree must be even and < n; got degree={degree}, n={n}"
        )
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    half = degree // 2
    adj: list[set[int]] = [set() for _ in range(n)]

    def add(u: int, v: int) -> None:
        adj[u].add(v)
        adj[v].add(u)

    for u in range(n):
        for j in range(1, half + 1):
            add(u, (u + j) % n)
    for j in range(1, half + 1):
        for u in range(n):
            v = (u + j) % n
            if rng.random() < p and v in adj[u]:
                candidates = n - 1 - len(adj[u])
                if candidates <= 0:
                    continue
                w = int(rng.integers(n))
                while w == u or w in adj[u]:
                    w = int(rng.integers(n))
                adj[u].discard(v)
                adj[v].discard(u)
                add(u, w)
    edges = [(u, v) for u in range(n) for v in sorted(adj[u]) if u < v]
    return Graph(n, edges)


def barabasi_albert(n: int, m_attach: int, seed: int | None = None) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Each arriving node attaches to ``m_attach`` existing nodes sampled
    proportionally to degree (repeated-node trick).
    """
    if m_attach < 1 or m_attach >= n:
        raise InvalidParameterError(
            f"m_attach must be in [1, n); got m_attach={m_attach}, n={n}"
        )
    rng = _rng(seed)
    edges: list[tuple[int, int]] = []
    repeated: list[int] = list(range(m_attach))
    for u in range(m_attach, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            pick = repeated[int(rng.integers(len(repeated)))] if repeated else int(
                rng.integers(u)
            )
            targets.add(pick)
        for v in targets:
            edges.append((v, u))
            repeated.append(v)
        repeated.extend([u] * m_attach)
    return Graph(n, edges)


def powerlaw_cluster(
    n: int, m_attach: int, triangle_p: float, seed: int | None = None
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment a
    triangle-closing step connects to a random neighbour of the previous
    target with probability ``triangle_p``. High ``triangle_p`` produces
    the clique-rich profile of real social networks.
    """
    if m_attach < 1 or m_attach >= n:
        raise InvalidParameterError(
            f"m_attach must be in [1, n); got m_attach={m_attach}, n={n}"
        )
    if not 0.0 <= triangle_p <= 1.0:
        raise InvalidParameterError(f"triangle_p must be in [0, 1], got {triangle_p}")
    rng = _rng(seed)
    adj: list[set[int]] = [set() for _ in range(n)]
    repeated: list[int] = list(range(m_attach))

    def add(u: int, v: int) -> bool:
        if u == v or v in adj[u]:
            return False
        adj[u].add(v)
        adj[v].add(u)
        repeated.append(v)
        return True

    for u in range(m_attach, n):
        added = 0
        last_target: int | None = None
        while added < m_attach:
            if (
                last_target is not None
                and rng.random() < triangle_p
                and adj[last_target]
            ):
                # int-element set: CPython hashes ints identically under
                # every PYTHONHASHSEED, so this iteration order is a pure
                # function of the seeded insertion sequence. Sorting here
                # would re-deal every pinned powerlaw instance downstream.
                pool = [w for w in adj[last_target] if w != u and w not in adj[u]]  # repro-lint: ignore=iterorder
                if pool:
                    v = pool[int(rng.integers(len(pool)))]
                    add(u, v)
                    added += 1
                    last_target = v
                    continue
            v = repeated[int(rng.integers(len(repeated)))]
            if add(u, v):
                added += 1
                last_target = v
        repeated.extend([u] * m_attach)
    edges = [(u, v) for u in range(n) for v in sorted(adj[u]) if u < v]
    return Graph(n, edges)


def planted_partition(
    n: int,
    communities: int,
    p_in: float,
    p_out: float,
    seed: int | None = None,
) -> Graph:
    """Planted-partition (stochastic block) graph with equal communities."""
    if communities < 1 or communities > n:
        raise InvalidParameterError(
            f"communities must be in [1, n]; got {communities}, n={n}"
        )
    rng = _rng(seed)
    labels = np.arange(n) % communities
    edges: list[tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if labels[u] == labels[v] else p_out
            if rng.random() < p:
                edges.append((u, v))
    return Graph(n, edges)


def planted_clique_packing(
    num_cliques: int,
    k: int,
    extra_nodes: int = 0,
    noise_edges: int = 0,
    seed: int | None = None,
) -> tuple[Graph, list[frozenset[int]]]:
    """Graph that provably contains ``num_cliques`` disjoint k-cliques.

    Builds ``num_cliques`` vertex-disjoint copies of K_k plus
    ``extra_nodes`` isolated fillers, then sprinkles ``noise_edges``
    random edges *between* different cliques/fillers (never inside, so
    the planted packing stays identifiable). Returns the graph and the
    planted cliques — a ground-truth oracle for solver tests: the optimum
    is at least ``num_cliques``.
    """
    rng = _rng(seed)
    n = num_cliques * k + extra_nodes
    edges: list[tuple[int, int]] = []
    planted: list[frozenset[int]] = []
    for c in range(num_cliques):
        members = list(range(c * k, (c + 1) * k))
        planted.append(frozenset(members))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.append((u, v))
    block = np.arange(n) // k
    block[num_cliques * k :] = -np.arange(1, extra_nodes + 1)
    existing = set(edges)
    added = 0
    attempts = 0
    while added < noise_edges and attempts < 50 * max(noise_edges, 1):
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v or block[u] == block[v]:
            continue
        e = (min(u, v), max(u, v))
        if e in existing:
            continue
        existing.add(e)
        edges.append(e)
        added += 1
    return Graph(n, edges), planted


def ring_of_cliques(num_cliques: int, k: int) -> Graph:
    """``num_cliques`` k-cliques joined in a ring by single bridge edges.

    A classic worst-ish case for greedy packers: the bridges create
    overlapping near-cliques without changing the optimum.
    """
    n = num_cliques * k
    edges: list[tuple[int, int]] = []
    for c in range(num_cliques):
        members = list(range(c * k, (c + 1) * k))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.append((u, v))
        bridge_from = members[-1]
        bridge_to = ((c + 1) % num_cliques) * k
        if bridge_from != bridge_to:
            edges.append((min(bridge_from, bridge_to), max(bridge_from, bridge_to)))
    return Graph(n, edges)
