"""Static undirected graph used by every algorithm in this package.

The paper's algorithms operate on simple undirected graphs with nodes
labelled ``0 .. n-1``. :class:`Graph` stores adjacency twice:

* a list of Python ``set`` objects — the substrate of the ``"sets"``
  enumeration backend and of incremental neighbourhood queries, and
* a CSR view (:mod:`repro.graph.csr`) built lazily — sorted int64 row
  arrays powering the numpy bulk statistics *and* the ``"csr"``
  enumeration backend (oriented CSR construction, vectorised k-clique
  counting/scoring; see :mod:`repro.cliques.csr_kernels`).

Instances are immutable after construction; the dynamic-maintenance code
uses :class:`repro.graph.dynamic.DynamicGraph` instead and converts via
:meth:`Graph.from_dynamic` / :meth:`DynamicGraph.snapshot`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.concurrency import make_lock
from repro.errors import GraphError

if TYPE_CHECKING:  # deferred at runtime: csr imports graph
    from repro.graph.csr import CSRAdjacency
    from repro.graph.dynamic import DynamicGraph

Edge = tuple[int, int]


def _canonical(u: int, v: int) -> Edge:
    """Return the edge ``(u, v)`` with endpoints in ascending order."""
    return (u, v) if u < v else (v, u)


class Graph:
    """An immutable simple undirected graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes. Isolated nodes are allowed, so ``n`` may exceed
        the largest endpoint seen in ``edges``.
    edges:
        Iterable of ``(u, v)`` pairs. Self-loops raise :class:`GraphError`;
        duplicate edges (in either orientation) are silently merged, which
        matches how the paper's datasets are cleaned.
    """

    __slots__ = ("_n", "_m", "_adj", "_degrees", "_csr_cache", "_lock")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        adj: list[set[int]] = [set() for _ in range(n)]
        m = 0
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop on node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) outside node range [0, {n})")
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                m += 1
        self._n = n
        self._m = m
        self._adj = adj
        self._degrees = np.fromiter((len(s) for s in adj), dtype=np.int64, count=n)
        self._csr_cache = None
        # Guards the lazy CSR memo: sessions are shared across serving
        # worker threads, and an unguarded first call from two threads
        # duplicates the O(n + m) build.
        self._lock = make_lock("Graph._lock")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def degrees(self) -> np.ndarray:
        """Read-only int64 array of node degrees."""
        return self._degrees

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return len(self._adj[u])

    def neighbors(self, u: int) -> set[int]:
        """The neighbour set of ``u`` (do not mutate)."""
        return self._adj[u]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return v in self._adj[u]

    def nodes(self) -> range:
        """Iterate node ids ``0 .. n-1``."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate each undirected edge once, as ``(min, max)`` pairs."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for the empty graph)."""
        return int(self._degrees.max()) if self._n else 0

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def csr(self) -> "CSRAdjacency":
        """Lazily-built CSR adjacency view (see :mod:`repro.graph.csr`)."""
        if self._csr_cache is None:
            from repro.graph.csr import CSRAdjacency

            with self._lock:
                if self._csr_cache is None:
                    self._csr_cache = CSRAdjacency.from_graph(self)
        return self._csr_cache

    def subgraph(self, nodes: Iterable[int]) -> "Graph":
        """Induced subgraph on ``nodes``, relabelled to ``0 .. len-1``.

        Returns a new :class:`Graph`; use :meth:`subgraph_with_mapping`
        when the original labels are needed afterwards.
        """
        sub, _ = self.subgraph_with_mapping(nodes)
        return sub

    def subgraph_with_mapping(self, nodes: Iterable[int]) -> tuple["Graph", list[int]]:
        """Induced subgraph plus the list mapping new ids to original ids."""
        keep = sorted(set(nodes))
        index = {orig: new for new, orig in enumerate(keep)}
        edges = [
            (index[u], index[v])
            for u in keep
            for v in sorted(self._adj[u])
            if u < v and v in index
        ]
        return Graph(len(keep), edges), keep

    def complement(self) -> "Graph":
        """Complement graph (intended for small instances only)."""
        edges = [
            (u, v)
            for u in range(self._n)
            for v in range(u + 1, self._n)
            if v not in self._adj[u]
        ]
        return Graph(self._n, edges)

    def is_clique(self, nodes: Sequence[int]) -> bool:
        """Whether ``nodes`` induce a complete subgraph (all distinct)."""
        node_list = list(nodes)
        if len(set(node_list)) != len(node_list):
            return False
        for i, u in enumerate(node_list):
            adj_u = self._adj[u]
            for v in node_list[i + 1 :]:
                if v not in adj_u:
                    return False
        return True

    def remove_edges(self, edges: Iterable[Edge]) -> "Graph":
        """New graph with the given edges deleted (either orientation)."""
        gone = {_canonical(u, v) for u, v in edges}
        kept = [e for e in self.edges() if e not in gone]
        return Graph(self._n, kept)

    def add_edges(self, edges: Iterable[Edge]) -> "Graph":
        """New graph with the given edges added (duplicates merged)."""
        return Graph(self._n, list(self.edges()) + [_canonical(u, v) for u, v in edges])

    def remove_nodes(self, nodes: Iterable[int]) -> "Graph":
        """New graph with ``nodes`` (and incident edges) deleted.

        Node ids are preserved; removed ids become isolated. This mirrors
        the paper's "residual graph" wording without relabelling.
        """
        gone = set(nodes)
        edges = [
            (u, v) for (u, v) in self.edges() if u not in gone and v not in gone
        ]
        return Graph(self._n, edges)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge], n: int | None = None) -> "Graph":
        """Build a graph from an edge iterable, inferring ``n`` if omitted."""
        edge_list = [_canonical(u, v) for u, v in edges]
        if n is None:
            n = 1 + max((max(e) for e in edge_list), default=-1)
        return cls(n, edge_list)

    @classmethod
    def from_dynamic(cls, dyn: "DynamicGraph") -> "Graph":
        """Freeze a :class:`repro.graph.dynamic.DynamicGraph`."""
        return cls(dyn.n, dyn.edges())

    @classmethod
    def from_csr_arrays(cls, indptr: np.ndarray, cols: np.ndarray) -> "Graph":
        """Rebuild a graph from undirected CSR arrays, reusing them zero-copy.

        The attach path of the process tier (:mod:`repro.parallel`):
        worker processes map the parent's flat int64 ``indptr`` /
        ``cols`` arrays from shared memory and reconstruct an equal
        :class:`Graph` without pickling edges. The arrays are adopted
        as the instance's CSR cache **without copying**, so
        :meth:`csr` is free and :func:`repro.graph.fingerprint.graph_fingerprint`
        (which hashes exactly these arrays) matches the parent's — the
        checkpoint-restore fingerprint guard holds across the process
        boundary. The arrays must describe a valid simple undirected
        graph (each edge present in both rows, rows sorted ascending,
        no self-loops) and must be treated as immutable afterwards.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        n = len(indptr) - 1
        from repro.graph.csr import CSRAdjacency, adjacency_sets

        graph = cls.__new__(cls)
        graph._n = n
        graph._m = len(cols) // 2
        graph._adj = adjacency_sets(indptr, cols)
        graph._degrees = np.diff(indptr)
        graph._csr_cache = CSRAdjacency(indptr, cols)
        graph._lock = make_lock("Graph._lock")
        return graph

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, u: int) -> bool:
        return 0 <= u < self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"
