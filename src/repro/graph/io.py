"""Edge-list graph I/O.

Supports the whitespace-separated edge-list format that KONECT and the
Network Repository distribute (``u v`` per line, ``%``/``#`` comments,
optional weight columns that are ignored). Node labels may be arbitrary
strings or non-contiguous integers; they are relabelled to ``0 .. n-1``
and the mapping is returned so results can be reported in original ids.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.errors import GraphError
from repro.graph.graph import Graph

_COMMENT_PREFIXES = ("%", "#")


def _open_text(path: str | Path) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def iter_edge_lines(lines: Iterable[str]) -> Iterator[tuple[str, str]]:
    """Yield ``(u_label, v_label)`` pairs from edge-list text lines.

    Skips blank lines and comments; ignores columns past the first two
    (KONECT stores weights/timestamps there). Raises :class:`GraphError`
    on lines with fewer than two fields.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected 'u v', got {raw!r}")
        yield parts[0], parts[1]


def read_edge_list(path: str | Path) -> tuple[Graph, dict[str, int]]:
    """Read an edge-list file into a graph.

    Returns ``(graph, label_to_id)``. Self-loops in the input are dropped
    (real-world dumps occasionally contain them); duplicates are merged.
    """
    label_to_id: dict[str, int] = {}
    edges: list[tuple[int, int]] = []
    with _open_text(path) as fh:
        for a, b in iter_edge_lines(fh):
            if a == b:
                continue
            u = label_to_id.setdefault(a, len(label_to_id))
            v = label_to_id.setdefault(b, len(label_to_id))
            edges.append((u, v))
    return Graph(len(label_to_id), edges), label_to_id


def parse_edge_list(text: str) -> Graph:
    """Parse edge-list text with integer labels into a graph.

    Convenience for tests and examples; labels must be integers and are
    used directly as node ids.
    """
    edges: list[tuple[int, int]] = []
    for a, b in iter_edge_lines(text.splitlines()):
        u, v = int(a), int(b)
        if u != v:
            edges.append((u, v))
    return Graph.from_edges(edges) if edges else Graph(0)


def write_edge_list(graph: Graph, path: str | Path, header: str | None = None) -> None:
    """Write a graph as a plain edge list (one ``u v`` line per edge)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"% {line}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
