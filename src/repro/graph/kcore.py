"""k-core decomposition and clique-aware preprocessing.

Every node of a k-clique has at least ``k - 1`` neighbours inside it, so
all k-cliques live in the ``(k-1)``-core. Pruning the graph to that core
before solving shrinks sparse instances dramatically without changing
the clique population — and therefore (because node scores and the
package's clique key are computed from cliques alone) without changing
the GC/L/LP solution either, which the test suite verifies.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def core_numbers(graph: Graph) -> np.ndarray:
    """Core number of every node (classic min-degree peeling).

    ``core[u]`` is the largest c such that u survives in the c-core.
    Runs in ``O(n + m)`` with bucketed peeling.
    """
    n = graph.n
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    deg = [graph.degree(u) for u in range(n)]
    max_deg = max(deg)
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for u in range(n):
        buckets[deg[u]].append(u)
    removed = [False] * n
    current = 0
    cursor = 0
    for _ in range(n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        while True:
            u = buckets[cursor].pop()
            if not removed[u] and deg[u] == cursor:
                break
            while cursor <= max_deg and not buckets[cursor]:
                cursor += 1
        removed[u] = True
        current = max(current, cursor)
        core[u] = current
        for v in graph.neighbors(u):
            if not removed[v]:
                deg[v] -= 1
                buckets[deg[v]].append(v)
                if deg[v] < cursor:
                    cursor = deg[v]
    return core


def kcore_nodes(graph: Graph, c: int) -> list[int]:
    """Nodes of the c-core (maximal subgraph with min degree >= c)."""
    core = core_numbers(graph)
    return [u for u in range(graph.n) if core[u] >= c]


def prune_for_cliques(graph: Graph, k: int) -> tuple[Graph, np.ndarray]:
    """Restrict to the (k-1)-core, preserving node ids.

    Returns ``(pruned_graph, kept_mask)`` where ``pruned_graph`` has the
    same node universe with non-core nodes isolated — so clique node ids
    remain directly comparable. Every k-clique of the input survives.
    """
    keep = set(kcore_nodes(graph, k - 1))
    mask = np.zeros(graph.n, dtype=bool)
    for u in keep:
        mask[u] = True
    edges = [(u, v) for u, v in graph.edges() if u in keep and v in keep]
    return Graph(graph.n, edges), mask
