"""Total node orderings used to orient graphs into DAGs.

The paper's algorithms are parameterised by a total ordering ``eta`` on
the nodes (Section IV-A discusses why the choice matters). An ordering is
represented here as a *rank array*: ``rank[u]`` is the position of node
``u`` in the total order, so ``eta(u) < eta(v)`` iff ``rank[u] < rank[v]``.

Provided orderings:

``by_id``
    Node id order (the paper's running example, Fig. 4).
``by_degree``
    Ascending degree, ties by id — the classic kClist ordering; the node
    with the largest degree has the largest rank.
``by_degeneracy``
    Smallest-last / core ordering via a bucketed min-degree peel. Gives the
    tightest out-degree bound for clique listing.
``by_score``
    Ascending node score (k-clique counts, Definition 5), ties by id —
    the ordering Algorithm 3 requires.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph

OrderingFn = Callable[[Graph], np.ndarray]

#: Anything :func:`resolve` accepts: a named ordering, an explicit rank
#: array (or any integer sequence), or an ordering callable.
OrderSpec = str | Sequence[int] | np.ndarray | OrderingFn


def rank_from_sequence(order: Sequence[int]) -> np.ndarray:
    """Convert an explicit node sequence into a rank array.

    ``order[i]`` is the node placed at position ``i``; the returned array
    maps node id to its position.
    """
    n = len(order)
    rank = np.empty(n, dtype=np.int64)
    rank[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
    return rank


def by_id(graph: Graph) -> np.ndarray:
    """Identity ordering: ``rank[u] = u``."""
    return np.arange(graph.n, dtype=np.int64)


def by_degree(graph: Graph) -> np.ndarray:
    """Ascending-degree ordering with id tie-breaks."""
    order = np.lexsort((np.arange(graph.n), graph.degrees))
    return rank_from_sequence(order)


def by_degeneracy(graph: Graph) -> np.ndarray:
    """Smallest-last (degeneracy) ordering via bucketed peeling.

    Repeatedly removes a minimum-residual-degree node; the removal
    sequence becomes the total order. Runs in ``O(n + m)``.
    """
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    deg = [graph.degree(u) for u in range(n)]
    max_deg = max(deg) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for u in range(n):
        buckets[deg[u]].append(u)
    removed = [False] * n
    order: list[int] = []
    cursor = 0
    for _ in range(n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        # Pop until we find a live node whose recorded degree is current.
        while True:
            u = buckets[cursor].pop()
            if not removed[u] and deg[u] == cursor:
                break
            while cursor <= max_deg and not buckets[cursor]:
                cursor += 1
        removed[u] = True
        order.append(u)
        for v in graph.neighbors(u):
            if not removed[v]:
                deg[v] -= 1
                buckets[deg[v]].append(v)
                if deg[v] < cursor:
                    cursor = deg[v]
    return rank_from_sequence(order)


def degeneracy(graph: Graph) -> int:
    """The graph degeneracy (maximum core number)."""
    n = graph.n
    if n == 0:
        return 0
    rank = by_degeneracy(graph)
    best = 0
    for u in range(n):
        later = sum(1 for v in graph.neighbors(u) if rank[v] > rank[u])
        best = max(best, later)
    return best


def by_score(graph: Graph, scores: Sequence[int]) -> np.ndarray:
    """Ascending node-score ordering with id tie-breaks (Algorithm 3)."""
    if len(scores) != graph.n:
        raise InvalidParameterError(
            f"scores has length {len(scores)}, expected n={graph.n}"
        )
    order = np.lexsort((np.arange(graph.n), np.asarray(scores, dtype=np.int64)))
    return rank_from_sequence(order)


_NAMED: dict[str, OrderingFn] = {
    "id": by_id,
    "degree": by_degree,
    "degeneracy": by_degeneracy,
}


def resolve(name_or_rank: OrderSpec, graph: Graph) -> np.ndarray:
    """Resolve an ordering argument into a rank array.

    Accepts a name in ``{"id", "degree", "degeneracy"}``, a rank array of
    length ``n``, or a callable ``graph -> rank array``.
    """
    if isinstance(name_or_rank, str):
        try:
            return _NAMED[name_or_rank](graph)
        except KeyError:
            raise InvalidParameterError(
                f"unknown ordering {name_or_rank!r}; expected one of {sorted(_NAMED)}"
            ) from None
    if callable(name_or_rank):
        return np.asarray(name_or_rank(graph), dtype=np.int64)
    rank = np.asarray(name_or_rank, dtype=np.int64)
    if rank.shape != (graph.n,):
        raise InvalidParameterError(
            f"rank array has shape {rank.shape}, expected ({graph.n},)"
        )
    return rank
