"""k-uniform hypergraphs and the Exact Cover by k-Sets reduction (Theorem 1)."""

from repro.hypergraph.kuniform import KUniformHypergraph, random_exact_cover_instance

__all__ = ["KUniformHypergraph", "random_exact_cover_instance"]
