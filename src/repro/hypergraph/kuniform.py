"""k-uniform hypergraphs, the XkC reduction and an exact-cover solver.

Theorem 1 proves NP-hardness by reducing Exact Cover by k-Sets (XkC) to
the disjoint k-clique problem: turn each hyperedge into a k-clique. This
module implements that reduction plus a small exact solver, giving the
test suite instances with *known* optima: if the hypergraph admits an
exact cover of its ``n`` nodes, the reduced graph contains ``n/k``
disjoint k-cliques covering every node, and no larger disjoint set can
exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

from repro.errors import InvalidParameterError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class KUniformHypergraph:
    """A k-uniform hypergraph on nodes ``0 .. n-1``.

    Attributes
    ----------
    n:
        Number of nodes.
    k:
        Uniform hyperedge size.
    edges:
        Hyperedges as sorted tuples of ``k`` distinct node ids.
    """

    n: int
    k: int
    edges: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {self.k}")
        for edge in self.edges:
            if len(set(edge)) != self.k:
                raise InvalidParameterError(
                    f"hyperedge {edge} does not have {self.k} distinct nodes"
                )
            if any(not 0 <= u < self.n for u in edge):
                raise InvalidParameterError(f"hyperedge {edge} outside [0, {self.n})")

    @classmethod
    def from_edges(
        cls, n: int, k: int, edges: Iterable[Iterable[int]]
    ) -> "KUniformHypergraph":
        """Build from any iterable of node collections."""
        return cls(n, k, tuple(tuple(sorted(e)) for e in edges))

    def to_graph(self) -> Graph:
        """Theorem 1's reduction: each hyperedge becomes a k-clique.

        Runs in ``O(|E_H| * C(k, 2))`` — polynomial for fixed k, as the
        proof requires.
        """
        pair_edges = [
            (edge[i], edge[j])
            for edge in self.edges
            for i in range(self.k)
            for j in range(i + 1, self.k)
        ]
        return Graph(self.n, pair_edges)

    def has_exact_cover(self) -> bool:
        """Whether some subset of disjoint hyperedges covers all nodes."""
        return self.exact_cover() is not None

    def exact_cover(self) -> list[tuple[int, ...]] | None:
        """An exact cover (disjoint hyperedges covering V), or ``None``.

        Backtracking on the lowest uncovered node with memoisation on the
        uncovered-set bitmask; exponential worst case, fine for the test
        instances (n <= ~40).
        """
        if self.n % self.k:
            return None
        by_node: list[list[tuple[int, ...]]] = [[] for _ in range(self.n)]
        for edge in self.edges:
            by_node[edge[0]].append(edge)  # edges are sorted; index by min node

        masks = {
            edge: sum(1 << u for u in edge) for edge in self.edges
        }
        full = (1 << self.n) - 1

        @lru_cache(maxsize=None)
        def solve(covered: int) -> tuple[tuple[int, ...], ...] | None:
            if covered == full:
                return ()
            lowest = (~covered & full)
            u = (lowest & -lowest).bit_length() - 1
            for edge in by_node[u]:
                mask = masks[edge]
                if covered & mask:
                    continue
                rest = solve(covered | mask)
                if rest is not None:
                    return (edge,) + rest
            return None

        result = solve(0)
        solve.cache_clear()
        return list(result) if result is not None else None

    def max_matching_size(self) -> int:
        """Maximum number of pairwise disjoint hyperedges (exact, small n)."""
        edge_masks = sorted({sum(1 << u for u in e) for e in self.edges})

        best = 0
        suffix = len(edge_masks)

        def extend(idx: int, used: int, count: int) -> None:
            nonlocal best
            best = max(best, count)
            if count + (suffix - idx) <= best:
                return
            for i in range(idx, len(edge_masks)):
                mask = edge_masks[i]
                if not used & mask:
                    extend(i + 1, used | mask, count + 1)

        extend(0, 0, 0)
        return best


def random_exact_cover_instance(
    groups: int, k: int, extra_edges: int, seed: int | None = None
) -> KUniformHypergraph:
    """A k-uniform hypergraph guaranteed to admit an exact cover.

    Partitions ``groups * k`` nodes into ``groups`` planted hyperedges,
    then adds ``extra_edges`` random distractor hyperedges.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    n = groups * k
    planted = [tuple(range(g * k, (g + 1) * k)) for g in range(groups)]
    edges = set(planted)
    attempts = 0
    while len(edges) < groups + extra_edges and attempts < 100 * (extra_edges + 1):
        attempts += 1
        pick = tuple(sorted(rng.choice(n, size=k, replace=False).tolist()))
        edges.add(pick)
    return KUniformHypergraph.from_edges(n, k, sorted(edges))
