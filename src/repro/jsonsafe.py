"""Coerce arbitrary payloads into ``json.dumps``-safe structures.

Checkpoints (:meth:`repro.core.task.SolveTask.checkpoint`) and NDJSON
protocol envelopes (:mod:`repro.serve.protocol`) are JSON-bound by
contract, but the values flowing into them come from numpy-heavy code:
option dataclasses with ``object``-typed fields can carry an
``np.ndarray`` ordering, engines count in ``np.int64``. ``json.dumps``
raises ``TypeError`` on all of these — at serialisation time, on
whichever rarely exercised path let one through.

:func:`json_safe` is the single sanitiser those boundaries funnel
through. It converts, recursively:

* numpy scalars (``np.integer`` / ``np.floating`` / ``np.bool_``) to
  the matching Python scalar;
* numpy arrays to (nested) lists;
* mappings to plain ``dict`` with ``str`` keys;
* sets/frozensets to *sorted* lists (deterministic output, and the
  repo's clique sets are always sortable);
* tuples and other iterables to lists.

Values that are already JSON-representable pass through unchanged. The
conversion is total: anything unrecognised is rejected with
``TypeError`` naming the offending type, so a new unserialisable type
fails at the boundary with a clear message instead of deep inside
``json.dumps``.

This module sits at layer 0 of the import DAG (stdlib + optional numpy
only) so every layer may use it.
"""

from __future__ import annotations

from collections.abc import Mapping, Set
from typing import Any

try:  # numpy is an optional import here: pure-Python payloads still work
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the package
    _np = None  # type: ignore[assignment]

__all__ = ["json_safe"]


def json_safe(value: Any) -> Any:
    """Return ``value`` converted into a ``json.dumps``-safe structure.

    See the module docstring for the conversion table. Raises
    ``TypeError`` for values with no JSON representation.
    """
    if _np is not None:
        # Before the plain-scalar passthrough: np.float64 *subclasses*
        # float (and np.bool_ compares equal to bool) but should leave
        # this boundary as the exact builtin type.
        if isinstance(value, _np.bool_):
            return bool(value)
        if isinstance(value, _np.integer):
            return int(value)
        if isinstance(value, _np.floating):
            return float(value)
        if isinstance(value, _np.ndarray):
            return [json_safe(item) for item in value.tolist()]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, Set):
        return sorted(json_safe(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    raise TypeError(
        f"value of type {type(value).__name__} has no JSON-safe form: "
        f"{value!r}"
    )
