"""Matching substrates: blossom (k=2 exact) and greedy set packing."""

from repro.matching.blossom import is_matching, matching_size, maximum_matching
from repro.matching.greedy import greedy_set_packing, local_search_packing

__all__ = [
    "maximum_matching",
    "matching_size",
    "is_matching",
    "greedy_set_packing",
    "local_search_packing",
]
