"""Edmonds' blossom algorithm for maximum matching in general graphs.

Section III of the paper points out that for ``k = 2`` the disjoint
k-clique problem *is* maximum matching, solvable in polynomial time
([6], [31]-[34]). This module provides that boundary case exactly, so
``find_disjoint_cliques(g, k=2, method="opt")`` is optimal in
``O(n^3)`` instead of exponential.

Implementation: the classic BFS alternating-forest formulation with
blossom contraction via a ``base`` array (no explicit contraction),
following Gabow's presentation.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graph.graph import Graph


def maximum_matching(graph: Graph) -> list[tuple[int, int]]:
    """A maximum matching, as a list of ``(u, v)`` edges with ``u < v``.

    Deterministic: augmenting searches start from nodes in id order and
    scan neighbours in sorted order.
    """
    n = graph.n
    match = [-1] * n
    parent = [-1] * n
    base = list(range(n))
    in_queue = [False] * n
    in_blossom = [False] * n

    adj = [sorted(graph.neighbors(u)) for u in range(n)]

    def lca(a: int, b: int) -> int:
        """Lowest common ancestor of blossom bases in the alternating tree."""
        visited = [False] * n
        while True:
            a = base[a]
            visited[a] = True
            if match[a] == -1:
                break
            a = parent[match[a]]
        while True:
            b = base[b]
            if visited[b]:
                return b
            b = parent[match[b]]

    def mark_path(v: int, b: int, child: int) -> None:
        """Mark blossom nodes on the path from v up to base b."""
        while base[v] != b:
            in_blossom[base[v]] = True
            in_blossom[base[match[v]]] = True
            parent[v] = child
            child = match[v]
            v = parent[match[v]]

    def find_augmenting_path(root: int) -> int:
        """BFS from an exposed root; return the exposed endpoint or -1."""
        for i in range(n):
            parent[i] = -1
            base[i] = i
            in_queue[i] = False
        queue: deque[int] = deque([root])
        in_queue[root] = True
        while queue:
            v = queue.popleft()
            for to in adj[v]:
                if base[v] == base[to] or match[v] == to:
                    continue
                if to == root or (match[to] != -1 and parent[match[to]] != -1):
                    # Odd cycle: contract the blossom.
                    current_base = lca(v, to)
                    for i in range(n):
                        in_blossom[i] = False
                    mark_path(v, current_base, to)
                    mark_path(to, current_base, v)
                    for i in range(n):
                        if in_blossom[base[i]]:
                            base[i] = current_base
                            if not in_queue[i]:
                                in_queue[i] = True
                                queue.append(i)
                elif parent[to] == -1:
                    parent[to] = v
                    if match[to] == -1:
                        return to
                    if not in_queue[match[to]]:
                        in_queue[match[to]] = True
                        queue.append(match[to])
        return -1

    def augment(finish: int) -> None:
        """Flip matched/unmatched edges along the found path."""
        v = finish
        while v != -1:
            pv = parent[v]
            next_v = match[pv]
            match[v] = pv
            match[pv] = v
            v = next_v

    for u in range(n):
        if match[u] == -1:
            finish = find_augmenting_path(u)
            if finish != -1:
                augment(finish)

    return sorted(
        (u, match[u]) for u in range(n) if match[u] != -1 and u < match[u]
    )


def matching_size(graph: Graph) -> int:
    """Cardinality of a maximum matching."""
    return len(maximum_matching(graph))


def is_matching(graph: Graph, edges: Iterable[tuple[int, int]]) -> bool:
    """Whether ``edges`` is a valid matching of ``graph``."""
    seen: set[int] = set()
    for u, v in edges:
        if u == v or not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True
