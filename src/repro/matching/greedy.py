"""Greedy k-set packing over listed cliques (hypergraph-matching baseline).

Section III discusses approximating maximum matching in k-uniform
hypergraphs by inspecting hyperedges in a gain-maximising order. Applied
to our problem, each k-clique is a hyperedge; this module provides the
straightforward packing baselines on an explicit clique list — useful as
an independent reference implementation in tests (it must equal
Algorithm 2 when given the clique-score order) and for ablations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.result import CliqueSetResult


def greedy_set_packing(
    cliques: Iterable[Sequence[int]],
    k: int,
    key: Callable[[tuple[int, ...]], object] | None = None,
) -> CliqueSetResult:
    """Greedy disjoint packing of pre-listed k-cliques.

    Parameters
    ----------
    cliques:
        The candidate k-cliques (hyperedges).
    k:
        Clique size (for the result metadata).
    key:
        Optional sort key over canonical node tuples; ``None`` keeps the
        input order (first-fit).
    """
    canon = [tuple(sorted(c)) for c in cliques]
    if key is not None:
        canon.sort(key=key)
    used: set[int] = set()
    chosen: list[frozenset[int]] = []
    for clique in canon:
        if used.isdisjoint(clique):
            chosen.append(frozenset(clique))
            used.update(clique)
    return CliqueSetResult(chosen, k=k, method="set-packing")


def local_search_packing(
    cliques: Iterable[Sequence[int]],
    k: int,
    rounds: int = 2,
) -> CliqueSetResult:
    """First-fit packing improved by 1-to-2 swap local search.

    Repeatedly tries to remove one chosen clique and insert two disjoint
    unchosen cliques that only conflict with it — the simplest member of
    the local-improvement family ([23]-[28]) and the static analogue of
    the paper's dynamic swap operation.
    """
    all_cliques = [tuple(sorted(c)) for c in cliques]
    base = greedy_set_packing(all_cliques, k)
    chosen: list[frozenset[int]] = list(base.cliques)

    for _ in range(max(rounds, 0)):
        used: dict[int, int] = {}
        for idx, clique in enumerate(chosen):
            for u in clique:
                used[u] = idx
        improved = False
        # Conflict map: unchosen clique -> indices of chosen cliques hit.
        blockers: dict[int, list[tuple[int, ...]]] = {i: [] for i in range(len(chosen))}
        for clique in all_cliques:
            hit = {used[u] for u in clique if u in used}
            if len(hit) == 1:
                # Singleton set: pop() is deterministic by the guard.
                blockers[hit.pop()].append(clique)  # repro-lint: ignore=iterorder
        for idx in range(len(chosen)):
            candidates = blockers.get(idx, [])
            for i, a in enumerate(candidates):
                set_a = set(a)
                for b in candidates[i + 1 :]:
                    if set_a.isdisjoint(b):
                        chosen[idx] = frozenset(a)
                        chosen.append(frozenset(b))
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return CliqueSetResult(chosen, k=k, method="set-packing-ls")
