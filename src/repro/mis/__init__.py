"""Maximum-independent-set substrate: exact branch-and-bound and greedy."""

from repro.mis.exact import exact_mis, max_clique, mis_size
from repro.mis.greedy import greedy_mis, is_independent_set
from repro.mis.local_search import one_two_swap
from repro.mis.reductions import MISKernel, reduce_mis

__all__ = [
    "exact_mis",
    "max_clique",
    "mis_size",
    "greedy_mis",
    "is_independent_set",
    "one_two_swap",
    "reduce_mis",
    "MISKernel",
]
