"""Exact maximum independent set via branch-and-bound.

Strategy: kernelise with the safe reductions in
:mod:`repro.mis.reductions`, then observe that a maximum IS of the kernel
is a maximum clique of its complement. Clique graphs — the instances the
paper's ``OPT`` baseline solves — are *dense*, so their complements are
sparse, which is exactly where a Tomita-style max-clique search with a
greedy-colouring bound excels.

Bitsets are Python ints: ``adj[u]`` has bit ``v`` set iff ``(u, v)`` is an
edge. All set operations are single big-int instructions, which keeps the
inner loop allocation-free.

A wall-clock budget turns the solver into the paper's ``OOT`` behaviour:
:class:`repro.errors.OutOfTimeError` is raised when exceeded.
"""

from __future__ import annotations

import time

from repro.errors import OutOfTimeError
from repro.graph.graph import Graph
from repro.mis.reductions import reduce_mis


def _bit_indices(mask: int) -> list[int]:
    """Indices of set bits, ascending."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class _MaxCliqueSolver:
    """Tomita-style branch and bound with greedy colouring bound."""

    def __init__(self, adj: list[int], n: int, deadline: float | None) -> None:
        self.adj = adj
        self.n = n
        self.deadline = deadline
        self.best: list[int] = []
        self._ticks = 0

    def _check_time(self) -> None:
        self._ticks += 1
        if self.deadline is not None and not self._ticks % 256:
            if time.monotonic() > self.deadline:
                raise OutOfTimeError("exact MIS exceeded its time budget")

    def solve(self) -> list[int]:
        """Return one maximum clique (node list)."""
        if self.n == 0:
            return []
        # Initial ordering: degree descending helps the colour bound.
        order = sorted(range(self.n), key=lambda u: -bin(self.adj[u]).count("1"))
        full = 0
        for u in order:
            full |= 1 << u
        self._expand([], full)
        return sorted(self.best)

    def _colour_sort(self, candidates: int) -> list[tuple[int, int]]:
        """Greedy colouring of the candidate set.

        Returns ``(node, colour)`` pairs with colours non-decreasing; a
        node's colour is an upper bound on the clique size achievable from
        it and its predecessors in the list.
        """
        coloured: list[tuple[int, int]] = []
        remaining = candidates
        colour = 0
        while remaining:
            colour += 1
            available = remaining
            while available:
                low = available & -available
                v = low.bit_length() - 1
                coloured.append((v, colour))
                remaining ^= low
                available &= ~self.adj[v] & remaining
        return coloured

    def _expand(self, current: list[int], candidates: int) -> None:
        self._check_time()
        coloured = self._colour_sort(candidates)
        # Process highest colour first (classic MCS order).
        for v, colour in reversed(coloured):
            if len(current) + colour <= len(self.best):
                return
            current.append(v)
            nxt = candidates & self.adj[v]
            if nxt:
                self._expand(current, nxt)
            elif len(current) > len(self.best):
                self.best = current.copy()
            current.pop()
            candidates &= ~(1 << v)


def max_clique(graph: Graph, time_budget: float | None = None) -> list[int]:
    """One maximum clique of ``graph`` (sorted node list)."""
    n = graph.n
    adj = [0] * n
    for u, v in graph.edges():
        adj[u] |= 1 << v
        adj[v] |= 1 << u
    deadline = None if time_budget is None else time.monotonic() + time_budget
    return _MaxCliqueSolver(adj, n, deadline).solve()


def exact_mis(graph: Graph, time_budget: float | None = None) -> list[int]:
    """One maximum independent set of ``graph`` (sorted node list).

    Kernelises, then runs max-clique on the kernel's complement. Raises
    :class:`OutOfTimeError` when ``time_budget`` seconds elapse.
    """
    start = time.monotonic()
    kernel = reduce_mis(graph)
    k = kernel.kernel
    remaining = (
        None if time_budget is None else time_budget - (time.monotonic() - start)
    )
    if remaining is not None and remaining <= 0:
        raise OutOfTimeError("exact MIS exceeded its time budget during reduction")
    solution = max_clique(k.complement(), time_budget=remaining)
    return kernel.lift(solution)


def mis_size(graph: Graph, time_budget: float | None = None) -> int:
    """Size of a maximum independent set."""
    return len(exact_mis(graph, time_budget))
