"""Greedy minimum-degree maximum-independent-set heuristic.

The paper motivates its clique ordering by this exact heuristic on the
clique graph (Section IV-B): repeatedly take a minimum-degree node,
delete it and its neighbours. We use it both as an OPT-adjacent baseline
on small clique graphs and as the reference behaviour the clique-score
ordering emulates without building the clique graph.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.graph.graph import Graph


def greedy_mis(graph: Graph) -> list[int]:
    """Independent set from min-degree peeling (deterministic, id ties).

    Uses a lazy heap keyed by ``(residual_degree, id)``; stale entries are
    skipped on pop. Runs in ``O((n + m) log n)``.
    """
    n = graph.n
    alive = [True] * n
    degree = [graph.degree(u) for u in range(n)]
    heap = [(degree[u], u) for u in range(n)]
    heapq.heapify(heap)
    chosen: list[int] = []
    while heap:
        d, u = heapq.heappop(heap)
        if not alive[u] or d != degree[u]:
            continue
        chosen.append(u)
        alive[u] = False
        for v in graph.neighbors(u):
            if alive[v]:
                alive[v] = False
                for w in graph.neighbors(v):
                    if alive[w]:
                        degree[w] -= 1
                        heapq.heappush(heap, (degree[w], w))
    return sorted(chosen)


def is_independent_set(graph: Graph, nodes: Iterable[int]) -> bool:
    """Whether ``nodes`` is an independent set of ``graph``."""
    node_list = list(nodes)
    node_set = set(node_list)
    if len(node_set) != len(node_list):
        return False
    return all(
        not (graph.neighbors(u) & node_set - {u}) for u in node_set
    )
