"""(1,2)-swap local search for independent sets.

The classic local-improvement move from the set-packing literature the
paper surveys ([23]-[28]): repeatedly remove one chosen node and insert
two non-adjacent replacements whose only chosen neighbour it was. Used
as a quality reference between greedy MIS and the exact solver on
clique graphs, and as an independent cross-check of the swap idea the
dynamic maintainer applies at the clique level.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.mis.greedy import greedy_mis


def one_two_swap(graph: Graph, initial: list[int] | None = None, max_rounds: int = 50) -> list[int]:
    """Improve an independent set with (1,2)-swaps until local optimum.

    Parameters
    ----------
    graph:
        Input graph.
    initial:
        Starting independent set; defaults to min-degree greedy.
    max_rounds:
        Safety cap on improvement rounds (each round grows the set, so
        ``n`` rounds is a hard bound anyway).

    Returns
    -------
    list[int]
        A maximal independent set at least as large as the input, sorted.
    """
    chosen: set[int] = set(initial if initial is not None else greedy_mis(graph))
    for _ in range(max_rounds):
        # Free nodes whose sole chosen neighbour is some u -> grouped by u.
        exclusive: dict[int, list[int]] = {}
        for v in graph.nodes():
            if v in chosen:
                continue
            hits = graph.neighbors(v) & chosen
            if len(hits) == 1:
                exclusive.setdefault(next(iter(hits)), []).append(v)
            elif not hits:
                # Not even blocked: plain insertion (keeps set maximal).
                chosen.add(v)
        improved = False
        for u, frees in exclusive.items():
            if u not in chosen:
                continue
            for i, a in enumerate(frees):
                non_adjacent = [
                    b for b in frees[i + 1 :] if b not in graph.neighbors(a)
                ]
                if non_adjacent:
                    b = non_adjacent[0]
                    chosen.discard(u)
                    chosen.add(a)
                    chosen.add(b)
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return sorted(chosen)
