"""Kernelisation reductions for maximum independent set.

The exact baseline (paper's ``OPT``, via ref [42] branch-and-reduce)
first shrinks the instance with safe reductions, then branches. We
implement the three classic safe rules:

* **degree-0**: an isolated node is always in some maximum IS — take it.
* **degree-1** (pendant): a node ``u`` with single neighbour ``v`` can be
  taken and ``v`` discarded.
* **domination**: if ``N[u] ⊆ N[v]`` (closed neighbourhoods) then some
  maximum IS avoids ``v`` — delete ``v``.

Reductions run to fixpoint and return the kernel with a mapping back to
original ids plus the set of nodes already forced into the solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.graph.graph import Graph


@dataclass
class MISKernel:
    """Result of reducing a MIS instance.

    Attributes
    ----------
    kernel:
        The reduced graph (relabelled ``0 .. n'-1``).
    mapping:
        ``mapping[i]`` is the original id of kernel node ``i``.
    forced:
        Original ids already decided to be in the maximum IS.
    """

    kernel: Graph
    mapping: list[int]
    forced: set[int]

    def lift(self, kernel_solution: Iterable[int]) -> list[int]:
        """Translate a kernel IS back to original ids, adding forced nodes."""
        return sorted(self.forced | {self.mapping[i] for i in kernel_solution})


def reduce_mis(graph: Graph) -> MISKernel:
    """Apply degree-0/1 and domination reductions to fixpoint."""
    alive: set[int] = set(range(graph.n))
    adj: dict[int, set[int]] = {u: set(graph.neighbors(u)) for u in alive}
    forced: set[int] = set()

    def remove(u: int) -> None:
        for v in adj[u]:
            adj[v].discard(u)
        del adj[u]
        alive.discard(u)

    changed = True
    while changed:
        changed = False
        # Degree-0 and degree-1 rules (cheap; run first). Ascending scan
        # order pins which endpoint the degree-1 rule forces.
        for u in sorted(alive):
            if u not in adj:
                continue
            deg = len(adj[u])
            if deg == 0:
                forced.add(u)
                remove(u)
                changed = True
            elif deg == 1:
                v = next(iter(adj[u]))
                forced.add(u)
                remove(u)
                remove(v)
                changed = True
        # Domination rule: delete v when some neighbour u has N[u] ⊆ N[v].
        # Ascending scan order pins which dominated vertex goes first.
        for v in sorted(alive):
            if v not in adj:
                continue
            closed_v = adj[v] | {v}
            for u in adj[v]:
                if len(adj[u]) <= len(adj[v]) and (adj[u] | {u}) <= closed_v:
                    remove(v)
                    changed = True
                    break

    mapping = sorted(alive)
    index = {orig: i for i, orig in enumerate(mapping)}
    edges = [
        (index[u], index[v]) for u in mapping for v in sorted(adj[u]) if u < v
    ]
    return MISKernel(Graph(len(mapping), edges), mapping, forced)
