"""Process-parallel execution tier over shared-memory CSR substrates.

The paper's heavy phases (HeapInit, branch-and-bound search) are
embarrassingly parallel per root, but Python threads only buy
concurrency, not compute. This package provides the process tier:
solve engines run in worker *processes* that attach **zero-copy** to
the session's flat int64 CSR arrays through
:mod:`multiprocessing.shared_memory`.

Modules
-------
:mod:`repro.parallel.shared_csr`
    :class:`~repro.parallel.shared_csr.SharedCSR` — named numpy arrays
    packed into one shared-memory segment with an explicit
    create/attach/close/unlink lifecycle and resource-tracker hygiene.
:mod:`repro.parallel.heapinit`
    Fork/spawn-portable parallel HeapInit for the lightweight engine
    (replaces the PR 2 fork-only ``multiprocessing.Pool`` path).
:mod:`repro.parallel.bb`
    Shared-incumbent parallel branch-and-bound: subtree tasks with a
    :class:`multiprocessing.Value` best-size broadcast and dynamic
    (work-stealing) task distribution.
:mod:`repro.parallel.worker`
    Module-level worker entry points (picklable under ``spawn``) plus
    the per-process attachment/session caches.
:mod:`repro.parallel.pool`
    :class:`~repro.parallel.pool.ProcessSolvePool` — a persistent
    worker pool for whole-solve offload and the scheduler's process
    lane (checkpoint ping-pong with crash recovery), plus
    :class:`~repro.parallel.pool.ProcessLaneTask`, the
    scheduler-compatible runner.

Every parallel path pins its solution identical to the sequential
path; the lightweight tier additionally pins stats (see
``tests/test_parallel_tier.py``).
"""

from repro.parallel.shared_csr import SharedCSR
from repro.parallel.heapinit import parallel_heap_init
from repro.parallel.bb import parallel_exact_bb
from repro.parallel.pool import ProcessLaneTask, ProcessSolvePool

__all__ = [
    "SharedCSR",
    "parallel_heap_init",
    "parallel_exact_bb",
    "ProcessLaneTask",
    "ProcessSolvePool",
]
