"""Shared-incumbent parallel branch-and-bound (paper tag ``OPT-BB``).

The classic parallel maximum-clique recipe of Rossi & Gleich
(arXiv:1302.6256) applied to the disjoint k-clique search: the
first-level branches of the B&B tree are split into strided subtree
tasks, every worker prunes against a **shared best-so-far incumbent
size** (a ``multiprocessing.Value`` broadcast), and tasks are
distributed dynamically — an executor queue with ~4 tasks per worker,
so early big subtrees do not serialise the run (work stealing of
subtree frames).

Solution identity: the sequential engine returns the lexicographically
smallest maximum-size index sequence — a branch containing the
lex-first optimum is never pruned before the incumbent reaches optimal
size (its bound covers the completion). Workers prune with
``prune_floor = shared_size - 1`` (ties survive), start each task with
an *empty* local incumbent, and report their slice's first optimum;
the parent merges by (max size, then lexicographically smallest
indices). The merged result is therefore **bit-identical** to the
sequential solve for any worker count. Stats are not pinned: pruning
work depends on broadcast timing, so ``nodes_expanded`` varies across
runs (the extra ``subtree_tasks`` / ``incumbent_broadcasts`` counters
record the fan-out shape).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError, OutOfMemoryError
from repro.graph.graph import Graph
from repro.cliques.counting import node_scores
from repro.cliques.listing import iter_cliques
from repro.core.exact_bb import ExactBBEngine
from repro.core.result import CliqueSetResult
from repro.core.scores import clique_key
from repro.parallel import worker
from repro.parallel.context import resolve_context
from repro.parallel.shared_csr import SharedCSR

#: Subtree tasks per worker: enough queue depth that the executor's
#: dynamic dispatch balances uneven subtrees, small enough that
#: per-task reset/IPC overhead stays negligible.
TASKS_PER_WORKER = 4


def parallel_exact_bb(
    graph: Graph | None,
    k: int,
    *,
    workers: int,
    max_cliques: int | None = None,
    scores: np.ndarray | None = None,
    cliques: Sequence[tuple[int, ...]] | None = None,
    start_method: str = "auto",
    tasks_per_worker: int = TASKS_PER_WORKER,
    sync_every: int = 256,
) -> CliqueSetResult:
    """A maximum disjoint k-clique set by process-parallel B&B.

    Parameters mirror :func:`repro.core.exact_bb.exact_optimum_bb`
    (``graph`` may be ``None`` when both ``scores`` and ``cliques`` are
    precomputed, e.g. from a session cache); ``workers`` processes
    search strided subtree slices against a shared incumbent-size
    broadcast, synchronising every ``sync_every`` ticks. The returned
    solution is identical to the sequential solver's for any worker
    count; ``workers=1`` (or trivially small instances) runs the
    sequential engine inline with the same extended stats layout.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    if graph is None and (scores is None or cliques is None):
        raise InvalidParameterError(
            "graph may only be omitted when both scores and cliques are "
            "precomputed"
        )
    if scores is None:
        assert graph is not None
        scores = node_scores(graph, k)
    if cliques is None:
        assert graph is not None
        collected: list[tuple[int, ...]] = []
        for clique in iter_cliques(graph, k):
            if max_cliques is not None and len(collected) >= max_cliques:
                raise OutOfMemoryError(
                    f"exact B&B exceeded its clique budget of {max_cliques}"
                )
            collected.append(tuple(sorted(clique)))
        cliques = collected
    elif max_cliques is not None and len(cliques) > max_cliques:
        raise OutOfMemoryError(
            f"exact B&B exceeded its clique budget of {max_cliques}"
        )
    # The same canonical order the engine constructor establishes; the
    # workers' stable re-sort over the shared array reproduces it.
    ordered = sorted(cliques, key=lambda c: clique_key(c, scores))

    total = len(ordered)
    tasks = min(total, max(1, workers) * max(1, tasks_per_worker))
    if workers == 1 or tasks <= 1:
        engine = ExactBBEngine(None, k, scores=scores, cliques=ordered)
        while not engine.finished:
            engine.tick()
        best = list(engine.best)
        ticks = engine.ticks
        broadcasts = 0
        tasks = 1 if total else 0
    else:
        best, ticks, broadcasts = _fan_out(
            ordered, scores, k, workers, tasks, sync_every, start_method
        )
    return CliqueSetResult(
        [frozenset(ordered[i]) for i in best],
        k=k,
        method="opt-bb",
        stats={
            "cliques_stored": float(total),
            "nodes_expanded": float(ticks),
            "subtree_tasks": float(tasks),
            "incumbent_broadcasts": float(broadcasts),
        },
    )


def _fan_out(
    ordered: list[tuple[int, ...]],
    scores: np.ndarray,
    k: int,
    workers: int,
    tasks: int,
    sync_every: int,
    start_method: str,
) -> tuple[list[int], int, int]:
    """Run the strided subtree tasks; return (best indices, ticks, broadcasts)."""
    ctx = resolve_context(start_method)
    incumbent = ctx.Value("q", 0)
    flat = np.asarray(ordered, dtype=np.int64).reshape(len(ordered), k)
    handle = SharedCSR.create(
        {"cliques": flat, "scores": np.ascontiguousarray(scores, dtype=np.int64)}
    )
    try:
        descriptor = handle.descriptor()
        with ProcessPoolExecutor(
            max_workers=min(workers, tasks),
            mp_context=ctx,
            initializer=worker.init_bb,
            initargs=(descriptor, k, incumbent),
        ) as pool:
            futures = [
                pool.submit(
                    worker.bb_span,
                    {"offset": t, "stride": tasks, "sync_every": sync_every},
                )
                for t in range(tasks)
            ]
            parts = [future.result() for future in futures]
    finally:
        handle.close()
        handle.unlink()
    best: list[int] = []
    ticks = 0
    broadcasts = 0
    for part in parts:
        indices = [int(i) for i in part["indices"]]
        ticks += int(part["ticks"])
        broadcasts += int(part["broadcasts"])
        if len(indices) > len(best) or (
            len(indices) == len(best) and indices < best
        ):
            best = indices
    return best, ticks, broadcasts
