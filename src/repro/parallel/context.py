"""Start-method selection for the process tier.

Every fan-out in :mod:`repro.parallel` accepts a ``start_method``
argument resolved here. The tier itself is start-method-portable —
substrates travel via shared memory and worker entry points are
module-level — so the choice is purely a cost matrix:

=============  =====================================================
``"fork"``     Cheapest startup (no interpreter re-exec, parent pages
               inherited copy-on-write). Default where available
               (Linux). Unsafe only for threaded parents, which the
               tier avoids by forking before scheduler threads run
               hot loops.
``"spawn"``    Fresh interpreter per worker; slowest startup but the
               portability floor (Windows, macOS default) and the
               configuration the spawn-portability tests pin.
``"forkserver"``  Middle ground where configured.
=============  =====================================================
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.context import BaseContext

from repro.errors import InvalidParameterError


def resolve_context(start_method: str = "auto") -> BaseContext:
    """Resolve a start-method name to a multiprocessing context.

    ``"auto"`` prefers ``fork`` and falls back to the platform default
    (``spawn`` on Windows/macOS). Explicit names are validated against
    :func:`multiprocessing.get_all_start_methods` so a typo fails fast
    instead of raising deep inside pool startup.
    """
    available = multiprocessing.get_all_start_methods()
    if start_method == "auto":
        chosen = "fork" if "fork" in available else available[0]
        return multiprocessing.get_context(chosen)
    if start_method not in available:
        raise InvalidParameterError(
            f"start_method must be 'auto' or one of {available}, "
            f"got {start_method!r}"
        )
    return multiprocessing.get_context(start_method)
