"""Fork/spawn-portable parallel HeapInit over shared CSR arrays.

Algorithm 3 line 11 runs HeapInit "in parallel": per-root local minima
are independent, so root spans fan out to worker processes and the
merged heap contents — and therefore the final solution — are
identical to the sequential path. This module replaces the PR 2
implementation (a fork-only ``multiprocessing.Pool`` feeding workers
through a copy-on-write module global) with the shared-memory tier:
the oriented-CSR arrays, scores and validity mask are packed into one
:class:`~repro.parallel.shared_csr.SharedCSR` segment, and workers
attach zero-copy under **any** start method.

Stats contract: each worker returns its span's ``findmin_calls`` /
``branches_pruned`` counters, which are summed into the caller's stats
dict — the L/LP ablation counters are worker-count-invariant, pinned
by ``tests/test_parallel_tier.py``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.graph.dag import OrientedCSR
from repro.core.scores import CliqueKey
from repro.parallel import worker
from repro.parallel.context import resolve_context
from repro.parallel.shared_csr import SharedCSR

#: Minimum roots per chunk: below this the per-task IPC overhead
#: dwarfs the FindMin work, and degenerate inputs (``n < workers*4``)
#: used to explode into pathological 1-node chunks.
MIN_CHUNK = 4


def chunk_spans(n: int, workers: int, min_chunk: int = MIN_CHUNK) -> list[tuple[int, int]]:
    """Split roots ``0..n-1`` into contiguous ``(start, stop)`` spans.

    Targets about four spans per worker (cheap dynamic load balancing)
    while keeping every span at least ``min_chunk`` roots, and returns
    no spans at all for an empty residual graph — the two degenerate
    regimes that crashed or thrashed the pre-tier implementation
    (``Pool(processes=0)`` on ``n == 0``; 1-node chunks whenever
    ``n < workers * 4``).
    """
    if n <= 0:
        return []
    workers = max(1, workers)
    size = max(min_chunk, -(-n // (workers * 4)))
    return [(start, min(start + size, n)) for start in range(0, n, size)]


def parallel_heap_init(
    *,
    ocsr: OrientedCSR,
    scores: np.ndarray,
    valid: np.ndarray,
    k: int,
    prune: bool,
    workers: int,
    stats: dict[str, float],
    start_method: str = "auto",
) -> list[tuple[CliqueKey, int, tuple[int, ...]]]:
    """HeapInit across worker processes; returns the unheapified entries.

    Packs ``(ocsr, scores, valid)`` into a fresh shared segment, fans
    root spans out over a short-lived executor, merges the returned
    entries and folds every worker's counters into ``stats``. The
    segment is closed and unlinked before returning — worker
    attachments die with the executor.

    Degenerate inputs run inline (no processes): an empty residual
    graph returns ``[]``, and fewer spans than two make a pool
    pointless. Results and stats are identical either way.
    """
    n = int(len(valid))
    spans = chunk_spans(n, workers)

    def merge(
        parts: list[tuple[list[tuple[CliqueKey, int, tuple[int, ...]]], dict[str, float]]],
    ) -> list[tuple[CliqueKey, int, tuple[int, ...]]]:
        heap: list[tuple[CliqueKey, int, tuple[int, ...]]] = []
        for found, span_stats in parts:
            heap.extend(found)
            stats["findmin_calls"] += span_stats["findmin_calls"]
            stats["branches_pruned"] += span_stats["branches_pruned"]
        stats["heap_pushes"] += len(heap)
        return heap

    if not spans:
        return merge([])
    workers = min(max(1, workers), len(spans))
    if workers <= 1:
        return merge(
            [
                worker.run_heapinit_span(ocsr, scores, valid, k, prune, a, b)
                for a, b in spans
            ]
        )
    ctx = resolve_context(start_method)
    handle = SharedCSR.create(
        {
            "indptr": ocsr.indptr,
            "cols": ocsr.cols,
            "rank": ocsr.rank,
            "scores": scores,
            "valid": valid,
        }
    )
    try:
        descriptor = handle.descriptor()
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=worker.init_heapinit,
            initargs=(descriptor, k, prune),
        ) as pool:
            parts = list(pool.map(worker.heapinit_span, spans))
    finally:
        handle.close()
        handle.unlink()
    return merge(parts)
