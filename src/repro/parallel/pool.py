"""Persistent process pool for whole solves and the scheduler lane.

:class:`ProcessSolvePool` is the long-lived face of the tier: it owns
one :class:`~repro.parallel.shared_csr.SharedCSR` segment holding the
session graph's CSR arrays plus one ``ProcessPoolExecutor`` whose
workers attach zero-copy at initializer time and rebuild an equal-
fingerprint :class:`~repro.core.session.Session` on first use. On top
of that substrate it offers three services:

* :meth:`ProcessSolvePool.solve` / :meth:`~ProcessSolvePool.submit_solve`
  — whole solves, either routed through the engine-native fan-outs
  (``l``/``lp`` HeapInit, ``opt-bb`` shared-incumbent B&B) or shipped
  to a pool worker as a one-shot payload;
* :meth:`ProcessSolvePool.step_task` / :meth:`~ProcessSolvePool.run_task`
  — the checkpoint ping-pong: a paused
  :meth:`~repro.core.task.SolveTask.checkpoint` is the migration
  primitive, stepped remotely one quantum at a time with
  :class:`~repro.core.task.TaskSnapshot` streams coming back;
* :class:`ProcessLaneTask` — a :class:`~repro.serve.scheduler.Resumable`
  adapter so the serve scheduler can drive a remote solve in its
  priority loop (``Scheduler.submit_process``).

Fault tolerance: the parent always holds the latest checkpoint, so a
dead worker (``BrokenProcessPool``) costs one executor rebuild and one
re-dispatch of the same checkpoint — the final solution is unchanged,
and ``stats["worker_restarts"]`` records the recovery.

Lock hierarchy: ``ProcessSolvePool._lock`` is a leaf — the pool
computes the graph's CSR (which takes ``Graph._lock``) *before*
acquiring it, and never calls out while holding it.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Mapping

from repro.concurrency import make_lock
from repro.errors import InvalidParameterError
from repro.jsonsafe import json_safe
from repro.core.result import CliqueSetResult
from repro.core.session import Session
from repro.core.task import SolveTask
from repro.parallel import worker
from repro.parallel.bb import parallel_exact_bb
from repro.parallel.context import resolve_context
from repro.parallel.shared_csr import SharedCSR

#: Methods whose engines have a native in-engine fan-out; everything
#: else a pool worker runs sequentially against the shared graph.
_ENGINE_PARALLEL = frozenset({"l", "lp", "opt-bb"})


class ProcessSolvePool:
    """Worker processes sharing one session graph over shared memory.

    The pool is lazy: the shared segment and executor are created on
    the first dispatch, so constructing one is cheap and a pool that
    only ever routes ``l``/``lp`` solves (which fan out through their
    own short-lived executors) never starts workers at all. Use as a
    context manager or call :meth:`close` to release the segment.
    """

    def __init__(
        self,
        session: Session,
        *,
        workers: int = 2,
        start_method: str = "auto",
        max_retries: int = 2,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.session = session
        self.workers = workers
        self.start_method = start_method
        self.max_retries = max_retries
        self.stats: dict[str, float] = {
            "steps_dispatched": 0.0,
            "worker_restarts": 0.0,
        }
        self._lock = make_lock("ProcessSolvePool._lock")
        self._handle: SharedCSR | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def _ensure_started(self) -> ProcessPoolExecutor:
        """Create the shared segment and executor on first use."""
        # CSR build takes Graph._lock; do it before taking our leaf lock.
        csr = self.session.graph.csr()
        with self._lock:
            if self._closed:
                raise InvalidParameterError("pool is closed")
            if self._executor is None:
                self._handle = SharedCSR.create(
                    {"indptr": csr.indptr, "cols": csr.cols}
                )
                self._executor = self._new_executor()
            return self._executor

    def _new_executor(self) -> ProcessPoolExecutor:
        """A fresh executor over the existing shared segment."""
        assert self._handle is not None
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=resolve_context(self.start_method),
            initializer=worker.init_pool,
            initargs=(self._handle.descriptor(),),
        )

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool workers (empty before first dispatch).

        Exposed so fault-injection tests can kill a worker mid-solve
        and assert the checkpoint reassignment path.
        """
        with self._lock:
            executor = self._executor
        if executor is None:
            return []
        return [int(pid) for pid in list(executor._processes or {})]

    def close(self) -> None:
        """Shut down the executor and release the shared segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
            handle = self._handle
            self._executor = None
            self._handle = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        if handle is not None:
            handle.close()
            handle.unlink()

    def __enter__(self) -> "ProcessSolvePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- whole solves --------------------------------------------------
    def solve(self, k: int, method: str = "lp", **options: object) -> CliqueSetResult:
        """One solve at the pool's worker count, engine-native fan-out.

        ``l``/``lp`` run in-process with their HeapInit phase fanned out
        over a short-lived executor; ``opt-bb`` runs the
        shared-incumbent subtree search. Solutions are identical to the
        sequential path (``workers=1``) by construction. Other methods
        raise: they have no parallel decomposition — dispatch them with
        :meth:`submit_solve` to run sequentially off-process instead.
        """
        if method in ("l", "lp"):
            return self.session.solve(
                k, method, workers=self.workers, **options
            )
        if method == "opt-bb":
            raw_budget = options.pop("max_cliques", None)
            max_cliques = None if raw_budget is None else int(raw_budget)  # type: ignore[call-overload]
            if options:
                raise InvalidParameterError(
                    f"unknown opt-bb options: {sorted(options)}"
                )
            return parallel_exact_bb(
                None,
                k,
                workers=self.workers,
                scores=self.session.prep.scores(k),
                cliques=self.session.prep.cliques(k, max_cliques=max_cliques),
                start_method=self.start_method,
            )
        raise InvalidParameterError(
            f"method {method!r} has no process-parallel decomposition; "
            f"parallel methods: {sorted(_ENGINE_PARALLEL)} "
            "(use submit_solve() for off-process sequential solves)"
        )

    def submit_solve(self, k: int, method: str = "lp", **options: object) -> "Future[dict]":
        """Ship one whole solve to a pool worker; returns a payload future.

        The future resolves to the worker's JSON-safe result payload
        (``{"cliques", "k", "method", "size", "stats"}``). Fanning many
        of these out is the solve-throughput mode benchmarked by
        ``benchmarks/bench_parallel.py``.
        """
        executor = self._ensure_started()
        payload = {
            "k": int(k),
            "method": str(method),
            "options": json_safe(dict(options)),
        }
        return executor.submit(worker.solve_payload, payload)

    # -- checkpoint ping-pong ------------------------------------------
    def _dispatch(self, fn: Callable[..., dict], payload: Mapping[str, object]) -> dict:
        """Run one worker call with broken-pool recovery.

        ``BrokenProcessPool`` means a worker died mid-call; the parent
        still holds the payload (checkpoints are the migration
        primitive), so recovery is: rebuild the executor, re-dispatch,
        count a restart. Gives up after ``max_retries`` rebuilds.
        """
        attempts = 0
        while True:
            executor = self._ensure_started()
            try:
                return executor.submit(fn, payload).result()
            except BrokenProcessPool:
                attempts += 1
                with self._lock:
                    if self._executor is executor:
                        self._executor = None
                executor.shutdown(wait=False, cancel_futures=True)
                if attempts > self.max_retries:
                    raise
                with self._lock:
                    self.stats["worker_restarts"] += 1.0

    def step_task(
        self,
        checkpoint: Mapping[str, object],
        *,
        max_work: int | None = None,
        max_seconds: float | None = None,
    ) -> dict:
        """Advance a checkpointed solve by one quantum in a worker.

        Returns the worker's ``{"snapshot", "checkpoint", "done"[,
        "result"]}`` payload; the returned checkpoint supersedes the
        input one and is what a reassignment re-dispatches.
        """
        payload: dict[str, Any] = {"checkpoint": dict(checkpoint)}
        if max_work is not None:
            payload["max_work"] = int(max_work)
        if max_seconds is not None:
            payload["max_seconds"] = float(max_seconds)
        out = self._dispatch(worker.step_payload, payload)
        with self._lock:
            self.stats["steps_dispatched"] += 1.0
        return out

    def run_task(
        self,
        checkpoint: Mapping[str, object],
        *,
        max_work_per_step: int | None = None,
        max_seconds_per_step: float | None = None,
        on_snapshot: Callable[[dict], None] | None = None,
    ) -> tuple[dict, list[dict]]:
        """Drive a checkpointed solve to completion across workers.

        Returns ``(result_payload, snapshots)``; ``on_snapshot`` (if
        given) observes each snapshot dict as it streams back. Survives
        worker death between quanta via :meth:`step_task`'s recovery.
        """
        current: Mapping[str, object] = checkpoint
        snapshots: list[dict] = []
        while True:
            out = self.step_task(
                current,
                max_work=max_work_per_step,
                max_seconds=max_seconds_per_step,
            )
            snapshots.append(out["snapshot"])
            if on_snapshot is not None:
                on_snapshot(out["snapshot"])
            if out["done"]:
                return out["result"], snapshots
            current = out["checkpoint"]

    def checkpoint_of(
        self, k: int, method: str = "lp", **options: object
    ) -> dict:
        """A fresh (zero-work) checkpoint for this session's graph.

        Convenience for callers that want to hand a brand-new solve to
        :meth:`run_task` / :class:`ProcessLaneTask` without stepping a
        local task first.
        """
        task: SolveTask = self.session.task(k, method, **options)
        return task.checkpoint()


class ProcessLaneTask:
    """A scheduler-lane adapter driving one remote checkpointed solve.

    Satisfies the scheduler's ``Resumable`` contract: :meth:`step`
    advances the solve in a pool worker (one quantum per dispatch,
    looping internally when ``seconds`` is ``None``), :meth:`result`
    yields the final :class:`~repro.core.task.TaskSnapshot`-shaped
    result payload, and :meth:`partial` harvests the latest snapshot
    *plus* the resumable checkpoint on deadline — the caller can
    re-submit the checkpoint later and lose no work.
    """

    def __init__(
        self,
        pool: ProcessSolvePool,
        checkpoint: Mapping[str, object],
        *,
        max_work_per_step: int | None = None,
    ) -> None:
        self.pool = pool
        self._checkpoint: dict = dict(checkpoint)
        self._max_work = max_work_per_step
        self._snapshots: list[dict] = []
        self._result: dict | None = None

    def step(self, seconds: float | None = None) -> bool:
        """Advance remotely; ``True`` once the solve is done.

        ``seconds`` bounds one remote quantum; ``None`` (the
        scheduler's exclusive-runner mode) keeps dispatching quanta
        until completion, honouring the contract that an unbounded step
        finishes the work.
        """
        while True:
            out = self.pool.step_task(
                self._checkpoint, max_work=self._max_work, max_seconds=seconds
            )
            self._snapshots.append(out["snapshot"])
            self._checkpoint = out["checkpoint"]
            if out["done"]:
                self._result = out["result"]
                return True
            if seconds is not None:
                return False

    def result(self) -> dict:
        """The final result payload; raises until :meth:`step` returns True."""
        if self._result is None:
            raise InvalidParameterError(
                "lane task has not finished; drive step() to completion first"
            )
        return self._result

    def partial(self) -> dict:
        """Deadline harvest: the last snapshot plus the live checkpoint."""
        return {
            "snapshot": self._snapshots[-1] if self._snapshots else None,
            "checkpoint": dict(self._checkpoint),
        }

    @property
    def snapshots(self) -> list[dict]:
        """All snapshots streamed back so far (oldest first)."""
        return list(self._snapshots)

    @property
    def checkpoint(self) -> dict:
        """The latest checkpoint (the reassignment handle)."""
        return dict(self._checkpoint)
