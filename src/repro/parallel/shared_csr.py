"""Shared-memory handle for flat CSR substrate arrays.

A :class:`SharedCSR` packs a set of named, contiguous numpy arrays —
typically the session's :class:`repro.graph.dag.OrientedCSR` triple
plus scores and validity masks — into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment. The owner
process calls :meth:`SharedCSR.create`; worker processes rebuild
zero-copy views from the JSON-safe :meth:`SharedCSR.descriptor` via
:meth:`SharedCSR.attach` — only the descriptor (a small dict of
offsets) ever crosses the process boundary, never the arrays and never
the handle itself (the repro-lint ``migration`` rule enforces the
latter).

Lifecycle contract::

    parent                         worker
    ------                         ------
    handle = SharedCSR.create(...)
    desc = handle.descriptor()  -> SharedCSR.attach(desc)
    ...                            views = handle.array("cols"), ...
    handle.close()              <- (process exit; OS reclaims the map)
    handle.unlink()

* ``close()`` releases this process's mapping (views become invalid);
* ``unlink()`` removes the segment system-wide and is called exactly
  once, by the owner, after every worker is done;
* resource-tracker hygiene relies on POSIX children sharing the
  owner's tracker process (fork inherits its pipe; spawn receives
  ``tracker_fd`` in the preparation data): the attach-side re-register
  that Python < 3.13 performs unconditionally (no ``track=False``) is
  an idempotent set-add there, so the segment has exactly one tracked
  entry, removed by the owner's ``unlink``. Workers must therefore
  **not** unregister what they borrow — that would delete the owner's
  entry and make the final unlink trip a tracker ``KeyError``.

Workers typically keep their attachment open for the process lifetime
(the per-process caches in :mod:`repro.parallel.worker` do exactly
that); the OS reclaims the mapping at exit and the owner's ``unlink``
frees the segment.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Iterator, Mapping

import numpy as np

from repro.errors import InvalidParameterError

#: Byte alignment of each packed array (cache-line friendly; keeps any
#: dtype the numpy int64/uint8 substrates use naturally aligned).
_ALIGN = 64


def _aligned(nbytes: int) -> int:
    """Round ``nbytes`` up to the packing alignment."""
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedCSR:
    """Named numpy arrays in one shared-memory segment (see module docs).

    Construct via :meth:`create` (owner side) or :meth:`attach` (worker
    side); the plain constructor is internal. The handle supports the
    context-manager protocol: ``with SharedCSR.create(...) as handle``
    closes *and unlinks* on exit for owners, and only closes for
    attached handles.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: dict[str, tuple[str, tuple[int, ...], int]],
        owner: bool,
    ) -> None:
        self._shm = shm
        self._layout = layout
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._views: dict[str, np.ndarray] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedCSR":
        """Pack ``arrays`` into a fresh shared segment (owner side).

        Each array is copied once into the segment at an aligned
        offset. Arrays must be non-object numpy arrays; names must be
        non-empty strings. The caller owns the returned handle and must
        eventually ``close()`` and ``unlink()`` it.
        """
        if not arrays:
            raise InvalidParameterError("SharedCSR.create needs at least one array")
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        packed: list[tuple[int, np.ndarray]] = []
        for name, array in arrays.items():
            if not name or not isinstance(name, str):
                raise InvalidParameterError(
                    f"array names must be non-empty strings, got {name!r}"
                )
            contiguous = np.ascontiguousarray(array)
            if contiguous.dtype.hasobject:
                raise InvalidParameterError(
                    f"array {name!r} has object dtype; only flat numeric "
                    "arrays can live in shared memory"
                )
            layout[name] = (contiguous.dtype.str, tuple(contiguous.shape), offset)
            packed.append((offset, contiguous))
            offset += _aligned(contiguous.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for start, contiguous in packed:
            if contiguous.nbytes:
                view: np.ndarray = np.ndarray(
                    contiguous.shape,
                    dtype=contiguous.dtype,
                    buffer=shm.buf,
                    offset=start,
                )
                view[...] = contiguous
                del view
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, descriptor: Mapping[str, object]) -> "SharedCSR":
        """Open an existing segment from a :meth:`descriptor` (worker side).

        The creating process remains responsible for ``unlink()``; the
        borrowing worker's implicit tracker registration is harmless
        (see the module docstring's lifecycle notes) and must not be
        undone here.
        """
        try:
            segment = str(descriptor["segment"])
            raw = descriptor["arrays"]
        except (KeyError, TypeError) as exc:
            raise InvalidParameterError(
                f"malformed SharedCSR descriptor: {descriptor!r}"
            ) from exc
        if not isinstance(raw, Mapping):
            raise InvalidParameterError(
                f"descriptor 'arrays' must be a mapping, got {type(raw).__name__}"
            )
        shm = shared_memory.SharedMemory(name=segment)
        layout = {
            str(name): (str(spec["dtype"]), tuple(int(d) for d in spec["shape"]),
                        int(spec["offset"]))
            for name, spec in raw.items()
        }
        return cls(shm, layout, owner=False)

    # -- descriptor / views --------------------------------------------
    def descriptor(self) -> dict:
        """JSON-safe attachment recipe: segment name plus array layout.

        This dict — not the handle — is what crosses process
        boundaries (initializer args, task payloads, checkpoints).
        """
        return {
            "segment": self._shm.name,
            "arrays": {
                name: {"dtype": dtype, "shape": list(shape), "offset": offset}
                for name, (dtype, shape, offset) in self._layout.items()
            },
        }

    def array(self, name: str) -> np.ndarray:
        """Zero-copy view of the named packed array.

        Views share the handle's lifetime: they must not be used after
        :meth:`close`. Treat them as read-only unless the packing
        protocol explicitly says otherwise (workers mutating a borrowed
        substrate would corrupt every sibling).
        """
        if self._closed:
            raise InvalidParameterError(
                f"SharedCSR segment {self._shm.name!r} is closed"
            )
        if name not in self._layout:
            raise InvalidParameterError(
                f"no array {name!r} in segment {self._shm.name!r} "
                f"(have: {sorted(self._layout)})"
            )
        if name not in self._views:
            dtype, shape, offset = self._layout[name]
            self._views[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
            )
        return self._views[name]

    def names(self) -> Iterator[str]:
        """Iterate the packed array names."""
        return iter(self._layout)

    @property
    def segment(self) -> str:
        """The underlying shared-memory segment name."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        """Whether this handle created (and must unlink) the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released this process's mapping."""
        return self._closed

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (idempotent).

        All views handed out by :meth:`array` become invalid. If an
        external reference still pins the buffer the unmap is deferred
        to garbage collection rather than raising.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            pass

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only, idempotent)."""
        if not self._owner:
            raise InvalidParameterError(
                "only the creating process may unlink a SharedCSR segment"
            )
        if self._unlinked:
            return
        self._unlinked = True
        self._shm.unlink()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        if self._owner:
            self.unlink()

    def __reduce__(self) -> tuple:
        raise TypeError(
            "SharedCSR handles must not cross process boundaries; send "
            "descriptor() and SharedCSR.attach() it in the worker"
        )

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SharedCSR(segment={self._shm.name!r}, arrays={len(self._layout)}, "
            f"owner={self._owner}, {state})"
        )
