"""Worker-process entry points for the process-parallel tier.

Everything in this module runs inside pool worker processes. All entry
points are module-level functions (picklable by qualified name, so they
work under the ``spawn`` start method with no inherited globals), and
all cross-process traffic is JSON-safe payload dicts plus
:meth:`repro.parallel.shared_csr.SharedCSR.descriptor` attachment
recipes — live handles, engines and sessions never cross the boundary.

Per-process caches (module globals, populated lazily):

* attached :class:`~repro.parallel.shared_csr.SharedCSR` segments, one
  per segment name — attachments stay open for the worker's lifetime
  (the owner unlinks after the fan-out; the OS reclaims mappings at
  worker exit);
* one :class:`~repro.core.session.Session` per shared *graph* segment,
  rebuilt zero-copy via :meth:`repro.graph.graph.Graph.from_csr_arrays`
  (equal fingerprint, so checkpoint restores validate);
* one :class:`~repro.core.exact_bb.ExactBBEngine` per shared clique
  substrate, reset per subtree task instead of re-decoding;
* the last stepped :class:`~repro.core.task.SolveTask` per lane task
  identity, so the scheduler's checkpoint ping-pong only pays a full
  restore after a reassignment (worker death), not on every quantum.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from repro.graph.dag import OrientedCSR
from repro.graph.graph import Graph
from repro.jsonsafe import json_safe
from repro.core.exact_bb import ExactBBEngine
from repro.core.lightweight import _FindMinCSR
from repro.core.result import CliqueSetResult
from repro.core.scores import CliqueKey
from repro.core.session import Session
from repro.core.task import SolveTask
from repro.parallel.shared_csr import SharedCSR

#: Attached segments by name (borrowed; never unlinked here).
_ATTACHED: dict[str, SharedCSR] = {}
#: HeapInit executor context: substrate views + (k, prune).
_HEAPINIT: dict[str, Any] = {}
#: B&B executor context: clique-substrate descriptor + k.
_BB: dict[str, Any] = {}
#: Cached B&B engines by (segment, k) — reset per subtree task.
_BB_ENGINES: dict[tuple[str, int], ExactBBEngine] = {}
#: Shared best-size incumbent (``multiprocessing.Value``) or ``None``.
_INCUMBENT: Any = None
#: ProcessSolvePool context: the shared graph descriptor.
_POOL: dict[str, Any] = {}
#: Sessions by graph segment name.
_SESSIONS: dict[str, Session] = {}
#: Lane-task cache: identity key -> (last emitted checkpoint, task).
_LANE_TASKS: dict[str, tuple[dict, SolveTask]] = {}


def _attach(descriptor: Mapping[str, object]) -> SharedCSR:
    """Attach to (or return the cached attachment of) a segment."""
    segment = str(descriptor["segment"])
    handle = _ATTACHED.get(segment)
    if handle is None:
        handle = SharedCSR.attach(descriptor)
        _ATTACHED[segment] = handle
    return handle


# ----------------------------------------------------------------------
# HeapInit fan-out (lightweight engine, init-parallel phase)
# ----------------------------------------------------------------------
def init_heapinit(descriptor: Mapping[str, object], k: int, prune: bool) -> None:
    """Executor initializer: attach the HeapInit substrate zero-copy."""
    handle = _attach(descriptor)
    _HEAPINIT.update(
        ocsr=OrientedCSR(
            handle.array("indptr"), handle.array("cols"), handle.array("rank")
        ),
        scores=handle.array("scores"),
        valid=handle.array("valid"),
        k=int(k),
        prune=bool(prune),
    )


def run_heapinit_span(
    ocsr: OrientedCSR,
    scores: np.ndarray,
    valid: np.ndarray,
    k: int,
    prune: bool,
    start: int,
    stop: int,
) -> tuple[list[tuple[CliqueKey, int, tuple[int, ...]]], dict[str, float]]:
    """FindMin over roots ``start..stop-1`` (pure; also used in-process).

    Returns the found ``(key, root, clique)`` heap entries plus the
    span's ``findmin_calls`` / ``branches_pruned`` counters. Always the
    CSR walk: it visits candidates in the same order as the sets walk,
    so merged counters stay backend- and worker-count-invariant.
    """
    stats = {"findmin_calls": 0.0, "branches_pruned": 0.0}
    finder = _FindMinCSR(ocsr, scores, prune, stats, valid)
    found: list[tuple[CliqueKey, int, tuple[int, ...]]] = []
    for u in range(start, stop):
        if finder.live_out_degree(u) >= k - 1:
            hit = finder.search(u, k)
            if hit is not None:
                found.append((hit[0], u, hit[1]))
    return found, stats


def heapinit_span(
    span: tuple[int, int],
) -> tuple[list[tuple[CliqueKey, int, tuple[int, ...]]], dict[str, float]]:
    """Worker task: one HeapInit root span over the attached substrate."""
    ctx = _HEAPINIT
    return run_heapinit_span(
        ctx["ocsr"],
        ctx["scores"],
        ctx["valid"],
        ctx["k"],
        ctx["prune"],
        int(span[0]),
        int(span[1]),
    )


# ----------------------------------------------------------------------
# Branch-and-bound fan-out (shared incumbent + subtree tasks)
# ----------------------------------------------------------------------
def init_bb(descriptor: Mapping[str, object], k: int, incumbent: Any) -> None:
    """Executor initializer: attach the clique substrate, keep the incumbent.

    ``incumbent`` is the shared ``multiprocessing.Value('q')`` holding
    the best solution *size* found by any worker so far; it rides the
    initializer channel because synchronized objects cannot cross via
    task pickling.
    """
    global _INCUMBENT
    _INCUMBENT = incumbent
    handle = _attach(descriptor)
    _BB.update(segment=handle.segment, k=int(k))


def _bb_engine(segment: str, k: int) -> ExactBBEngine:
    """Decode (once per process) and cache the engine for a substrate."""
    engine = _BB_ENGINES.get((segment, k))
    if engine is None:
        handle = _ATTACHED[segment]
        flat = handle.array("cliques")
        scores = handle.array("scores")
        cliques = [tuple(int(v) for v in row) for row in flat]
        # The parent packed the cliques already sorted by clique_key;
        # the constructor's stable re-sort reproduces the same order.
        engine = ExactBBEngine(None, k, scores=scores, cliques=cliques)
        _BB_ENGINES[(segment, k)] = engine
    return engine


def bb_span(payload: Mapping[str, object]) -> dict:
    """Worker task: exhaust one strided subtree slice of the B&B search.

    Owns every branch whose *first* chosen clique index ``i`` satisfies
    ``i % stride == offset``; deeper choices are unrestricted. Every
    ``sync_every`` ticks the worker publishes local incumbent-size
    improvements to the shared value and tightens its own
    ``prune_floor`` to ``global_size - 1`` — ties with the global best
    survive, so each worker still reports its slice's lexicographically
    first optimum and the parent merge is bit-identical to sequential.
    """
    ctx = _BB
    engine = _bb_engine(str(ctx["segment"]), int(ctx["k"]))
    offset = int(payload["offset"])
    stride = int(payload["stride"])
    sync_every = max(1, int(payload.get("sync_every", 256)))
    incumbent = _INCUMBENT
    floor = 0
    if incumbent is not None:
        floor = max(0, int(incumbent.value) - 1)
    engine.reset_search(root_slice=(offset, stride), prune_floor=floor)
    published = 0
    broadcasts = 0
    since_sync = 0
    while not engine.finished:
        engine.tick()
        since_sync += 1
        if incumbent is not None and since_sync >= sync_every:
            since_sync = 0
            size = len(engine.best)
            if size > published:
                with incumbent.get_lock():
                    if size > incumbent.value:
                        incumbent.value = size
                        broadcasts += 1
                published = size
            engine.prune_floor = max(
                engine.prune_floor, int(incumbent.value) - 1, 0
            )
    if incumbent is not None and len(engine.best) > published:
        size = len(engine.best)
        with incumbent.get_lock():
            if size > incumbent.value:
                incumbent.value = size
                broadcasts += 1
    return {
        "indices": [int(i) for i in engine.best],
        "ticks": int(engine.ticks),
        "broadcasts": broadcasts,
    }


# ----------------------------------------------------------------------
# ProcessSolvePool: whole-solve offload + scheduler process lane
# ----------------------------------------------------------------------
def init_pool(graph_descriptor: Mapping[str, object]) -> None:
    """Executor initializer: remember the pool's shared graph substrate."""
    _POOL["graph"] = dict(graph_descriptor)


def _session_for(descriptor: Mapping[str, object]) -> Session:
    """Session over the shared graph (cached per segment, zero-copy CSR)."""
    segment = str(descriptor["segment"])
    session = _SESSIONS.get(segment)
    if session is None:
        handle = _attach(descriptor)
        graph = Graph.from_csr_arrays(handle.array("indptr"), handle.array("cols"))
        session = Session(graph)
        _SESSIONS[segment] = session
    return session


def result_payload(result: CliqueSetResult) -> dict:
    """JSON-safe dict form of a solve result (order-preserving)."""
    return {
        "cliques": [sorted(int(u) for u in clique) for clique in result.cliques],
        "k": int(result.k),
        "method": result.method,
        "size": len(result.cliques),
        "stats": json_safe(dict(result.stats)),
    }


def solve_payload(payload: Mapping[str, object]) -> dict:
    """Worker task: run one whole solve against the shared-graph session."""
    descriptor = payload.get("graph") or _POOL["graph"]
    session = _session_for(descriptor)  # type: ignore[arg-type]
    options = dict(payload.get("options") or {})  # type: ignore[call-overload]
    result = session.solve(int(payload["k"]), str(payload["method"]), **options)
    return result_payload(result)


def _lane_key(descriptor: Mapping[str, object], checkpoint: Mapping[str, object]) -> str:
    """Stable identity of a lane task (graph + method + k + options)."""
    return json.dumps(
        [
            str(descriptor["segment"]),
            str(checkpoint.get("method")),
            int(checkpoint["k"]),
            json_safe(dict(checkpoint.get("options") or {})),  # type: ignore[call-overload]
        ],
        sort_keys=True,
    )


def step_payload(payload: Mapping[str, object]) -> dict:
    """Worker task: advance a checkpointed solve by one quantum.

    Restores the checkpoint onto the cached shared-graph session —
    unless this worker already holds the task whose last emitted
    checkpoint equals the incoming one, in which case it continues the
    live task (the fast path of the scheduler's ping-pong). Returns the
    post-step snapshot, the new checkpoint (the parent's reassignment
    handle), and the final result once done.
    """
    descriptor = payload.get("graph") or _POOL["graph"]
    session = _session_for(descriptor)  # type: ignore[arg-type]
    checkpoint = payload["checkpoint"]
    if not isinstance(checkpoint, Mapping):
        raise TypeError(f"checkpoint must be a mapping, got {type(checkpoint)}")
    key = _lane_key(descriptor, checkpoint)  # type: ignore[arg-type]
    cached = _LANE_TASKS.get(key)
    if cached is not None and cached[0] == checkpoint:
        task = cached[1]
    else:
        task = session.restore_task(checkpoint)
    raw_work = payload.get("max_work")
    raw_seconds = payload.get("max_seconds")
    snapshot = task.step(
        None if raw_work is None else int(raw_work),  # type: ignore[arg-type]
        None if raw_seconds is None else float(raw_seconds),  # type: ignore[arg-type]
    )
    new_checkpoint = task.checkpoint()
    _LANE_TASKS[key] = (new_checkpoint, task)
    out: dict[str, Any] = {
        "snapshot": snapshot.as_dict(),
        "checkpoint": new_checkpoint,
        "done": bool(task.done),
    }
    if task.done:
        out["result"] = result_payload(task.result())
    return out
