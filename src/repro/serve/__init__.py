"""Multi-tenant serving layer: session pool, scheduler, dynamic feeds.

This package turns the one-shot solver library into a long-lived
service (see ``docs/serving.md`` for the protocol reference and
``docs/architecture.md`` for how it sits on the rest of the stack):

* :class:`~repro.serve.pool.SessionPool` — warm
  :class:`~repro.core.session.Session` objects keyed by graph content
  fingerprint, with LRU + byte-budget eviction;
* :class:`~repro.serve.scheduler.Scheduler` — bounded-queue thread pool
  with priority lanes, per-request deadlines, cancellation,
  load-shedding, and preemptive timeslicing of resumable solves
  (:class:`~repro.serve.scheduler.Resumable`): deadline expiry returns
  the best-so-far solution instead of discarding it;
* :class:`~repro.serve.feeds.DynamicFeed` — per-tenant edge streams
  buffered into the dynamic maintainer's batched update engine;
* :class:`~repro.serve.server.Server` /
  :class:`~repro.serve.client.Client` — the NDJSON protocol engine and
  its in-process client (``python -m repro serve`` is the CLI
  transport).

Quickstart::

    from repro import Graph
    from repro.serve import Client, Server

    server = Server(workers=2, max_sessions=8)
    client = Client(server)
    client.register_graph("social", my_graph)
    teams = client.solve("social", k=4)           # warm after first call
    feed = client.feed_open("social", k=4)["feed"]
    client.feed_push(feed, [("insert", 0, 7)])
    client.feed_solution(feed)
    server.close()
"""

from repro.serve.client import Client, PendingCall
from repro.serve.feeds import DynamicFeed, FlushPolicy, FlushReport
from repro.graph.fingerprint import graph_fingerprint
from repro.serve.pool import SessionPool
from repro.serve.scheduler import PRIORITIES, Resumable, Scheduler, Ticket
from repro.serve.server import Server

__all__ = [
    "Client",
    "PendingCall",
    "DynamicFeed",
    "FlushPolicy",
    "FlushReport",
    "graph_fingerprint",
    "SessionPool",
    "Scheduler",
    "Resumable",
    "Ticket",
    "PRIORITIES",
    "Server",
]
