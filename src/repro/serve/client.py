"""In-process protocol client for :class:`repro.serve.server.Server`.

The client speaks the *wire* protocol even though it never leaves the
process: every request is serialised to its NDJSON form and decoded
back before dispatch, so anything that works here works byte-for-byte
over ``python -m repro serve`` — tests and benchmarks driving the
client exercise the real schemas, and numbers measured through it
include serialisation cost.

Failures come back as the typed :mod:`repro.errors` exceptions the
error code maps to (:data:`repro.serve.protocol.CODE_TO_ERROR`), so
callers handle overload/deadline/cancellation exactly like library
users do.

Synchronous calls (:meth:`Client.call` and the per-op conveniences)
block for the response; :meth:`Client.start` returns a
:class:`PendingCall` immediately, which is how the benchmark keeps N
scheduler workers busy from one submitting thread.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable

#: A user progress callback: receives each streamed ``data`` dict.
ProgressCallback = Callable[[dict], None]

from repro.errors import ServeError
from repro.graph.graph import Graph
from repro.serve import protocol
from repro.serve.scheduler import Ticket
from repro.serve.server import Server

Update = tuple[str, int, int]


def _raise_for_envelope(envelope: dict) -> dict:
    """Return the result payload, raising the mapped typed error on failure.

    A failure envelope flagged ``error.partial`` carries the best-so-far
    solution payload in ``result``; it is attached to the raised
    exception's ``partial`` attribute so callers keep the completed
    work (mirroring the library-side anytime contract).
    """
    if envelope.get("ok"):
        return envelope["result"]
    error = envelope.get("error") or {}
    exc_cls = protocol.CODE_TO_ERROR.get(error.get("code"), ServeError)
    exc = exc_cls(error.get("message", "serving request failed"))
    if error.get("partial") and envelope.get("result") is not None:
        exc.partial = envelope["result"]
    raise exc


class PendingCall:
    """Handle for an in-flight request started with :meth:`Client.start`."""

    def __init__(
        self, ticket: Ticket | None, result: dict | None, request_id: int
    ) -> None:
        self._ticket = ticket
        self._result = result
        self.id = request_id

    @property
    def done(self) -> bool:
        """Whether a response is available without blocking."""
        return self._ticket is None or self._ticket.done

    @property
    def ticket(self) -> Ticket | None:
        """The underlying scheduler ticket (``None`` for inline ops).

        Exposes the scheduler's ``submitted_at`` / ``started_at`` /
        ``finished_at`` timestamps, which is how the serving benchmark
        measures queue wait and service time per request.
        """
        return self._ticket

    def result(self, timeout: float | None = None) -> dict:
        """Block for the result payload; raise the typed error on failure."""
        if self._ticket is None:
            return self._result
        return self._ticket.result(timeout)


class Client:
    """Typed convenience wrapper over one in-process :class:`Server`."""

    def __init__(self, server: Server) -> None:
        self.server = server
        self._next_id = 0

    # ------------------------------------------------------------------
    # Generic calls
    # ------------------------------------------------------------------
    def _encode(self, fields: dict) -> dict:
        """Round-trip the request through its NDJSON wire form."""
        self._next_id += 1
        message = {"id": self._next_id, **{
            key: value for key, value in fields.items() if value is not None
        }}
        return protocol.decode_request(protocol.encode(message))

    @staticmethod
    def _progress_sink(
        on_progress: ProgressCallback | None,
    ) -> Callable[[dict], None] | None:
        """Adapt a user progress callback into an envelope sink."""
        if on_progress is None:
            return None

        def emit(envelope: dict) -> None:
            if envelope.get("event") == "progress":
                on_progress(envelope.get("data") or {})

        return emit

    def call(
        self,
        op: str,
        *,
        on_progress: ProgressCallback | None = None,
        **fields: object,
    ) -> dict:
        """Send one request and block for its result payload.

        ``on_progress`` receives each streamed progress ``data`` dict
        (``size``/``bound``/``work``/``done``) for anytime solves run
        with ``progress=True``; callbacks fire on scheduler worker
        threads while the call blocks.
        """
        message = self._encode({"op": op, **fields})
        return _raise_for_envelope(
            self.server.handle_request(message, self._progress_sink(on_progress))
        )

    def start(
        self,
        op: str,
        *,
        on_progress: ProgressCallback | None = None,
        **fields: object,
    ) -> PendingCall:
        """Send one request without waiting; admission errors raise now.

        Compute ops return immediately with a live handle; inline ops
        resolve before returning (their handle is already done).
        ``on_progress`` streams progress events as in :meth:`call`.
        """
        message = self._encode({"op": op, **fields})
        handled = self.server.submit_request(
            message, self._progress_sink(on_progress)
        )
        if isinstance(handled, Ticket):
            return PendingCall(handled, None, message.get("id"))
        return PendingCall(None, handled, message.get("id"))

    # ------------------------------------------------------------------
    # Per-operation conveniences
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        """Liveness check."""
        return self.call("ping")

    def register_graph(
        self,
        name: str,
        graph: Graph | None = None,
        *,
        edges: Iterable[tuple[int, int]] | None = None,
        n: int | None = None,
        dataset: str | None = None,
        path: str | None = None,
    ) -> dict:
        """Register a tenant graph from a Graph, edge list, dataset or file."""
        if graph is not None:
            edges = [[int(u), int(v)] for u, v in graph.edges()]
            n = graph.n
        elif edges is not None:
            edges = [[int(u), int(v)] for u, v in edges]
        return self.call(
            "register_graph", name=name, edges=edges, n=n, dataset=dataset, path=path
        )

    def unregister_graph(self, name: str) -> dict:
        """Drop a tenant graph (and its pooled session if now unshared)."""
        return self.call("unregister_graph", name=name)

    def solve(
        self,
        graph: str,
        k: int,
        method: str | None = None,
        *,
        options: dict | None = None,
        priority: str | None = None,
        deadline: float | None = None,
        include_cliques: bool = True,
        progress: bool = False,
        on_progress: ProgressCallback | None = None,
    ) -> dict:
        """Solve on a registered graph through the pool + scheduler.

        Resumable methods run preemptibly; with ``progress=True`` (or
        an ``on_progress`` callback, which implies it) improvement
        events stream while the solve runs. A deadline miss raises
        :class:`~repro.errors.DeadlineExceededError` whose ``partial``
        attribute holds the best solution found before expiry.
        """
        return self.call(
            "solve",
            graph=graph,
            k=k,
            method=method,
            options=options,
            priority=priority,
            deadline=deadline,
            include_cliques=include_cliques,
            progress=(progress or on_progress is not None) or None,
            on_progress=on_progress,
        )

    def count(self, graph: str, k: int, **fields: object) -> dict:
        """Count k-cliques on a registered graph."""
        return self.call("count", graph=graph, k=k, **fields)

    def bounds(self, graph: str, k: int, **fields: object) -> dict:
        """Certified optimum upper bounds on a registered graph."""
        return self.call("bounds", graph=graph, k=k, **fields)

    def warm(self, graph: str, ks: Iterable[int], *, cliques: bool = False) -> dict:
        """Prewarm per-k substrates on a registered graph's session."""
        return self.call("warm", graph=graph, ks=list(ks), cliques=cliques)

    def feed_open(
        self,
        graph: str,
        k: int,
        *,
        feed: str | None = None,
        method: str | None = None,
        policy: dict | None = None,
    ) -> dict:
        """Open a dynamic feed over a registered graph."""
        return self.call(
            "feed_open", graph=graph, k=k, feed=feed, method=method, policy=policy
        )

    def feed_push(self, feed: str, updates: Iterable[Update]) -> dict:
        """Push edge updates into a feed's buffer (may trigger a flush)."""
        return self.call(
            "feed_push",
            feed=feed,
            updates=[[op, int(u), int(v)] for op, u, v in updates],
        )

    def feed_flush(self, feed: str) -> dict:
        """Apply a feed's pending updates now."""
        return self.call("feed_flush", feed=feed)

    def feed_solution(self, feed: str, *, include_cliques: bool = True) -> dict:
        """Current maintained solution of a feed (flush-consistent)."""
        return self.call("feed_solution", feed=feed, include_cliques=include_cliques)

    def feed_close(self, feed: str) -> dict:
        """Close a feed and drop its maintainer."""
        return self.call("feed_close", feed=feed)

    def stats(self) -> dict:
        """Pool, scheduler, graph and feed statistics."""
        return self.call("stats")

    def shutdown(self) -> dict:
        """Ask the server to stop accepting requests."""
        return self.call("shutdown")
