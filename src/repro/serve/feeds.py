"""Per-tenant dynamic feeds: buffered edge streams over ``apply_batch``.

A :class:`DynamicFeed` owns one
:class:`~repro.dynamic.maintainer.DynamicDisjointCliques` (seeded from a
warm pooled session via :meth:`repro.core.session.Session.dynamic`, so
the initial static solve hits the substrate caches) and buffers incoming
edge updates instead of applying them one by one. A buffer *flush*
funnels the whole pending stream through the maintainer's
:meth:`~repro.dynamic.maintainer.DynamicDisjointCliques.apply_batch` —
PR 3's coalesce-and-repair-once engine — which is where the batched
speedup comes from.

Flush policy (:class:`FlushPolicy`) is per feed:

* ``max_updates`` — flush as soon as the buffer holds that many pending
  updates (size trigger, checked on every push);
* ``max_age`` — flush once the *oldest* pending update has waited that
  long. The feed has no background timer thread; age is checked on
  every push and by :meth:`maybe_flush`, which the server calls
  opportunistically between protocol requests. This keeps the feed
  deterministic under test clocks while bounding staleness whenever
  traffic (or the server loop) is flowing.

Reads are always consistent: :meth:`solution` and :meth:`size` flush
pending updates first, so a tenant never observes a solution that
ignores updates it already pushed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cliques.csr_kernels import BACKENDS
from repro.concurrency import make_rlock
from repro.core.result import CliqueSetResult
from repro.core.session import Session
from repro.dynamic.batch import validate_update
from repro.errors import InvalidParameterError

Update = tuple[str, int, int]


@dataclass(frozen=True)
class FlushPolicy:
    """When a feed's buffered updates are pushed through ``apply_batch``.

    Attributes
    ----------
    max_updates:
        Size trigger: flush when the buffer reaches this many updates
        (``>= 1``; 1 degenerates to per-update application).
    max_age:
        Time trigger in seconds, measured from the oldest buffered
        update (``None`` disables the time trigger).
    backend:
        Dirty-region re-enumeration engine forwarded to ``apply_batch``
        (``"auto" | "sets" | "csr"``).
    """

    max_updates: int = 256
    max_age: float | None = None
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.max_updates < 1:
            raise InvalidParameterError(
                f"max_updates must be >= 1, got {self.max_updates}"
            )
        if self.max_age is not None and self.max_age <= 0:
            raise InvalidParameterError(
                f"max_age must be positive seconds or None, got {self.max_age}"
            )
        if self.backend not in BACKENDS:
            # Reject at feed_open, not on a later flush mid-repair.
            raise InvalidParameterError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )


@dataclass(frozen=True)
class FlushReport:
    """Outcome of one flush: how much was applied and the solution size."""

    applied: int
    solution_size: int
    pending: int


class DynamicFeed:
    """A buffered edge-update stream bound to one maintained solution.

    Parameters
    ----------
    session:
        Warm session for the tenant's starting graph; the maintainer is
        seeded through :meth:`Session.dynamic`, reusing its caches.
    k:
        Clique size to maintain.
    method:
        Static method for the initial solve (default ``"lp"``).
    policy:
        The feed's :class:`FlushPolicy` (default: size 256, no age cap).
    clock:
        Monotonic time source (injectable for deterministic tests).

    All public methods are thread-safe (one lock per feed); updates from
    one tenant are applied in push order.
    """

    def __init__(
        self,
        session: Session,
        k: int,
        *,
        method: str = "lp",
        policy: FlushPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or FlushPolicy()
        self.k = k
        self._clock = clock
        self._lock = make_rlock("DynamicFeed._lock")
        self._buffer: list[Update] = []
        self._oldest_at: float | None = None
        self.maintainer = session.dynamic(k, method=method)
        self.stats: dict[str, int] = {
            "pushed": 0,
            "flushes": 0,
            "size_flushes": 0,
            "age_flushes": 0,
            "applied": 0,
        }

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def push(self, updates: Iterable[Update]) -> FlushReport | None:
        """Buffer updates; flush (possibly repeatedly) when policy triggers.

        Returns the last :class:`FlushReport` if any flush happened,
        else ``None`` (updates are pending). Malformed updates — unknown
        op, self-loop, endpoint outside the graph — raise before
        anything is buffered, so a bad request never half-applies *and*
        never poisons the buffer: everything buffered is guaranteed
        plannable by ``UpdateBatch.plan`` at flush time (a feed's node
        count never changes, so push-time range validation is sound).
        Validation is :func:`repro.dynamic.batch.validate_update` — the
        same rules planning applies at flush time, by construction.
        """
        n = self.maintainer.graph.n
        staged: list[Update] = []
        for op, u, v in updates:
            _, u, v = validate_update(op, u, v, n)
            staged.append((op, u, v))
        # The clock is an injected callable; sample it before taking the
        # lock so a slow (or user-supplied) time source never runs under
        # it, then use the one timestamp for the whole push.
        now = self._clock()
        with self._lock:
            if staged and self._oldest_at is None:
                self._oldest_at = now
            self._buffer.extend(staged)
            self.stats["pushed"] += len(staged)
            report = None
            while len(self._buffer) >= self.policy.max_updates:
                self.stats["size_flushes"] += 1
                report = self._flush_locked(self.policy.max_updates, now)
            if self._age_due(now):
                self.stats["age_flushes"] += 1
                report = self._flush_locked(None, now)
            return report

    def flush(self) -> FlushReport:
        """Apply every pending update now (explicit flush, maybe empty)."""
        now = self._clock()
        with self._lock:
            return self._flush_locked(None, now)

    def maybe_flush(self) -> FlushReport | None:
        """Flush only if the age trigger is due (the server's idle sweep)."""
        now = self._clock()
        with self._lock:
            if not self._age_due(now):
                return None
            self.stats["age_flushes"] += 1
            return self._flush_locked(None, now)

    def _age_due(self, now: float) -> bool:
        return (
            self.policy.max_age is not None
            and self._oldest_at is not None
            and now - self._oldest_at >= self.policy.max_age
        )

    def _flush_locked(self, limit: int | None, now: float) -> FlushReport:
        take = len(self._buffer) if limit is None else min(limit, len(self._buffer))
        chunk = self._buffer[:take]
        # Apply before dropping from the buffer: if apply_batch raises,
        # the planning stage rejected the batch before any mutation, so
        # keeping the buffer intact loses nothing (push-time validation
        # makes this unreachable for feed traffic; this is belt and
        # braces against future failure modes).
        if chunk:
            self.maintainer.apply_batch(chunk, backend=self.policy.backend)
            self.stats["flushes"] += 1
            self.stats["applied"] += len(chunk)
        self._buffer = self._buffer[take:]
        # Pre-flush ``now``: the survivors were pushed before the flush
        # began, so aging them from the flush start is the honest bound.
        self._oldest_at = now if self._buffer else None
        return FlushReport(
            applied=len(chunk),
            solution_size=self.maintainer.size,
            pending=len(self._buffer),
        )

    # ------------------------------------------------------------------
    # Reads (flush-consistent)
    # ------------------------------------------------------------------
    def solution(self) -> CliqueSetResult:
        """Current maintained solution, after flushing pending updates."""
        now = self._clock()
        with self._lock:
            self._flush_locked(None, now)
            return self.maintainer.solution()

    @property
    def size(self) -> int:
        """Current ``|S|``, after flushing pending updates."""
        now = self._clock()
        with self._lock:
            self._flush_locked(None, now)
            return self.maintainer.size

    @property
    def pending(self) -> int:
        """Number of buffered, not-yet-applied updates."""
        with self._lock:
            return len(self._buffer)

    def info(self) -> dict:
        """Feed counters plus maintainer state (for the protocol)."""
        with self._lock:
            return {
                "k": self.k,
                "pending": len(self._buffer),
                "size": self.maintainer.size,
                "index_size": self.maintainer.index_size,
                "graph_n": self.maintainer.graph.n,
                "graph_m": self.maintainer.graph.m,
                "policy": {
                    "max_updates": self.policy.max_updates,
                    "max_age": self.policy.max_age,
                    "backend": self.policy.backend,
                },
                **self.stats,
            }

    def __repr__(self) -> str:
        return f"DynamicFeed(k={self.k}, size={self.maintainer.size}, pending={self.pending})"
