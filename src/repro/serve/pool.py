"""Session pool: LRU + byte-budget cache of warm :class:`Session` objects.

Every solve that misses the pool pays the full preprocessing bill (core
decomposition, orientation, score pass, maybe a clique listing); every
hit reuses it. The pool is therefore the serving layer's main lever:
repeated solves over the same tenant graph become cache-hit cheap, and
the byte budget bounds how much substrate memory a long-lived server
accumulates across tenants.

Keys are content fingerprints (:mod:`repro.graph.fingerprint`), not
object identities, so two tenants registering equal graphs share one
session. Eviction is LRU, constrained by ``max_sessions`` (count) and
``max_bytes`` (sum of :meth:`Session.estimated_bytes`, re-measured on
every admission because substrate caches grow as solves land).

Eviction only drops the pool's reference: a session currently executing
a solve on a scheduler worker stays alive through that worker's
reference and completes normally — sessions are bound to immutable
graphs and their caches are internally locked, so there is no unsafe
window (see the thread-safety notes in :mod:`repro.core.session`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.concurrency import make_rlock
from repro.core.registry import REGISTRY, SolverRegistry
from repro.core.session import Session
from repro.errors import InvalidParameterError
from repro.graph.graph import Graph
from repro.graph.fingerprint import graph_fingerprint


class SessionPool:
    """A thread-safe LRU cache of sessions keyed by graph fingerprint.

    Parameters
    ----------
    max_sessions:
        Maximum number of resident sessions (``None`` = unbounded).
    max_bytes:
        Byte budget over the estimated size of all resident sessions
        (``None`` = unbounded). A single session larger than the budget
        is still admitted — it just evicts everything else; refusing it
        would make its graph permanently unservable.
    estimate:
        Size estimator ``session -> int``; defaults to
        :meth:`Session.estimated_bytes`. Tests inject deterministic
        estimators here.
    registry:
        Solver registry handed to newly constructed sessions.
    """

    def __init__(
        self,
        max_sessions: int | None = None,
        max_bytes: int | None = None,
        *,
        estimate: Callable[[Session], int] | None = None,
        registry: SolverRegistry = REGISTRY,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise InvalidParameterError(
                f"max_sessions must be >= 1 or None, got {max_sessions}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise InvalidParameterError(
                f"max_bytes must be >= 0 or None, got {max_bytes}"
            )
        self.max_sessions = max_sessions
        self.max_bytes = max_bytes
        # Non-blocking by default: a session busy computing a substrate
        # reports its last measured size instead of stalling the survey
        # (eviction decisions and stats tolerate slightly stale sizes).
        self._estimate = estimate or (
            lambda session: session.estimated_bytes(blocking=False)
        )
        self._registry = registry
        self._lock = make_rlock("SessionPool._lock")
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        self.stats: dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------
    def get(self, graph: Graph, *, fingerprint: str | None = None) -> Session:
        """Return the warm session for ``graph``, admitting one on a miss.

        ``fingerprint`` may be passed when the caller has already hashed
        the graph (the server caches fingerprints per registered
        tenant); it must match the graph's true fingerprint.
        """
        key = fingerprint if fingerprint is not None else graph_fingerprint(graph)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                self.stats["hits"] += 1
                return session
            self.stats["misses"] += 1
            session = Session(graph, registry=self._registry)
            # Hand the already-computed fingerprint to the session so
            # Session.fingerprint() never re-hashes pooled graphs.
            session._fingerprint = key
            self._sessions[key] = session
        # Budget enforcement runs *outside* the pool lock: measuring a
        # session may block on its substrate lock (a solve in progress),
        # and stalling every pool.get behind that would stall the whole
        # scheduler. See _enforce_budgets for the re-check discipline.
        self._enforce_budgets(newest=key)
        return session

    def lookup(self, fingerprint: str) -> Session | None:
        """The resident session for ``fingerprint``, or ``None`` (no admit)."""
        with self._lock:
            session = self._sessions.get(fingerprint)
            if session is not None:
                self._sessions.move_to_end(fingerprint)
                self.stats["hits"] += 1
            return session

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._sessions

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _enforce_budgets(self, newest: str) -> None:
        """Evict LRU sessions until both the count and byte budgets hold.

        Called *without* the lock held. Sizes are re-measured on each
        pass because cached substrates grow between admissions, and the
        measurement happens outside the pool lock (a session mid-solve
        holds its substrate lock for seconds; only the caller asking for
        *that* session's size should wait on it, not the whole pool).
        Between measuring and evicting, membership is re-checked under
        the lock, and ``newest`` (the session being admitted) is never
        evicted.
        """
        with self._lock:
            if self.max_sessions is not None:
                while len(self._sessions) > self.max_sessions:
                    victim = next(
                        (key for key in self._sessions if key != newest), None
                    )
                    if victim is None:
                        break
                    del self._sessions[victim]
                    self.stats["evictions"] += 1
        if self.max_bytes is None:
            return
        while True:
            with self._lock:
                # LRU-to-MRU order is the eviction policy's contract;
                # which session is evicted never reaches a result.
                snapshot = list(self._sessions.items())  # repro-lint: ignore=iterorder
            if len(snapshot) <= 1:
                return
            total = sum(self._estimate(s) for _, s in snapshot)
            if total <= self.max_bytes:
                return
            victim = next((key for key, _ in snapshot if key != newest), None)
            if victim is None:
                return
            with self._lock:
                if victim in self._sessions:
                    del self._sessions[victim]
                    self.stats["evictions"] += 1

    def evict(self, fingerprint: str) -> bool:
        """Drop one session by fingerprint; ``True`` if it was resident."""
        with self._lock:
            if fingerprint in self._sessions:
                del self._sessions[fingerprint]
                self.stats["evictions"] += 1
                return True
            return False

    def clear(self) -> int:
        """Drop every resident session; returns how many were evicted."""
        with self._lock:
            count = len(self._sessions)
            self._sessions.clear()
            self.stats["evictions"] += count
            return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Estimated resident size of all pooled sessions, re-measured now.

        The estimators run outside the pool lock (they may wait on a
        busy session's substrate lock), so other pool traffic proceeds
        while a size survey is in flight.
        """
        with self._lock:
            # Order-independent accumulation into a size total.
            sessions = list(self._sessions.values())  # repro-lint: ignore=iterorder
        return sum(self._estimate(s) for s in sessions)

    def fingerprints(self) -> tuple[str, ...]:
        """Resident fingerprints in LRU-to-MRU order."""
        with self._lock:
            return tuple(self._sessions)

    def info(self) -> dict:
        """Counters plus current occupancy (for the ``stats`` endpoint)."""
        total = self.total_bytes()  # measured outside the lock
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "bytes": total,
                "max_bytes": self.max_bytes,
                **self.stats,
            }

    def __repr__(self) -> str:
        return (
            f"SessionPool(sessions={len(self)}, max_sessions={self.max_sessions}, "
            f"max_bytes={self.max_bytes})"
        )
