"""Wire protocol for the serving layer: newline-delimited JSON.

One request per line, one response per line; requests carry a client
``id`` echoed in the response so responses may stream back out of order
(the stdio server completes fast requests while a slow solve is still
running). The full schema catalogue lives in ``docs/serving.md``; this
module is the single source of truth for operation names, error codes
and the exception-to-code mapping, so the docs, the server and the
in-process client cannot drift apart.

Response envelope::

    {"id": <echoed>, "ok": true,  "result": {...}}
    {"id": <echoed>, "ok": false, "error": {"code": "...", "message": "..."}}

Two anytime extensions (``docs/serving.md`` documents both):

* **partial results** — a failure whose exception carries a payload on
  its ``partial`` attribute (deadline expiry on a resumable solve, a
  cooperative solver's ``OutOfTimeError``) keeps the completed work:
  the error object gains ``"partial": true`` and the envelope a
  ``"result"`` with the best-so-far solution payload.
* **progress events** — while a resumable solve runs with
  ``"progress": true``, the server streams
  ``{"id": <echoed>, "event": "progress", "data": {...}}`` lines before
  the final response. Event lines have no ``"ok"`` key; clients route
  on ``"event"`` and keep waiting for the terminal envelope.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro import errors

#: Every operation the server understands (``docs/serving.md`` documents each).
OPERATIONS = (
    "ping",
    "register_graph",
    "unregister_graph",
    "solve",
    "count",
    "bounds",
    "warm",
    "feed_open",
    "feed_push",
    "feed_flush",
    "feed_solution",
    "feed_close",
    "stats",
    "shutdown",
)

#: Machine-readable error codes carried in failure responses.
ERROR_CODES = (
    "INVALID_ARGUMENT",
    "PROTOCOL_ERROR",
    "UNKNOWN_GRAPH",
    "UNKNOWN_FEED",
    "OVERLOADED",
    "DEADLINE_EXCEEDED",
    "CANCELLED",
    "OUT_OF_TIME",
    "OUT_OF_MEMORY",
    "SOLUTION_ERROR",
    "INTERNAL",
)

#: Exception type -> error code, most specific first (order matters:
#: ``DeadlineExceededError`` subclasses ``OutOfTimeError``).
_ERROR_MAP: tuple[tuple[type[BaseException], str], ...] = (
    (errors.ProtocolError, "PROTOCOL_ERROR"),
    (errors.UnknownGraphError, "UNKNOWN_GRAPH"),
    (errors.UnknownFeedError, "UNKNOWN_FEED"),
    (errors.OverloadedError, "OVERLOADED"),
    (errors.DeadlineExceededError, "DEADLINE_EXCEEDED"),
    (errors.RequestCancelledError, "CANCELLED"),
    (errors.OutOfTimeError, "OUT_OF_TIME"),
    (errors.OutOfMemoryError, "OUT_OF_MEMORY"),
    (errors.SolutionError, "SOLUTION_ERROR"),
    (errors.InvalidParameterError, "INVALID_ARGUMENT"),
    (errors.GraphError, "INVALID_ARGUMENT"),
)

#: Error code -> exception type raised by the in-process client.
CODE_TO_ERROR: dict[str, type[Exception]] = {
    "PROTOCOL_ERROR": errors.ProtocolError,
    "UNKNOWN_GRAPH": errors.UnknownGraphError,
    "UNKNOWN_FEED": errors.UnknownFeedError,
    "OVERLOADED": errors.OverloadedError,
    "DEADLINE_EXCEEDED": errors.DeadlineExceededError,
    "CANCELLED": errors.RequestCancelledError,
    "OUT_OF_TIME": errors.OutOfTimeError,
    "OUT_OF_MEMORY": errors.OutOfMemoryError,
    "SOLUTION_ERROR": errors.SolutionError,
    "INVALID_ARGUMENT": errors.InvalidParameterError,
    "INTERNAL": errors.ServeError,
}


def error_code_for(exc: BaseException) -> str:
    """Map an exception to its wire error code (``INTERNAL`` fallback)."""
    for exc_type, code in _ERROR_MAP:
        if isinstance(exc, exc_type):
            return code
    return "INTERNAL"


def ok_response(request_id: object, result: Mapping) -> dict:
    """Build a success envelope echoing ``request_id``."""
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_response(request_id: object, exc: BaseException) -> dict:
    """Build a failure envelope from an exception.

    When the exception carries a wire-ready payload mapping on its
    ``partial`` attribute (anytime solvers and the preemptive
    scheduler attach one at deadline expiry), the envelope keeps the
    completed work: ``error.partial`` is set to ``true`` and the
    payload rides in ``result`` exactly like a success payload.
    """
    envelope = {
        "id": request_id,
        "ok": False,
        "error": {"code": error_code_for(exc), "message": str(exc)},
    }
    partial = getattr(exc, "partial", None)
    if isinstance(partial, Mapping):
        envelope["error"]["partial"] = True
        envelope["result"] = dict(partial)
    return envelope


def progress_event(request_id: object, data: Mapping) -> dict:
    """Build a streamed progress event for an in-flight request.

    Events are interim lines (no ``ok`` key): the request stays
    in-flight until its terminal success/failure envelope arrives.
    """
    return {"id": request_id, "event": "progress", "data": dict(data)}


def encode(message: Mapping) -> str:
    """Serialise one protocol message to a single NDJSON line."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True)


def decode_request(line: str) -> dict:
    """Parse one NDJSON request line into a validated request dict.

    Raises :class:`~repro.errors.ProtocolError` on malformed JSON, a
    non-object payload, a missing/unknown ``op``, or a non-scalar
    ``id``. Field-level validation beyond that is per-operation and
    happens in the server's handlers.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise errors.ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise errors.ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    op = message.get("op")
    if op is None:
        raise errors.ProtocolError("request is missing the 'op' field")
    if op not in OPERATIONS:
        raise errors.ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}"
        )
    request_id = message.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise errors.ProtocolError(
            f"'id' must be a string or integer, got {type(request_id).__name__}"
        )
    return message


def is_int(value: object) -> bool:
    """True for real integers only — JSON booleans do not count.

    ``isinstance(True, int)`` holds in Python, so every integer field
    check must exclude ``bool`` explicitly or ``true``/``false`` would
    silently coerce to 1/0 (e.g. an edge ``[true, false]`` becoming
    ``(1, 0)``) instead of failing with ``PROTOCOL_ERROR``.
    """
    return isinstance(value, int) and not isinstance(value, bool)


def is_number(value: object) -> bool:
    """True for real int/float values (bools excluded, as in :func:`is_int`)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def require(message: Mapping, field: str, types: type | tuple, what: str) -> object:
    """Fetch a required request field with a typed, uniform error.

    When ``types`` admits ``int``, booleans are rejected (see
    :func:`is_int`).
    """
    value = message.get(field)
    if value is None:
        raise errors.ProtocolError(f"{message.get('op')} requires {field!r} ({what})")
    admits_int = types is int or (isinstance(types, tuple) and int in types)
    bad_bool = isinstance(value, bool) and admits_int and bool not in (
        types if isinstance(types, tuple) else (types,)
    )
    if bad_bool or not isinstance(value, types):
        raise errors.ProtocolError(
            f"{field!r} must be {what}, got {type(value).__name__}"
        )
    return value
