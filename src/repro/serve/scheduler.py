"""Concurrent solve scheduler: priority lanes, deadlines, preemption.

The :class:`Scheduler` owns a fixed pool of worker threads and three
FIFO lanes (``high`` / ``normal`` / ``low``). :meth:`Scheduler.submit`
is non-blocking and returns a :class:`Ticket`; the caller collects the
outcome via :meth:`Ticket.result` or a done-callback (the stdio server
uses callbacks so responses stream out as they finish, not in arrival
order).

Admission control and deadline semantics:

* **backpressure** — the queue is bounded; a submit that would exceed
  ``queue_limit`` pending tickets is *shed immediately* with
  :class:`~repro.errors.OverloadedError` instead of queueing without
  bound. Clients see the overload at once and can back off.
* **deadlines** — a ticket's ``deadline`` is a relative wall-clock
  budget. If it expires while the ticket is still queued *and the
  ticket carries no partial work*, it is shed at dequeue with
  :class:`~repro.errors.DeadlineExceededError` (cost: one queue pop —
  the worker never starts doomed work). Once a ticket starts, the
  remaining budget is handed to the task callable, which forwards it as
  ``time_budget`` to solvers that support cooperative interruption (see
  :attr:`repro.core.registry.Method.can_meet_deadline` for which
  methods accept deadlines at all).
* **cancellation** — :meth:`Ticket.cancel` wins if the ticket has not
  started (including a preempted ticket waiting to resume); it then
  resolves with :class:`~repro.errors.RequestCancelledError` without
  occupying a worker. A monolithic running ticket is not preempted
  (Python threads cannot be killed safely); ``cancel`` returns
  ``False``.

**Preemptive timeslicing** — a submitted callable may return a
:class:`Resumable` instead of a plain result: a step-driven runner
(usually wrapping a :class:`repro.core.task.SolveTask`). Workers then
run it one ``quantum`` at a time and, between slices,

* *finish* it when the runner reports done;
* *harvest* it when its deadline expired: the ticket resolves with
  :class:`~repro.errors.DeadlineExceededError` whose ``partial``
  attribute carries the runner's best-so-far payload — deadline expiry
  returns the completed work instead of raising it away;
* *preempt* it when work is queued in its own or a higher lane: the
  ticket re-enters the back of its lane (round-robin within a lane,
  strict priority across lanes) and the worker picks up the waiting
  request. This is true preemption instead of PR 4's shed-at-dequeue:
  with a single worker, an interactive high-lane burst runs within one
  quantum even while a long normal-lane solve is in flight.

**Process lane** — :meth:`Scheduler.submit_process` accepts a
:class:`repro.parallel.pool.ProcessLaneTask`, which satisfies the
``Resumable`` contract but executes each quantum inside a
:class:`~repro.parallel.pool.ProcessSolvePool` worker *process*: the
worker thread ships the task's JSON checkpoint out, a pool worker steps
the solve against the shared-memory graph, and the refreshed checkpoint
plus a :class:`~repro.core.task.TaskSnapshot` stream come back. Because
the lane thread only ever waits on IPC, heavyweight solves stop
competing for the GIL with the scheduler's own dispatch loop; because
the parent keeps the latest checkpoint, a killed worker costs one
re-dispatch, and a deadline harvest returns resumable state.

``quantum=None`` disables timeslicing (runners are driven to completion
in one go, reproducing the pre-preemption scheduler for comparison
benchmarks).

Worker counts: on multi-core machines ``workers=N`` overlaps the
numpy-heavy substrate passes; on a single core mixed traffic still pays
off twice — GIL timeslices across threads plus quantum timeslices
within a worker — which the serving benchmarks measure as deadline
goodput.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable

from typing import TYPE_CHECKING

from repro.concurrency import make_lock, make_rlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.parallel.pool import ProcessLaneTask
from repro.errors import (
    InvalidParameterError,
    OverloadedError,
    RequestCancelledError,
)
from repro.errors import DeadlineExceededError

#: Lane names in dispatch order: workers always drain ``high`` first.
PRIORITIES = ("high", "normal", "low")


class Resumable:
    """A step-driven runner a submitted callable can return.

    Returning one from the submitted ``fn`` opts the ticket into
    preemptive timeslicing (see the module docstring). The three
    callables are invoked from worker threads, never concurrently for
    one runner:

    ``step(seconds)``
        Run up to ``seconds`` of work (``None`` = to completion) and
        return ``True`` when finished.
    ``result()``
        The final payload once ``step`` returned ``True``.
    ``partial()``
        Best-so-far payload for deadline harvesting (may return
        ``None`` when no partial result exists; the deadline error then
        carries nothing extra).
    """

    __slots__ = ("step", "result", "partial")

    def __init__(
        self,
        step: Callable[[float | None], bool],
        result: Callable[[], object],
        partial: Callable[[], object] | None = None,
    ) -> None:
        self.step = step
        self.result = result
        self.partial = partial if partial is not None else lambda: None


class Ticket:
    """Handle for one submitted request (create via :meth:`Scheduler.submit`).

    States move ``queued -> running -> done``, or jump straight to
    ``done`` when the ticket is cancelled or shed. ``done`` tickets hold
    either a result or an exception; :meth:`result` re-raises the
    latter.
    """

    __slots__ = (
        "id",
        "priority",
        "deadline_at",
        "submitted_at",
        "started_at",
        "finished_at",
        "state",
        "_fn",
        "_event",
        "_value",
        "_error",
        "_callbacks",
        "_lock",
        "_scheduler",
        "_runner",
        "preemptions",
    )

    def __init__(
        self,
        ticket_id: int,
        fn: Callable[[float | None], object],
        priority: str,
        deadline_at: float | None,
        now: float,
    ) -> None:
        self.id = ticket_id
        self.priority = priority
        self.deadline_at = deadline_at
        self.submitted_at = now
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.state = "queued"
        self._fn = fn
        self._event = threading.Event()
        self._value: object = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["Ticket"], None]] = []
        self._lock = make_lock("Ticket._lock")
        self._scheduler: "Scheduler | None" = None
        self._runner: "Resumable | None" = None
        #: Times this ticket was timesliced out for other work.
        self.preemptions = 0

    # -- outcome -------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the ticket has resolved (result, error, cancel or shed)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> object:
        """Block for the outcome; re-raise the ticket's error if it failed.

        Raises :class:`TimeoutError` if the outcome does not arrive
        within ``timeout`` seconds (the ticket itself keeps running).
        """
        if not self._event.wait(timeout):
            raise TimeoutError(f"ticket {self.id} not done after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def error(self) -> BaseException | None:
        """The stored exception of a resolved ticket (``None`` on success)."""
        self._event.wait()
        return self._error

    def add_done_callback(self, fn: Callable[["Ticket"], None]) -> None:
        """Run ``fn(ticket)`` once resolved (immediately if already done).

        Callbacks run on the resolving worker thread; keep them short.
        """
        run_now = False
        with self._lock:
            if self._event.is_set():
                run_now = True
            else:
                self._callbacks.append(fn)
        if run_now:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - same containment as _finish
                pass

    def cancel(self) -> bool:
        """Cancel if still queued; ``False`` once running or resolved."""
        with self._lock:
            if self.state != "queued":
                return False
            self.state = "cancelled"
        self._finish(None, RequestCancelledError("request cancelled by client"))
        # Free the queue slot right away so cancelled backlog does not
        # hold admission capacity (a worker may also have popped this
        # ticket already — the scheduler handles either order once).
        if self._scheduler is not None:
            self._scheduler._discard_cancelled(self)
        return True

    # -- internal ------------------------------------------------------
    def _finish(self, value: object, error: BaseException | None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            self._error = error
            if self.state not in ("cancelled",):
                self.state = "done"
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - a callback must never kill
                # the resolving worker thread (e.g. BrokenPipeError from
                # a transport writing to a closed pipe); the ticket is
                # already resolved, so waiters are unaffected.
                pass

    def remaining(self, now: float) -> float | None:
        """Seconds until the deadline at time ``now`` (``None`` = no deadline)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - now

    def __repr__(self) -> str:
        return (
            f"Ticket(id={self.id}, priority={self.priority!r}, "
            f"state={self.state!r})"
        )


class Scheduler:
    """Bounded-queue thread-pool scheduler with priority lanes.

    Parameters
    ----------
    workers:
        Number of worker threads (``>= 1``).
    queue_limit:
        Maximum number of *queued* (not yet started) tickets across all
        lanes; submits beyond it raise
        :class:`~repro.errors.OverloadedError`. Preempted tickets
        waiting to resume occupy lane slots too, so sustained
        timeslicing tightens admission — by design: resumable backlog
        is real work the server still owes.
    quantum:
        Timeslice length in seconds for :class:`Resumable` tickets
        (default 50 ms). ``None`` disables preemption: runners are
        driven to completion in one slice, reproducing the
        shed-at-dequeue-only scheduler.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        queue_limit: int = 64,
        quantum: float | None = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise InvalidParameterError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        if quantum is not None and quantum <= 0:
            raise InvalidParameterError(
                f"quantum must be positive seconds or None, got {quantum!r}"
            )
        self.workers = workers
        self.queue_limit = queue_limit
        self.quantum = quantum
        self._clock = clock
        self._cond = threading.Condition(make_rlock("Scheduler._cond"))
        self._lanes: dict[str, deque[Ticket]] = {p: deque() for p in PRIORITIES}
        self._queued = 0
        self._stopping = False
        self._ids = itertools.count(1)
        self.stats: dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "shed_overload": 0,
            "shed_deadline": 0,
            "cancelled": 0,
            "preemptions": 0,
            "deadline_partials": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[float | None], object],
        *,
        priority: str = "normal",
        deadline: float | None = None,
    ) -> Ticket:
        """Queue ``fn`` and return its :class:`Ticket` (non-blocking).

        ``fn`` is called as ``fn(remaining)`` on a worker thread, where
        ``remaining`` is the seconds left until the ticket's deadline at
        start time (``None`` without a deadline). ``deadline`` is
        relative seconds from now; non-positive deadlines are rejected.
        """
        if priority not in PRIORITIES:
            raise InvalidParameterError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        if deadline is not None and deadline <= 0:
            raise InvalidParameterError(
                f"deadline must be positive seconds, got {deadline!r}"
            )
        now = self._clock()
        deadline_at = None if deadline is None else now + deadline
        with self._cond:
            if self._stopping:
                raise InvalidParameterError("scheduler is shut down")
            if self._queued >= self.queue_limit:
                self.stats["shed_overload"] += 1
                raise OverloadedError(
                    f"queue full ({self._queued} pending, limit "
                    f"{self.queue_limit}); retry with backoff"
                )
            ticket = Ticket(next(self._ids), fn, priority, deadline_at, now)
            ticket._scheduler = self
            self._lanes[priority].append(ticket)
            self._queued += 1
            self.stats["submitted"] += 1
            self._cond.notify()
        return ticket

    def submit_process(
        self,
        runner: "ProcessLaneTask",
        *,
        priority: str = "normal",
        deadline: float | None = None,
    ) -> Ticket:
        """Queue a process-lane solve (see :mod:`repro.parallel.pool`).

        ``runner`` is a :class:`~repro.parallel.pool.ProcessLaneTask`
        driving one checkpointed solve inside a
        :class:`~repro.parallel.pool.ProcessSolvePool` worker. It is
        wrapped as a :class:`Resumable`, so the process lane gets the
        full preemption contract for free: the worker thread steps the
        remote solve one quantum at a time, preempts it when higher
        lanes fill, and on deadline expiry harvests
        ``runner.partial()`` — whose payload includes the live
        checkpoint, so the caller can re-submit and lose no work.
        """
        return self.submit(
            lambda remaining: Resumable(
                runner.step, runner.result, runner.partial
            ),
            priority=priority,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # Worker machinery
    # ------------------------------------------------------------------
    def _discard_cancelled(self, ticket: Ticket) -> None:
        """Remove a just-cancelled ticket from its lane, freeing its slot.

        Races benignly with a worker popping the same ticket: whichever
        side removes it from the lane does the accounting; the other
        side sees it gone (here: ``ValueError``; worker: the cancelled
        state) and counts nothing.
        """
        with self._cond:
            try:
                self._lanes[ticket.priority].remove(ticket)
            except ValueError:
                return  # already dequeued; the worker accounts for it
            self._queued -= 1
            self.stats["cancelled"] += 1

    def _pop_next(self) -> Ticket | None:
        """Highest-priority queued ticket, or ``None`` when stopping idle.

        Blocks on the condition until work arrives. Caller runs it.
        """
        with self._cond:
            while True:
                for lane in PRIORITIES:
                    if self._lanes[lane]:
                        self._queued -= 1
                        return self._lanes[lane].popleft()
                if self._stopping:
                    return None
                self._cond.wait()

    def _worker_loop(self) -> None:
        while True:
            ticket = self._pop_next()
            if ticket is None:
                return
            self._run_ticket(ticket)

    def _run_ticket(self, ticket: Ticket) -> None:
        now = self._clock()
        remaining = ticket.remaining(now)
        with ticket._lock:
            if ticket.state != "queued":
                # Resolved by cancel() while waiting in the lane.
                cancelled = True
            elif remaining is not None and remaining <= 0:
                cancelled = False
            else:
                # Atomic queued -> running transition: from here on,
                # cancel() can no longer win.
                ticket.state = "running"
                if ticket.started_at is None:
                    ticket.started_at = now
                cancelled = None
        if cancelled is True:
            with self._cond:
                self.stats["cancelled"] += 1
            return
        if cancelled is False:
            self._finish_deadline(
                ticket,
                f"deadline passed {-remaining:.3f}s before the request "
                "started (queued behind earlier work)",
            )
            return
        runner = ticket._runner
        if runner is None:
            try:
                value = ticket._fn(remaining)
            except BaseException as exc:  # noqa: BLE001 - delivered to caller
                with self._cond:
                    self.stats["failed"] += 1
                ticket.finished_at = self._clock()
                ticket._finish(None, exc)
                if not isinstance(exc, Exception):
                    # KeyboardInterrupt/SystemExit: the waiter got the
                    # error, but interpreter-exit signals must not be
                    # swallowed.
                    raise
                return
            if not isinstance(value, Resumable):
                with self._cond:
                    self.stats["completed"] += 1
                ticket.finished_at = self._clock()
                ticket._finish(value, None)
                return
            runner = value
        self._drive_runner(ticket, runner)

    def _finish_deadline(self, ticket: Ticket, message: str) -> None:
        """Resolve a ticket whose deadline expired, keeping partial work.

        A ticket that already ran some slices resolves with its
        runner's best-so-far payload attached to the error — the
        anytime contract: a missed deadline returns what was computed,
        it does not discard it.
        """
        partial = None
        if ticket._runner is not None:
            try:
                partial = ticket._runner.partial()
            except Exception:  # noqa: BLE001 - partial is best-effort
                partial = None
        with self._cond:
            if partial is None:
                self.stats["shed_deadline"] += 1
            else:
                self.stats["deadline_partials"] += 1
        ticket.finished_at = self._clock()
        ticket._finish(None, DeadlineExceededError(message, partial=partial))

    def _should_preempt(self, priority: str) -> bool:
        """Whether a running resumable should yield its worker.

        True when any ticket waits in this lane (round-robin among
        equals) or a higher lane (strict priority). Lower-priority
        backlog never preempts. Never preempts during shutdown — the
        drain finishes faster without bouncing tickets through lanes.
        """
        with self._cond:
            if self._stopping:
                return False
            index = PRIORITIES.index(priority)
            return any(self._lanes[p] for p in PRIORITIES[: index + 1])

    def _requeue(self, ticket: Ticket, runner: Resumable) -> None:
        """Put a timesliced-out ticket at the back of its lane."""
        with ticket._lock:
            if ticket._event.is_set():
                return  # resolved concurrently (cancel); drop silently
            ticket.state = "queued"
            ticket._runner = runner
            ticket.preemptions += 1
        with self._cond:
            self.stats["preemptions"] += 1
            self._lanes[ticket.priority].append(ticket)
            self._queued += 1
            self._cond.notify()

    def _drive_runner(self, ticket: Ticket, runner: Resumable) -> None:
        """Timeslice a :class:`Resumable` until done/deadline/preempted."""
        ticket._runner = runner
        while True:
            try:
                done = runner.step(self.quantum)
            except BaseException as exc:  # noqa: BLE001 - delivered to caller
                with self._cond:
                    self.stats["failed"] += 1
                ticket.finished_at = self._clock()
                ticket._finish(None, exc)
                if not isinstance(exc, Exception):
                    raise
                return
            if done:
                try:
                    value = runner.result()
                except Exception as exc:  # noqa: BLE001 - delivered to caller
                    with self._cond:
                        self.stats["failed"] += 1
                    ticket.finished_at = self._clock()
                    ticket._finish(None, exc)
                    return
                with self._cond:
                    self.stats["completed"] += 1
                ticket.finished_at = self._clock()
                ticket._finish(value, None)
                return
            if self.quantum is None:
                # Preemption disabled: step(None) means run-to-completion,
                # so a False return violates the Resumable contract. Fail
                # fast instead of busy-looping a worker forever.
                with self._cond:
                    self.stats["failed"] += 1
                ticket.finished_at = self._clock()
                ticket._finish(
                    None,
                    InvalidParameterError(
                        "Resumable.step(None) returned not-done; with "
                        "preemption disabled step(None) must run to "
                        "completion"
                    ),
                )
                return
            remaining = ticket.remaining(self._clock())
            if remaining is not None and remaining <= 0:
                self._finish_deadline(
                    ticket,
                    f"deadline expired {-remaining:.3f}s ago mid-solve; "
                    "returning the best solution found so far",
                )
                return
            if self._should_preempt(ticket.priority):
                self._requeue(ticket, runner)
                return

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain queued tickets, then stop workers.

        With ``wait=True`` (default) blocks until every worker exits.
        Idempotent.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def queued(self) -> int:
        """Number of tickets waiting in lanes right now."""
        with self._cond:
            return self._queued

    def info(self) -> dict:
        """Counters plus configuration (for the ``stats`` endpoint)."""
        with self._cond:
            return {
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "queued": self._queued,
                **self.stats,
            }

    def __repr__(self) -> str:
        return (
            f"Scheduler(workers={self.workers}, queue_limit={self.queue_limit}, "
            f"queued={self.queued()})"
        )
