"""The serving engine: protocol dispatch over a pool and a scheduler.

:class:`Server` is transport-agnostic: :meth:`Server.handle_request`
takes one decoded protocol message and returns one response envelope
(the in-process :class:`~repro.serve.client.Client` calls it directly),
while :meth:`Server.serve_stdio` runs the newline-delimited-JSON loop
behind ``python -m repro serve``.

Request classes and where they run:

* **compute** (``solve`` / ``count`` / ``bounds`` / ``warm``) —
  submitted to the :class:`~repro.serve.scheduler.Scheduler` with the
  request's priority lane and deadline; the worker resolves the
  tenant's warm session from the
  :class:`~repro.serve.pool.SessionPool` and runs there. Responses
  stream back in completion order.
* **feed traffic** (``feed_open`` / ``feed_push`` / ``feed_flush`` /
  ``feed_solution`` / ``feed_close``) — handled inline on the
  transport thread. Feed operations are order-sensitive per tenant
  (a pipelined NDJSON client sends ``feed_open`` and its pushes
  back-to-back without waiting for responses), so the whole feed
  lifecycle runs inline to preserve submission order; the
  buffered-flush design keeps the common push cheap.
* **admin** (``ping`` / ``register_graph`` / ``unregister_graph`` /
  ``stats`` / ``shutdown``) — inline; these are cheap and
  latency-sensitive.

Deadline admission uses registry capability metadata: a ``solve``
deadline is only accepted for methods whose
:attr:`~repro.core.registry.Method.can_meet_deadline` holds — for
budget-capable methods the remaining time is forwarded as
``time_budget`` so a long exact solve stops cooperatively. The other
compute ops (``count``/``bounds``/``warm``) also take deadlines, but
those are *queue-time only*: an expired request is shed before a worker
starts it, while a request that has started runs to completion (their
enumeration passes have no cooperative interruption hook).

**Anytime solves.** Methods with a resumable engine
(:attr:`~repro.core.registry.Method.resumable` — ``hg``/``l``/``lp``/
``opt-bb``) run as :class:`repro.core.task.SolveTask` objects wrapped
in a scheduler :class:`~repro.serve.scheduler.Resumable`, so the
scheduler timeslices them across priority lanes, a deadline expiry
resolves with the best-so-far solution attached to the error envelope
(``error.partial: true`` + a ``result`` payload), and a request with
``"progress": true`` streams ``progress`` events while the solve
improves. Driving a task to completion returns exactly what the
blocking path would, so results are transport-invariant either way.
"""

from __future__ import annotations

import itertools
import time
from pathlib import Path
from typing import Callable, Iterable, TextIO

from repro.analysis.bounds import optimum_upper_bounds
from repro.concurrency import make_lock, make_rlock
from repro.core.registry import REGISTRY, SolverRegistry
from repro.core.result import CliqueSetResult
from repro.core.session import Session
from repro.errors import (
    InvalidParameterError,
    ProtocolError,
    UnknownFeedError,
    UnknownGraphError,
)
from repro.graph.graph import Graph
from repro.serve import protocol
from repro.serve.feeds import DynamicFeed, FlushPolicy, FlushReport
from repro.graph.fingerprint import graph_fingerprint
from repro.errors import OutOfTimeError
from repro.serve.pool import SessionPool
from repro.serve.scheduler import Resumable, Scheduler, Ticket


def _result_payload(result: CliqueSetResult, include_cliques: bool) -> dict:
    """Serialise a :class:`CliqueSetResult` for the wire."""
    payload = {
        "size": result.size,
        "k": result.k,
        "method": result.method,
        "covered": len(result.covered_nodes),
    }
    if include_cliques:
        payload["cliques"] = [list(c) for c in result.sorted_cliques()]
    return payload


def _flush_payload(report: FlushReport | None) -> dict:
    if report is None:
        return {"flushed": False}
    return {
        "flushed": True,
        "applied": report.applied,
        "size": report.solution_size,
        "pending": report.pending,
    }


class Server:
    """A multi-tenant serving engine (one per process).

    Parameters
    ----------
    workers:
        Scheduler worker threads for compute requests.
    queue_limit:
        Bounded-queue admission limit (see :class:`Scheduler`).
    max_sessions / max_bytes:
        Session-pool budgets (see :class:`SessionPool`).
    quantum:
        Scheduler timeslice for resumable solves in seconds; ``None``
        disables preemption (see :class:`Scheduler`).
    registry:
        Solver registry used for method lookup and new sessions.
    clock:
        Monotonic time source shared with feeds (injectable in tests).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        queue_limit: int = 64,
        max_sessions: int | None = None,
        max_bytes: int | None = None,
        quantum: float | None = 0.05,
        registry: SolverRegistry = REGISTRY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.pool = SessionPool(
            max_sessions=max_sessions, max_bytes=max_bytes, registry=registry
        )
        self.scheduler = Scheduler(workers, queue_limit=queue_limit, quantum=quantum)
        self._clock = clock
        self._lock = make_rlock("Server._lock")
        self._graphs: dict[str, tuple[Graph, str]] = {}
        self._feeds: dict[str, DynamicFeed] = {}
        self._feed_ids = itertools.count(1)
        self._sweep_errors = 0
        self._shutting_down = False

    # ------------------------------------------------------------------
    # Tenant graph registry
    # ------------------------------------------------------------------
    def register_graph(self, name: str, graph: Graph) -> dict:
        """Register ``graph`` under ``name`` and admit its session to the pool.

        Re-registering a name replaces its graph (the old session stays
        pooled until evicted — another tenant may still be keyed to it).
        """
        fingerprint = graph_fingerprint(graph)
        with self._lock:
            self._graphs[name] = (graph, fingerprint)
        self.pool.get(graph, fingerprint=fingerprint)
        return {
            "name": name,
            "fingerprint": fingerprint,
            "n": graph.n,
            "m": graph.m,
        }

    def unregister_graph(self, name: str) -> dict:
        """Drop a tenant graph; evict its session if no other name shares it.

        This is how a long-lived server actually frees tenant memory:
        the pool's byte budget bounds *substrate caches*, but the raw
        registered graphs are pinned until unregistered. Open feeds are
        unaffected (each owns a private dynamic copy).
        """
        with self._lock:
            entry = self._graphs.pop(name, None)
            still_shared = entry is not None and any(
                fp == entry[1] for _, fp in self._graphs.values()
            )
        if entry is None:
            raise UnknownGraphError(f"graph {name!r} is not registered")
        evicted = False
        if not still_shared:
            evicted = self.pool.evict(entry[1])
        return {"name": name, "unregistered": True, "session_evicted": evicted}

    def _resolve_graph(self, message: dict) -> tuple[Graph, str]:
        name = protocol.require(message, "graph", str, "a registered graph name")
        with self._lock:
            entry = self._graphs.get(name)
        if entry is None:
            raise UnknownGraphError(
                f"graph {name!r} is not registered; send register_graph first"
            )
        return entry

    def _session_for(self, message: dict) -> Session:
        graph, fingerprint = self._resolve_graph(message)
        return self.pool.get(graph, fingerprint=fingerprint)

    def _resolve_feed(self, message: dict) -> tuple[str, DynamicFeed]:
        feed_id = protocol.require(message, "feed", str, "an open feed id")
        with self._lock:
            feed = self._feeds.get(feed_id)
        if feed is None:
            raise UnknownFeedError(f"feed {feed_id!r} is not open")
        return feed_id, feed

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def handle_request(self, message: dict, emit: Callable | None = None) -> dict:
        """Process one decoded request synchronously; never raises.

        Compute requests block until their scheduler ticket resolves —
        the transport that wants streaming should use
        :meth:`submit_request` instead. ``emit`` optionally receives
        interim ``progress`` event envelopes (see
        :func:`repro.serve.protocol.progress_event`).
        """
        request_id = message.get("id")
        try:
            handled = self.submit_request(message, emit)
        except Exception as exc:  # noqa: BLE001 - becomes the error envelope
            return protocol.error_response(request_id, exc)
        if isinstance(handled, Ticket):
            try:
                return protocol.ok_response(request_id, handled.result())
            except Exception as exc:  # noqa: BLE001
                return protocol.error_response(request_id, exc)
        return protocol.ok_response(request_id, handled)

    def submit_request(
        self, message: dict, emit: Callable | None = None
    ) -> dict | Ticket:
        """Dispatch one request; inline ops return a result dict, compute
        ops return the scheduler :class:`Ticket` resolving to one.

        Raises on admission errors (overload, unknown op/graph/feed,
        invalid fields); the caller maps those to error envelopes.
        ``emit`` is the transport's sink for streamed ``progress``
        events (called from worker threads; must be thread-safe).
        """
        op = message.get("op")
        if op not in protocol.OPERATIONS:
            raise ProtocolError(
                f"unknown op {op!r}; expected one of {', '.join(protocol.OPERATIONS)}"
            )
        if self._shutting_down and op != "stats":
            raise InvalidParameterError("server is shutting down")
        return getattr(self, f"_op_{op}")(message, emit)

    def _submit_compute(
        self, message: dict, fn: Callable[[float | None], dict]
    ) -> Ticket:
        deadline = message.get("deadline")
        if deadline is not None and not protocol.is_number(deadline):
            raise ProtocolError("'deadline' must be a number of seconds")
        # Priority validation happens in Scheduler.submit (synchronously,
        # with the same typed error) — no second copy here to drift.
        return self.scheduler.submit(
            fn, priority=message.get("priority", "normal"), deadline=deadline
        )

    # -- admin ---------------------------------------------------------
    def _op_ping(self, message: dict, emit: Callable | None = None) -> dict:
        return {"pong": True}

    def _op_stats(self, message: dict, emit: Callable | None = None) -> dict:
        # Snapshot under the lock, query outside it: feed.info() waits on
        # that feed's lock (a flush may be in progress), and holding the
        # server lock through that would stall every other request.
        with self._lock:
            # Feed-registration order keys a JSON object whose consumers
            # look up by feed id; key order is not part of the protocol.
            feed_items = list(self._feeds.items())  # repro-lint: ignore=iterorder
            graphs = sorted(self._graphs)
        feeds = {feed_id: feed.info() for feed_id, feed in feed_items}
        return {
            "pool": self.pool.info(),
            "scheduler": self.scheduler.info(),
            "graphs": graphs,
            "feeds": feeds,
            "sweep_errors": self._sweep_errors,
        }

    def _op_shutdown(self, message: dict, emit: Callable | None = None) -> dict:
        with self._lock:
            self._shutting_down = True
        return {"shutting_down": True}

    def _op_register_graph(self, message: dict, emit: Callable | None = None) -> dict:
        name = protocol.require(message, "name", str, "a graph name")
        sources = [key for key in ("edges", "dataset", "path") if key in message]
        if len(sources) != 1:
            raise ProtocolError(
                "register_graph requires exactly one of 'edges', 'dataset' "
                f"or 'path', got {sources or 'none'}"
            )
        if "edges" in message:
            edges = message["edges"]
            if not isinstance(edges, list):
                raise ProtocolError("'edges' must be a list of [u, v] pairs")
            pairs = []
            for entry in edges:
                if (
                    not isinstance(entry, (list, tuple))
                    or len(entry) != 2
                    or not all(protocol.is_int(x) for x in entry)
                ):
                    raise ProtocolError(
                        f"each edge must be an [u, v] integer pair, got {entry!r}"
                    )
                pairs.append((entry[0], entry[1]))
            n = message.get("n")
            if n is not None and not protocol.is_int(n):
                raise ProtocolError("'n' must be an integer node count")
            graph = Graph.from_edges(pairs, n=n)
        elif "dataset" in message:
            from repro.graph import datasets

            graph = datasets.load(
                protocol.require(message, "dataset", str, "a dataset name")
            )
        else:
            from repro.graph.io import read_edge_list

            graph, _ = read_edge_list(
                Path(protocol.require(message, "path", str, "an edge-list path"))
            )
        return self.register_graph(name, graph)

    def _op_unregister_graph(self, message: dict, emit: Callable | None = None) -> dict:
        return self.unregister_graph(
            protocol.require(message, "name", str, "a registered graph name")
        )

    # -- compute -------------------------------------------------------
    def _op_solve(self, message: dict, emit: Callable | None = None) -> Ticket:
        graph, fingerprint = self._resolve_graph(message)
        k = protocol.require(message, "k", int, "an integer clique size")
        method = self.registry.get(message.get("method", "lp"))
        options = dict(message.get("options") or {})
        method.parse_options(options)  # validate at admission, not on a worker
        include_cliques = bool(message.get("include_cliques", True))
        want_progress = bool(message.get("progress", False))
        if message.get("deadline") is not None and not method.can_meet_deadline:
            raise InvalidParameterError(
                f"method {method.tag!r} cannot honour a deadline (no "
                "resumable engine, no time_budget support and not "
                "deadline_safe); drop the deadline or pick a "
                "deadline-capable method"
            )
        # An explicit time_budget keeps the cooperative blocking path:
        # the option bounds solver work, while tasks are step-bounded.
        # With preemption disabled (quantum=None) the task path would
        # drive to completion with no mid-run deadline checks, so the
        # cooperative path is the only one that can enforce deadlines —
        # fall back to it (PR 4 semantics).
        resumable = (
            method.resumable
            and options.get("time_budget") is None
            and self.scheduler.quantum is not None
        )
        request_id = message.get("id")

        def run(remaining: float | None) -> dict | Resumable:
            session = self.pool.get(graph, fingerprint=fingerprint)
            if not resumable:
                opts = dict(options)
                if (
                    remaining is not None
                    and method.supports_time_budget
                    and "time_budget" not in opts
                ):
                    opts["time_budget"] = remaining
                try:
                    result = session.solve(k, method.tag, **opts)
                except OutOfTimeError as exc:
                    # Cooperative solvers attach their incumbent; make it
                    # wire-ready so the error envelope keeps the work.
                    partial = getattr(exc, "partial", None)
                    if hasattr(partial, "sorted_cliques"):
                        exc.partial = {
                            **_result_payload(partial, include_cliques),
                            "partial": True,
                        }
                    raise
                return _result_payload(result, include_cliques)

            task = session.task(k, method.tag, **options)
            if want_progress and emit is not None:
                def report(snapshot) -> None:
                    emit(protocol.progress_event(request_id, {
                        "size": snapshot.size,
                        "bound": snapshot.bound,
                        "work": snapshot.work,
                        "done": snapshot.done,
                    }))

                task.on_progress(report)

            def step(seconds: float | None) -> bool:
                return task.step(max_seconds=seconds).done

            def final() -> dict:
                return _result_payload(task.result(), include_cliques)

            def partial() -> dict:
                return {
                    **_result_payload(task.best(), include_cliques),
                    "partial": True,
                    "bound": task.bound(),
                    "work": task.work,
                }

            return Resumable(step, final, partial)

        return self._submit_compute(message, run)

    def _op_count(self, message: dict, emit: Callable | None = None) -> Ticket:
        graph, fingerprint = self._resolve_graph(message)
        k = protocol.require(message, "k", int, "an integer clique size")

        def run(remaining: float | None) -> dict:
            session = self.pool.get(graph, fingerprint=fingerprint)
            return {"k": k, "count": session.prep.clique_count(k)}

        return self._submit_compute(message, run)

    def _op_bounds(self, message: dict, emit: Callable | None = None) -> Ticket:
        graph, fingerprint = self._resolve_graph(message)
        k = protocol.require(message, "k", int, "an integer clique size")

        def run(remaining: float | None) -> dict:
            session = self.pool.get(graph, fingerprint=fingerprint)
            bounds = optimum_upper_bounds(
                graph,
                k,
                scores=session.prep.scores(k),
                total_cliques=session.prep.clique_count(k),
            )
            return {
                "k": k,
                "node_bound": bounds.node_bound,
                "count_bound": bounds.count_bound,
                "component_bound": bounds.component_bound,
                "best": bounds.best,
            }

        return self._submit_compute(message, run)

    def _op_warm(self, message: dict, emit: Callable | None = None) -> Ticket:
        graph, fingerprint = self._resolve_graph(message)
        ks = protocol.require(message, "ks", list, "a list of integer k values")
        if not all(protocol.is_int(k) for k in ks):
            raise ProtocolError("'ks' must be a list of integers")
        cliques = bool(message.get("cliques", False))

        def run(remaining: float | None) -> dict:
            session = self.pool.get(graph, fingerprint=fingerprint)
            session.warm(ks, cliques=cliques)
            return {"warmed": list(ks), "cache": session.cache_info()}

        return self._submit_compute(message, run)

    # -- feed traffic (inline, order-preserving) -----------------------
    def _op_feed_open(self, message: dict, emit: Callable | None = None) -> dict:
        graph, fingerprint = self._resolve_graph(message)
        k = protocol.require(message, "k", int, "an integer clique size")
        method = self.registry.get(message.get("method", "lp")).tag
        policy_spec = message.get("policy") or {}
        if not isinstance(policy_spec, dict):
            raise ProtocolError("'policy' must be an object")
        try:
            policy = FlushPolicy(**policy_spec)
        except TypeError as exc:
            raise ProtocolError(f"bad flush policy: {exc}") from None
        requested_id = message.get("feed")
        if requested_id is not None and not isinstance(requested_id, str):
            raise ProtocolError("'feed' must be a string id")
        with self._lock:
            feed_id = requested_id or f"feed-{next(self._feed_ids)}"
            if feed_id in self._feeds:
                raise InvalidParameterError(f"feed {feed_id!r} is already open")
        # The initial solve runs inline: a pipelined client may push
        # into this feed on its very next line, so the open must be
        # complete before the transport reads on. The pooled session
        # keeps it cheap when the tenant's substrates are warm.
        session = self.pool.get(graph, fingerprint=fingerprint)
        feed = DynamicFeed(
            session, k, method=method, policy=policy, clock=self._clock
        )
        with self._lock:
            if feed_id in self._feeds:
                raise InvalidParameterError(f"feed {feed_id!r} is already open")
            self._feeds[feed_id] = feed
        return {"feed": feed_id, "k": k, "size": feed.maintainer.size}

    @staticmethod
    def _parse_updates(message: dict) -> list[tuple[str, int, int]]:
        raw = protocol.require(
            message, "updates", list, "a list of [op, u, v] triples"
        )
        updates = []
        for entry in raw:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 3
                or not isinstance(entry[0], str)
                or not all(protocol.is_int(x) for x in entry[1:])
            ):
                raise ProtocolError(
                    f"each update must be an ['insert'|'delete', u, v] "
                    f"triple, got {entry!r}"
                )
            updates.append((entry[0], entry[1], entry[2]))
        return updates

    def _op_feed_push(self, message: dict, emit: Callable | None = None) -> dict:
        feed_id, feed = self._resolve_feed(message)
        report = feed.push(self._parse_updates(message))
        payload = {"feed": feed_id, **_flush_payload(report)}
        # One source of truth for "pending": the flush report when a
        # flush happened (exact state at end of this push), else a
        # fresh read.
        payload.setdefault("pending", feed.pending)
        return payload

    def _op_feed_flush(self, message: dict, emit: Callable | None = None) -> dict:
        feed_id, feed = self._resolve_feed(message)
        return {"feed": feed_id, **_flush_payload(feed.flush())}

    def _op_feed_solution(self, message: dict, emit: Callable | None = None) -> dict:
        feed_id, feed = self._resolve_feed(message)
        include_cliques = bool(message.get("include_cliques", True))
        result = feed.solution()
        return {"feed": feed_id, **_result_payload(result, include_cliques)}

    def _op_feed_close(self, message: dict, emit: Callable | None = None) -> dict:
        feed_id, feed = self._resolve_feed(message)
        # Final flush first: if it raises, the feed stays open (the
        # client sees the error and can retry or inspect), instead of
        # silently dropping buffered updates with the feed already gone.
        final_size = feed.size
        with self._lock:
            self._feeds.pop(feed_id, None)
        return {"feed": feed_id, "closed": True, "final_size": final_size}

    # ------------------------------------------------------------------
    # Maintenance & lifecycle
    # ------------------------------------------------------------------
    def sweep_feeds(self) -> int:
        """Age-flush every feed whose policy is due; returns flush count.

        The stdio loop calls this between requests so ``max_age``
        policies make progress even when a feed's tenant goes quiet.
        One feed's failure must never take the transport down with it
        (or starve the other feeds' sweeps), so per-feed exceptions are
        contained and counted.
        """
        with self._lock:
            # Sweep order is scheduling-only: each feed's flush is
            # independent and per-feed failures are contained below.
            feeds = list(self._feeds.values())  # repro-lint: ignore=iterorder
        flushed = 0
        for feed in feeds:
            try:
                if feed.maybe_flush() is not None:
                    flushed += 1
            except Exception:  # noqa: BLE001 - isolated per tenant
                with self._lock:
                    self._sweep_errors += 1
        return flushed

    def close(self) -> None:
        """Drain the scheduler and release workers (idempotent)."""
        with self._lock:
            self._shutting_down = True
        self.scheduler.shutdown(wait=True)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport: newline-delimited JSON over text streams
    # ------------------------------------------------------------------
    def serve_stdio(self, stdin: TextIO, stdout: TextIO) -> int:
        """Run the NDJSON request loop until ``shutdown`` or EOF.

        Inline ops respond immediately; compute ops respond when their
        ticket resolves, so responses can interleave out of request
        order (clients match on ``id``). A write lock keeps concurrent
        completions line-atomic. Returns 0 on clean shutdown.
        """
        write_lock = make_lock("serve_stdio.write_lock")
        inflight: list[Ticket] = []

        def write(envelope: dict) -> None:
            # Waived: serialising the write itself is this lock's whole
            # job — holding it across the I/O is what makes concurrent
            # ticket completions line-atomic on the shared stream.
            with write_lock:
                stdout.write(protocol.encode(envelope) + "\n")  # repro-lint: ignore=holdcalling
                stdout.flush()  # repro-lint: ignore=holdcalling

        shutdown_seen = False
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            try:
                message = protocol.decode_request(line)
            except ProtocolError as exc:
                write(protocol.error_response(None, exc))
                continue
            request_id = message.get("id")
            try:
                handled = self.submit_request(message, write)
            except Exception as exc:  # noqa: BLE001 - KeyboardInterrupt et al.
                # propagate so the operator can actually stop the server
                write(protocol.error_response(request_id, exc))
                continue
            if isinstance(handled, Ticket):
                inflight.append(handled)

                def respond(ticket: Ticket, request_id=request_id) -> None:
                    error = ticket.error()
                    if error is not None:
                        write(protocol.error_response(request_id, error))
                    else:
                        write(protocol.ok_response(request_id, ticket.result()))

                handled.add_done_callback(respond)
            else:
                write(protocol.ok_response(request_id, handled))
                if message["op"] == "shutdown":
                    shutdown_seen = True
                    break
            self.sweep_feeds()
            inflight = [t for t in inflight if not t.done]
        for ticket in inflight:
            ticket.error()  # wait; the done-callback writes the response
        self.close()
        if not shutdown_seen:
            # EOF without an explicit shutdown is still a clean exit for
            # piped usage (`... | python -m repro serve`).
            pass
        return 0
