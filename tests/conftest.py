"""Shared fixtures: the paper's running examples and random-graph helpers."""

from __future__ import annotations

import itertools

import pytest

from repro import Graph
from repro.graph.generators import erdos_renyi_gnp


@pytest.fixture(scope="session", autouse=True)
def lock_order_watchdog():
    """Cross-check runtime lock edges against the static lock graph.

    Under ``REPRO_TRACK_LOCKS=1`` every lock created through
    ``repro.concurrency`` records observed (held, acquired) label pairs.
    After the suite, any observed edge missing from the analyzer's
    static graph means the ``lockorder`` rule has a resolution gap —
    fail loudly so the model is fixed rather than silently rotting.
    """
    from repro.concurrency import observed_edges, tracking_enabled

    yield
    if not tracking_enabled():
        return
    observed = observed_edges()
    if not observed:
        return
    from tools.repro_lint.concurrency.lockorder import static_edge_set

    missing = observed - static_edge_set()
    assert not missing, (
        "runtime lock-order edges missing from the static graph "
        f"(the lockorder analyzer failed to resolve them): {sorted(missing)}"
    )


def paper_example_edges() -> list[tuple[int, int]]:
    """The 15 edges of the paper's running example (Fig. 2, nodes v1..v9).

    Node ``v_i`` is represented as ``i - 1``. The graph has exactly seven
    3-cliques: C1=(v1,v3,v6), C2=(v3,v5,v6), C3=(v5,v6,v8), C4=(v5,v7,v8),
    C5=(v7,v8,v9), C6=(v4,v7,v9), C7=(v2,v4,v9).
    """
    one_based = [
        (1, 3), (1, 6), (3, 6),          # C1
        (3, 5), (5, 6),                  # C2
        (5, 8), (6, 8),                  # C3
        (5, 7), (7, 8),                  # C4
        (7, 9), (8, 9),                  # C5
        (4, 7), (4, 9),                  # C6
        (2, 4), (2, 9),                  # C7
    ]
    return [(u - 1, v - 1) for u, v in one_based]


PAPER_TRIANGLES = [
    frozenset(x - 1 for x in c)
    for c in [
        (1, 3, 6), (3, 5, 6), (5, 6, 8), (5, 7, 8),
        (7, 8, 9), (4, 7, 9), (2, 4, 9),
    ]
]


def paper_fig5_edges() -> list[tuple[int, int]]:
    """Graph G1 of the paper's Fig. 5 (11 nodes, 0-indexed).

    Contains triangles (v1,v2,v3), (v3,v4,v5), (v9,v10,v11) plus the path
    structure v5-v6, v6-v7 used by the swap example; adding (v5, v7)
    turns it into G2 where the swap produces three disjoint triangles.
    """
    one_based = [
        (1, 2), (1, 3), (2, 3),          # triangle (v1,v2,v3)
        (3, 4), (3, 5), (4, 5),          # triangle (v3,v4,v5)
        (5, 6), (6, 7),                  # path toward v7
        (9, 10), (9, 11), (10, 11),      # triangle (v9,v10,v11)
        (7, 8),                          # spare edge keeping v8 attached
    ]
    return [(u - 1, v - 1) for u, v in one_based]


@pytest.fixture
def paper_graph() -> Graph:
    """The 9-node, 15-edge running example of the paper."""
    return Graph(9, paper_example_edges())


@pytest.fixture
def fig5_g1() -> Graph:
    """Fig. 5's G1 (before inserting (v5, v7))."""
    return Graph(11, paper_fig5_edges())


@pytest.fixture
def triangle_pair() -> Graph:
    """Two disjoint triangles."""
    return Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])


def brute_force_cliques(graph: Graph, k: int) -> set[frozenset[int]]:
    """All k-cliques by testing every k-subset (tiny graphs only)."""
    return {
        frozenset(combo)
        for combo in itertools.combinations(range(graph.n), k)
        if graph.is_clique(combo)
    }


def brute_force_max_disjoint(graph: Graph, k: int) -> int:
    """Optimal |S| by exhaustive search over clique subsets (tiny only)."""
    cliques = sorted(brute_force_cliques(graph, k), key=sorted)
    best = 0

    def extend(idx: int, used: frozenset[int], count: int) -> None:
        nonlocal best
        best = max(best, count)
        if count + (len(cliques) - idx) <= best:
            return
        for i in range(idx, len(cliques)):
            if used.isdisjoint(cliques[i]):
                extend(i + 1, used | cliques[i], count + 1)

    extend(0, frozenset(), 0)
    return best


@pytest.fixture
def random_graphs() -> list[Graph]:
    """A spread of small random graphs for cross-validation tests."""
    graphs = []
    for seed, (n, p) in enumerate(
        [(8, 0.4), (12, 0.35), (15, 0.3), (18, 0.35), (20, 0.25), (25, 0.3)]
    ):
        graphs.append(erdos_renyi_gnp(n, p, seed=seed))
    return graphs
