"""Tests for the unified find_disjoint_cliques entry point."""

import pytest

from repro import METHODS, Graph, find_disjoint_cliques
from repro.errors import InvalidParameterError
from repro.graph.dynamic import DynamicGraph


class TestDispatch:
    def test_all_methods_listed(self):
        assert set(METHODS) == {"hg", "gc", "l", "lp", "opt", "opt-bb"}

    def test_method_tags_round_trip(self, triangle_pair):
        for method in METHODS:
            result = find_disjoint_cliques(triangle_pair, 3, method=method)
            assert result.method == method
            assert result.size == 2

    def test_case_insensitive(self, triangle_pair):
        assert find_disjoint_cliques(triangle_pair, 3, method="LP").size == 2

    def test_default_is_lp(self, triangle_pair):
        assert find_disjoint_cliques(triangle_pair, 3).method == "lp"

    def test_kwargs_forwarded(self, paper_graph):
        result = find_disjoint_cliques(paper_graph, 3, method="hg", order="degeneracy")
        assert result.method == "hg"


class TestErrors:
    def test_unknown_method(self, triangle_pair):
        with pytest.raises(InvalidParameterError, match="unknown method"):
            find_disjoint_cliques(triangle_pair, 3, method="magic")

    def test_prune_kwarg_rejected(self, triangle_pair):
        with pytest.raises(InvalidParameterError, match="prune"):
            find_disjoint_cliques(triangle_pair, 3, method="lp", prune=False)

    def test_dynamic_graph_rejected(self, triangle_pair):
        dyn = DynamicGraph.from_graph(triangle_pair)
        with pytest.raises(InvalidParameterError, match="snapshot"):
            find_disjoint_cliques(dyn, 3)

    def test_invalid_k_propagates(self, triangle_pair):
        with pytest.raises(InvalidParameterError):
            find_disjoint_cliques(triangle_pair, 1)


class TestDocExample:
    def test_module_doctest_case(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        assert find_disjoint_cliques(g, k=3, method="lp").size == 2
