"""Property-style equivalence of the set and CSR enumeration backends.

The ``"csr"`` backend must be an observationally perfect stand-in for
the ``"sets"`` backend: identical clique listings (as canonical sets),
identical counts, identical node scores, and byte-identical
``lightweight`` / ``store_all`` solutions — on the paper's figures and
on random G(n, p) graphs, across k in {3, 4, 5}.
"""

import numpy as np
import pytest

from repro import Graph, Session
from repro.cliques.counting import node_scores
from repro.cliques.csr_kernels import AUTO_EDGE_THRESHOLD, resolve_backend
from repro.cliques.listing import count_cliques, iter_cliques, list_cliques
from repro.core.lightweight import lightweight
from repro.core.store_all import store_all_cliques
from repro.errors import InvalidParameterError
from repro.graph.dag import OrientedCSR, OrientedGraph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_gnp,
    powerlaw_cluster,
)

KS = (3, 4, 5)


@pytest.fixture
def graph_corpus(paper_graph, fig5_g1):
    """Paper-figure graphs plus a spread of random ones."""
    graphs = [
        paper_graph,
        fig5_g1,
        complete_graph(8),
        Graph(7, []),
    ]
    for seed, (n, p) in enumerate([(30, 0.3), (45, 0.25), (60, 0.2), (80, 0.15)]):
        graphs.append(erdos_renyi_gnp(n, p, seed=seed))
    graphs.append(powerlaw_cluster(150, 5, 0.6, seed=11))
    return graphs


def canonical(cliques):
    return sorted(tuple(sorted(c)) for c in cliques)


class TestOrientedCSR:
    def test_matches_out_sets(self, paper_graph):
        for order in ("id", "degree", "degeneracy"):
            dag = OrientedGraph.orient(paper_graph, order)
            ocsr = dag.csr()
            for u in paper_graph.nodes():
                row = ocsr.row(u)
                assert list(row) == sorted(dag.out[u])
            assert ocsr.out_degrees().tolist() == [
                len(s) for s in dag.out
            ]

    def test_cached_on_dag(self, paper_graph):
        dag = OrientedGraph.orient(paper_graph)
        assert not dag.has_csr
        assert dag.csr() is dag.csr()
        assert dag.has_csr

    def test_empty_graph(self):
        ocsr = OrientedCSR.from_rank(Graph(0), np.empty(0, dtype=np.int64))
        assert ocsr.n == 0 and len(ocsr.cols) == 0


class TestResolveBackend:
    def test_explicit_backends_pass_through(self):
        assert resolve_backend("sets", 10**9) == "sets"
        assert resolve_backend("csr", 0) == "csr"

    def test_auto_uses_edge_threshold(self):
        assert resolve_backend("auto", AUTO_EDGE_THRESHOLD - 1) == "sets"
        assert resolve_backend("auto", AUTO_EDGE_THRESHOLD) == "csr"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError, match="backend"):
            resolve_backend("numpy", 100)

    @pytest.mark.parametrize("fn", [count_cliques, node_scores, list_cliques])
    def test_unknown_backend_rejected_at_entrypoints(self, paper_graph, fn):
        with pytest.raises(InvalidParameterError, match="backend"):
            fn(paper_graph, 3, backend="bogus")

    def test_lightweight_rejects_unknown_backend(self, paper_graph):
        with pytest.raises(InvalidParameterError, match="backend"):
            lightweight(paper_graph, 3, backend="bogus")


class TestEnumerationEquivalence:
    @pytest.mark.parametrize("k", KS)
    def test_listings_counts_scores_match(self, k, graph_corpus):
        for g in graph_corpus:
            listing_sets = canonical(iter_cliques(g, k, backend="sets"))
            listing_csr = canonical(iter_cliques(g, k, backend="csr"))
            assert listing_sets == listing_csr
            count_sets = count_cliques(g, k, backend="sets")
            count_csr = count_cliques(g, k, backend="csr")
            assert count_sets == count_csr == len(listing_sets)
            assert (
                node_scores(g, k, backend="sets").tolist()
                == node_scores(g, k, backend="csr").tolist()
            )

    @pytest.mark.parametrize("order", ["id", "degree", "degeneracy"])
    def test_order_invariant_across_backends(self, paper_graph, order):
        assert canonical(
            iter_cliques(paper_graph, 3, order=order, backend="csr")
        ) == canonical(iter_cliques(paper_graph, 3, order=order, backend="sets"))

    def test_small_k_fast_paths(self, paper_graph):
        for k in (1, 2):
            assert canonical(iter_cliques(paper_graph, k, backend="csr")) == canonical(
                iter_cliques(paper_graph, k, backend="sets")
            )
            assert count_cliques(paper_graph, k, backend="csr") == count_cliques(
                paper_graph, k, backend="sets"
            )


class TestSolverEquivalence:
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("prune", [False, True])
    def test_lightweight_identical(self, k, prune, graph_corpus):
        for g in graph_corpus:
            rs = lightweight(g, k, prune=prune, backend="sets")
            rc = lightweight(g, k, prune=prune, backend="csr")
            assert rs.sorted_cliques() == rc.sorted_cliques()
            # Candidate iteration order matches, so even the ablation
            # counters are backend-invariant.
            assert rs.stats == rc.stats

    @pytest.mark.parametrize("k", KS)
    def test_store_all_identical(self, k, graph_corpus):
        for g in graph_corpus:
            rs = store_all_cliques(g, k, backend="sets")
            rc = store_all_cliques(g, k, backend="csr")
            assert rs.sorted_cliques() == rc.sorted_cliques()

    def test_auto_matches_forced_backends(self):
        g = powerlaw_cluster(200, 6, 0.5, seed=3)
        for k in KS:
            ra = lightweight(g, k, backend="auto")
            rs = lightweight(g, k, backend="sets")
            assert ra.sorted_cliques() == rs.sorted_cliques()
            assert ra.stats == rs.stats


class TestSessionBackend:
    def test_solve_accepts_backend_option(self, paper_graph):
        session = Session(paper_graph)
        for backend in ("auto", "sets", "csr"):
            a = session.solve(3, "lp", backend=backend)
            b = session.solve(3, "gc", backend=backend)
            assert a.sorted_cliques() == b.sorted_cliques()

    def test_unknown_backend_option_rejected(self, paper_graph):
        session = Session(paper_graph)
        with pytest.raises(InvalidParameterError, match="backend"):
            session.solve(3, "lp", backend="bogus")

    def test_warm_backend_caches_are_shared(self, paper_graph):
        warm_csr = Session(paper_graph).warm([3, 4], cliques=True, backend="csr")
        warm_sets = Session(paper_graph).warm([3, 4], cliques=True, backend="sets")
        for k in (3, 4):
            assert warm_csr.prep.cliques(k) == warm_sets.prep.cliques(k)
            assert (
                warm_csr.prep.scores(k).tolist()
                == warm_sets.prep.scores(k).tolist()
            )
        assert warm_csr.solve(3, "lp").sorted_cliques() == warm_sets.solve(
            3, "lp"
        ).sorted_cliques()

    def test_warm_rejects_unknown_backend(self, paper_graph):
        with pytest.raises(InvalidParameterError, match="backend"):
            Session(paper_graph).warm([3], backend="bogus")

    def test_oriented_csr_cached(self, paper_graph):
        session = Session(paper_graph)
        first = session.prep.oriented_csr()
        assert session.prep.stats["csr_builds"] == 1
        assert session.prep.oriented_csr() is first
        assert session.prep.stats["csr_builds"] == 1
        assert "degeneracy" in session.cache_info()["csr_orientations"]


class TestLocalPatchEnumeration:
    """The dynamic path's patch engine vs the set recursion it replaces."""

    def canonical(self, cliques):
        return sorted(sorted(c) for c in cliques)

    @pytest.mark.parametrize("k", KS)
    def test_iter_cliques_within_csr_matches_sets(self, k):
        from repro.cliques.csr_kernels import iter_cliques_within_csr
        from repro.dynamic.local import iter_cliques_within

        rng = np.random.default_rng(5)
        for seed in range(4):
            g = erdos_renyi_gnp(30, 0.3, seed=seed)
            pool = {int(u) for u in rng.choice(30, size=18, replace=False)}
            assert self.canonical(iter_cliques_within_csr(g, pool, k)) == \
                self.canonical(iter_cliques_within(g, pool, k))

    @pytest.mark.parametrize("k", (2, 3, 4))
    def test_require_filters_by_membership(self, k):
        from repro.cliques.csr_kernels import iter_cliques_within_csr
        from repro.dynamic.local import iter_cliques_within

        g = erdos_renyi_gnp(26, 0.35, seed=9)
        pool = set(range(26))
        require = {0, 3, 7, 11}
        expected = [
            c for c in iter_cliques_within(g, pool, k) if c & require
        ]
        assert self.canonical(
            iter_cliques_within_csr(g, pool, k, require=require)
        ) == self.canonical(expected)

    @pytest.mark.parametrize("k", (2, 3, 4))
    def test_labels_restrict_to_single_group(self, k):
        from repro.cliques.csr_kernels import iter_cliques_within_csr
        from repro.dynamic.local import iter_cliques_within

        g = erdos_renyi_gnp(26, 0.35, seed=4)
        pool = set(range(26))
        labels = {u: u % 3 for u in range(12)}  # nodes >= 12 are wildcards
        def ok(clique):
            groups = {labels[u] for u in clique if u in labels}
            return len(groups) <= 1
        expected = [c for c in iter_cliques_within(g, pool, k) if ok(c)]
        assert self.canonical(
            iter_cliques_within_csr(g, pool, k, labels=labels)
        ) == self.canonical(expected)

    def test_require_and_labels_compose(self):
        from repro.cliques.csr_kernels import iter_cliques_within_csr
        from repro.dynamic.local import iter_cliques_within

        g = erdos_renyi_gnp(24, 0.4, seed=2)
        pool = set(range(24))
        require = {1, 2, 5}
        labels = {u: u % 2 for u in range(10)}
        def ok(clique):
            groups = {labels[u] for u in clique if u in labels}
            return len(groups) <= 1 and bool(clique & require)
        expected = [c for c in iter_cliques_within(g, pool, 3) if ok(c)]
        assert self.canonical(
            iter_cliques_within_csr(g, pool, 3, require=require, labels=labels)
        ) == self.canonical(expected)

    def test_local_oriented_csr_roundtrip(self):
        from repro.cliques.csr_kernels import local_oriented_csr

        g = erdos_renyi_gnp(20, 0.3, seed=1)
        pool = [2, 3, 5, 8, 13, 19]
        ocsr, pool_arr = local_oriented_csr(g, pool)
        assert pool_arr.tolist() == pool
        for i, u in enumerate(pool):
            for j in ocsr.row(i).tolist():
                assert j < i and g.has_edge(u, pool[j])

    def test_require_below_rejects_non_identity_orientation(self):
        from repro.cliques.csr_kernels import iter_cliques_csr

        g = erdos_renyi_gnp(40, 0.3, seed=3)
        ocsr = OrientedGraph.orient(g, "degeneracy").csr()
        with pytest.raises(InvalidParameterError, match="identity-ordered"):
            next(iter_cliques_csr(ocsr, 3, require_below=10))
        # Without the restriction the degeneracy orientation is fine.
        assert sum(1 for _ in iter_cliques_csr(ocsr, 3)) == count_cliques(g, 3)
