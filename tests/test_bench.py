"""Tests for the bench harness, table rendering and memory accounting."""

import time

import numpy as np
import pytest

from repro.bench import harness, memory, tables
from repro.errors import OutOfMemoryError, OutOfTimeError


class TestRunCell:
    def test_ok_value(self):
        cell = harness.run_cell(lambda: 42)
        assert cell.ok and cell.value == 42 and cell.marker is None
        assert cell.display() == "42"

    def test_oot_from_exception(self):
        def boom():
            raise OutOfTimeError("too slow")

        cell = harness.run_cell(boom)
        assert cell.marker == "OOT" and not cell.ok

    def test_oom_from_exception(self):
        def boom():
            raise OutOfMemoryError("too big")

        assert harness.run_cell(boom).marker == "OOM"

    def test_oom_from_memoryerror(self):
        def boom():
            raise MemoryError

        assert harness.run_cell(boom).marker == "OOM"

    def test_wallclock_overrun_marked(self):
        cell = harness.run_cell(lambda: time.sleep(0.05) or 7, time_budget=0.01)
        assert cell.marker == "OOT" and cell.value is None

    def test_memory_tracing(self):
        cell = harness.run_cell(lambda: np.zeros(1_000_000), trace_memory=True)
        assert cell.peak_mb > 5

    def test_display_formatting(self):
        cell = harness.run_cell(lambda: 1234567)
        assert cell.display(tables.format_count) == "1.23M"


class TestSubprocessCell:
    def test_ok(self):
        cell = harness.run_cell_subprocess(lambda: 5, time_budget=10)
        assert cell.ok and cell.value == 5

    def test_hard_timeout(self):
        cell = harness.run_cell_subprocess(lambda: time.sleep(30), time_budget=0.3)
        assert cell.marker == "OOT"
        assert cell.seconds < 5

    def test_child_error_propagates(self):
        def boom():
            raise ValueError("child failed")

        with pytest.raises(RuntimeError, match="child failed"):
            harness.run_cell_subprocess(boom, time_budget=10)

    def test_scaled(self):
        assert harness.scaled(100) >= 1


class TestFormatting:
    def test_format_count(self):
        assert tables.format_count(950) == "950"
        assert tables.format_count(12_500) == "12.5K"
        assert tables.format_count(3_220_000_000) == "3.22B"
        assert tables.format_count(75_200_000_000_000) == "75.2T"
        assert tables.format_count("OOM") == "OOM"

    def test_format_seconds(self):
        assert tables.format_seconds(0.0123) == "12.3ms"
        assert tables.format_seconds(2.5) == "2.50s"
        assert tables.format_seconds("OOT") == "OOT"

    def test_format_micros(self):
        assert tables.format_micros(25e-6) == "25.0us"
        assert tables.format_micros(0.5) == "500.0ms"

    def test_render_table_alignment(self):
        text = tables.render_table(
            "Demo", ["A", "Blong"], [[1, 2], ["xxxxxx", 3]], note="hello"
        )
        lines = text.splitlines()
        assert lines[0] == "== Demo =="
        assert "A" in lines[1] and "Blong" in lines[1]
        assert lines[-1].strip().startswith("note: hello")
        # All body lines equally wide.
        widths = {len(l) for l in lines[1:-1]}
        assert len(widths) == 1

    def test_render_series(self):
        text = tables.render_series(
            "S", "k", [3, 4], {"LP": [0.5, "OOT"]}, fmt=tables.format_seconds
        )
        assert "500.0ms" in text and "OOT" in text


class TestMemoryAccounting:
    def test_deep_sizeof_counts_shared_once(self):
        shared = list(range(1000))
        a = [shared, shared]
        assert memory.deep_sizeof(a) < 2 * memory.deep_sizeof(shared)

    def test_numpy_arrays_counted(self):
        arr = np.zeros(100_000)
        assert memory.deep_sizeof(arr) >= arr.nbytes

    def test_graph_footprint(self, paper_graph):
        assert memory.graph_footprint_mb(paper_graph) > 0

    def test_solution_footprint(self):
        cliques = [frozenset({1, 2, 3})]
        assert memory.solution_footprint_mb(cliques) > 0

    def test_slots_objects(self):
        class Slotty:
            __slots__ = ("x",)

            def __init__(self):
                self.x = list(range(100))

        assert memory.deep_sizeof(Slotty()) > 100
