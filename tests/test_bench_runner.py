"""Tests for the manifest-based benchmark runner (``repro bench``).

Most tests run the runner against a synthetic suites directory
(``REPRO_BENCH_SUITES_DIR`` / monkeypatched ``runner.BENCH_DIR``) so
they exercise the full manifest → metrics.jsonl → summary → gate
pipeline in milliseconds, without touching the real benchmark scripts.
One subprocess test drives the real ``python -m repro bench --smoke``
CLI on the cheapest real suite.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench import runner
from repro.errors import InvalidParameterError
from repro.jsonsafe import json_safe

REPO_ROOT = Path(__file__).resolve().parent.parent

FAKE_TABLE1 = '''
CALLS_FILE = {calls_file!r}


def cells(smoke=False):
    from repro.bench.runner import CellSpec, check, quality, ratio

    def ok_cell():
        with open(CALLS_FILE, "a") as fh:
            fh.write("ok_cell\\n")
        return {{
            "solution_size": 7,
            "seconds_solve": 0.01,
            "gate": {{
                "speedup": ratio(2.0),
                "size_total": quality(7),
                "identity": check(True),
            }},
            "artefact": "| table |",
        }}

    def boom_cell():
        with open(CALLS_FILE, "a") as fh:
            fh.write("boom_cell\\n")
        raise ValueError("synthetic failure")

    def after_cell():
        with open(CALLS_FILE, "a") as fh:
            fh.write("after_cell\\n")
        return {{"gate": {{"speedup": ratio(3.0)}}}}

    specs = [CellSpec("alpha", ok_cell, {{"k": 3, "smoke": smoke}})]
    if {with_boom}:
        specs.append(CellSpec("boom", boom_cell, {{}}))
    specs.append(CellSpec("omega", after_cell, {{}}))
    return specs
'''


@pytest.fixture()
def fake_suites(tmp_path, monkeypatch):
    """Point the runner at a synthetic suites dir with one tiny suite.

    Returns a helper that (re)writes the fake ``table1`` script; tests
    run the real registry's ``table1`` spec against it.
    """
    suites_dir = tmp_path / "suites"
    suites_dir.mkdir()
    calls_file = tmp_path / "calls.txt"
    monkeypatch.setattr(runner, "BENCH_DIR", suites_dir)

    def write(with_boom=False):
        (suites_dir / "bench_table1_stats.py").write_text(
            FAKE_TABLE1.format(calls_file=str(calls_file), with_boom=with_boom)
        )
        runner._MODULE_CACHE.pop("bench_table1_stats", None)
        sys.modules.pop("repro_bench_suites.bench_table1_stats", None)
        return calls_file

    yield write
    runner._MODULE_CACHE.pop("bench_table1_stats", None)
    sys.modules.pop("repro_bench_suites.bench_table1_stats", None)


class TestRegistry:
    def test_every_suite_has_a_script(self):
        for spec in runner.SUITES:
            assert (REPO_ROOT / "benchmarks" / f"{spec.stem}.py").exists()

    def test_get_suite_unknown_raises(self):
        with pytest.raises(InvalidParameterError, match="unknown benchmark"):
            runner.get_suite("nope")

    def test_suite_names_unique(self):
        names = runner.suite_names()
        assert len(names) == len(set(names)) == len(runner.SUITES)


class TestManifest:
    def test_manifest_json_safe_round_trip(self):
        plan = [
            (runner.get_suite("table1"),
             [runner.CellSpec("c", lambda: {}, {"k": np.int64(3),
                                               "names": ("FTB", "HST")})])
        ]
        manifest = runner.build_manifest("rt", "smoke", plan)
        restored = json.loads(json.dumps(json_safe(manifest)))
        assert restored["run_id"] == "rt"
        assert restored["mode"] == "smoke"
        assert restored["schema"] == runner.SCHEMA_VERSION
        assert restored["suites"]["table1"]["cells"]["c"]["k"] == 3
        assert restored["environment"]["cpu_count"] >= 1
        assert restored["seeds"] == json_safe(restored["seeds"])
        assert set(restored["budgets"]) == {
            "time_budget_s", "clique_budget", "bench_scale",
        }

    def test_environment_info_is_json_safe(self):
        info = runner.environment_info()
        json.dumps(json_safe(info))
        assert isinstance(info["numpy"], str)

    def test_environment_records_hash_seed(self, monkeypatch):
        monkeypatch.setenv("PYTHONHASHSEED", "101")
        assert runner.environment_info()["python_hash_seed"] == "101"
        monkeypatch.delenv("PYTHONHASHSEED")
        assert runner.environment_info()["python_hash_seed"] == "unset"
        # CPython treats an empty value as unset; so does the manifest.
        monkeypatch.setenv("PYTHONHASHSEED", "")
        assert runner.environment_info()["python_hash_seed"] == "unset"

    def test_summary_surfaces_manifest_hash_seed(self):
        summary = runner.build_summary(
            "r", "smoke", [], environment={"python_hash_seed": "202"}
        )
        assert summary["python_hash_seed"] == "202"
        assert runner.build_summary("r", "smoke", [])["python_hash_seed"] == "unset"


class TestRunSuites:
    def test_run_writes_all_files(self, fake_suites, tmp_path):
        fake_suites()
        outcome = runner.run_suites(
            ["table1"], smoke=True, results_dir=tmp_path / "res", run_id="r1"
        )
        assert outcome.cells_ok == 2 and outcome.cells_error == 0
        run_dir = outcome.run_dir
        for name in ("manifest.json", "metrics.jsonl", "summary.json"):
            assert (run_dir / name).exists()
        assert (run_dir / "artefacts" / "table1--alpha.txt").read_text() \
            == "| table |\n"
        records = [json.loads(line)
                   for line in (run_dir / "metrics.jsonl").read_text().splitlines()]
        assert [r["cell"] for r in records] == ["alpha", "omega"]
        assert records[0]["artefact"] == "artefacts/table1--alpha.txt"
        assert records[0]["metrics"]["solution_size"] == 7

    def test_same_seed_runs_are_deterministic(self, fake_suites, tmp_path):
        fake_suites()

        def strip_volatile(run_dir):
            records = []
            for line in (run_dir / "metrics.jsonl").read_text().splitlines():
                record = json.loads(line)
                record.pop("seconds")
                records.append(record)
            return records

        first = runner.run_suites(["table1"], smoke=True,
                                  results_dir=tmp_path / "a", run_id="r")
        second = runner.run_suites(["table1"], smoke=True,
                                   results_dir=tmp_path / "b", run_id="r")
        assert strip_volatile(first.run_dir) == strip_volatile(second.run_dir)

    def test_partial_results_survive_a_failing_cell(self, fake_suites, tmp_path):
        calls = fake_suites(with_boom=True)
        outcome = runner.run_suites(
            ["table1"], smoke=True, results_dir=tmp_path / "res", run_id="r1"
        )
        # The failing cell is recorded, and later cells still ran.
        assert calls.read_text().splitlines() == [
            "ok_cell", "boom_cell", "after_cell",
        ]
        assert outcome.cells_ok == 2 and outcome.cells_error == 1
        assert outcome.errors == [
            "table1/boom: ValueError('synthetic failure')"
        ]
        records = [json.loads(line) for line in
                   (outcome.run_dir / "metrics.jsonl").read_text().splitlines()]
        by_cell = {r["cell"]: r for r in records}
        assert by_cell["boom"]["status"] == "error"
        assert "synthetic failure" in by_cell["boom"]["error"]
        assert by_cell["alpha"]["status"] == "ok"
        summary = json.loads((outcome.run_dir / "summary.json").read_text())
        assert summary["suites"]["table1"]["errors"] == ["boom"]

    def test_explicit_run_id_collision_raises(self, fake_suites, tmp_path):
        fake_suites()
        runner.run_suites(["table1"], smoke=True,
                          results_dir=tmp_path / "res", run_id="dup")
        with pytest.raises(InvalidParameterError, match="already exists"):
            runner.run_suites(["table1"], smoke=True,
                              results_dir=tmp_path / "res", run_id="dup")

    def test_index_tracks_runs(self, fake_suites, tmp_path):
        fake_suites()
        runner.run_suites(["table1"], smoke=True,
                          results_dir=tmp_path / "res", run_id="r1")
        runner.run_suites(["table1"], smoke=True,
                          results_dir=tmp_path / "res", run_id="r2")
        index = json.loads((tmp_path / "res" / "index.json").read_text())
        assert [e["run_id"] for e in index["runs"]] == ["r1", "r2"]
        assert all(e["suites"] == ["table1"] for e in index["runs"])


class TestLoadRun:
    def test_load_run_requires_manifest(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="manifest.json"):
            runner.load_run(tmp_path)

    def test_killed_run_summary_is_rebuilt(self, fake_suites, tmp_path):
        fake_suites()
        outcome = runner.run_suites(["table1"], smoke=True,
                                    results_dir=tmp_path / "res", run_id="r1")
        (outcome.run_dir / "summary.json").unlink()
        data = runner.load_run(outcome.run_dir)
        assert data.summary["stats"]["cells_ok"] == 2
        assert data.summary["gate"]["table1"]["speedup"]["value"] == 2.0
        # The rebuilt summary reports the manifest's recorded hash seed,
        # not whatever the rebuilding process happens to run under.
        recorded = data.manifest["environment"]["python_hash_seed"]
        assert data.summary["python_hash_seed"] == recorded


class TestGate:
    def _run(self, fake_suites, tmp_path, run_id):
        fake_suites()
        outcome = runner.run_suites(["table1"], smoke=True,
                                    results_dir=tmp_path / "res", run_id=run_id)
        return runner.load_run(outcome.run_dir)

    @staticmethod
    def _doctor(run, **gate_values):
        """Rewrite summary gate metric values on a loaded baseline."""
        for metric, value in gate_values.items():
            run.summary["gate"]["table1"][metric]["value"] = value

    def test_same_mode_gate_passes_against_itself(self, fake_suites, tmp_path):
        run = self._run(fake_suites, tmp_path, "base")
        assert runner.gate_run(run, run) == []

    def test_same_mode_ratio_regression_fails(self, fake_suites, tmp_path):
        fresh = self._run(fake_suites, tmp_path, "fresh")
        baseline = self._run(fake_suites, tmp_path, "base")
        self._doctor(baseline, speedup=100.0)
        failures = runner.gate_run(fresh, baseline)
        assert len(failures) == 1
        assert "metric 'speedup'" in failures[0]
        assert "regression floor" in failures[0]
        assert "max speedup loss 50%" in failures[0]

    def test_same_mode_quality_drift_fails_both_directions(
        self, fake_suites, tmp_path
    ):
        fresh = self._run(fake_suites, tmp_path, "fresh")
        for doctored in (3.0, 11.0):  # fresh size_total is 7
            baseline = self._run(
                fake_suites, tmp_path, f"base{doctored:.0f}"
            )
            self._doctor(baseline, size_total=doctored)
            failures = runner.gate_run(fresh, baseline)
            assert len(failures) == 1 and "quality drifted" in failures[0]

    def test_gate_within_thresholds_passes(self, fake_suites, tmp_path):
        fresh = self._run(fake_suites, tmp_path, "fresh")
        baseline = self._run(fake_suites, tmp_path, "base")
        # 2.0 vs baseline 3.0 is a 33% loss: inside the 50% allowance.
        self._doctor(baseline, speedup=3.0)
        assert runner.gate_run(fresh, baseline) == []

    def test_failed_check_fails_the_gate(self, fake_suites, tmp_path):
        fresh = self._run(fake_suites, tmp_path, "fresh")
        baseline = self._run(fake_suites, tmp_path, "base")
        fresh.summary["gate"]["table1"]["identity"]["value"] = False
        failures = runner.gate_run(fresh, baseline)
        assert len(failures) == 1 and "check failed" in failures[0]

    def test_missing_suite_fails_the_gate(self, fake_suites, tmp_path):
        fresh = self._run(fake_suites, tmp_path, "fresh")
        baseline = self._run(fake_suites, tmp_path, "base")
        baseline.summary["gate"]["extra_suite"] = {
            "speedup": {"kind": "ratio", "value": 1.0, "cell": "c"},
        }
        baseline.summary["suites"]["extra_suite"] = {
            "cells_ok": 1, "cells_error": 0, "seconds": 0.0, "errors": [],
        }
        failures = runner.gate_run(fresh, baseline)
        assert failures == [
            "suite 'extra_suite': present in baseline but missing from "
            "the fresh run"
        ]

    def test_errored_cells_fail_the_gate(self, fake_suites, tmp_path):
        baseline = self._run(fake_suites, tmp_path, "base")
        fake_suites(with_boom=True)
        outcome = runner.run_suites(["table1"], smoke=True,
                                    results_dir=tmp_path / "res",
                                    run_id="fresh-broken")
        fresh = runner.load_run(outcome.run_dir)
        failures = runner.gate_run(fresh, baseline)
        assert any("errored" in f and "boom" in f for f in failures)

    def test_cross_mode_skips_ratio_comparison(self, fake_suites, tmp_path):
        fresh = self._run(fake_suites, tmp_path, "fresh")
        baseline = self._run(fake_suites, tmp_path, "base")
        baseline.manifest["mode"] = "full"
        baseline.summary["mode"] = "full"
        # A huge baseline ratio would fail same-mode, but cross-mode
        # only enforces the absolute min_ratio floor.
        self._doctor(baseline, speedup=1000.0)
        assert runner.gate_run(fresh, baseline) == []
        thresholds = runner.GateThresholds(min_ratio=5.0)
        failures = runner.gate_run(fresh, baseline, thresholds)
        assert len(failures) == 1 and "absolute floor" in failures[0]

    def test_custom_thresholds_tighten_the_gate(self, fake_suites, tmp_path):
        fresh = self._run(fake_suites, tmp_path, "fresh")
        baseline = self._run(fake_suites, tmp_path, "base")
        self._doctor(baseline, speedup=2.2)  # 9% loss
        assert runner.gate_run(fresh, baseline) == []
        tight = runner.GateThresholds(max_speedup_loss=0.05)
        assert len(runner.gate_run(fresh, baseline, tight)) == 1


class TestMigratedBaseline:
    """The checked-in legacy baseline must stay loadable and gateable."""

    BASELINE = REPO_ROOT / "results" / "baseline-legacy"

    def test_baseline_loads(self):
        data = runner.load_run(self.BASELINE)
        assert data.manifest["mode"] == "full"
        assert sorted(data.summary["gate"]) == [
            "anytime", "backend", "dynamic", "parallel", "serve",
        ]
        assert data.summary["stats"]["cells_error"] == 0

    def test_baseline_gate_metric_names_match_cells(self):
        """Synthesized gate metrics must match what cells() emit today."""
        expected = {
            "backend": {"count_speedup_cold", "backends_agree"},
            "dynamic": {"modes_converge", "mixed_speedup"},
            "parallel": {"heapinit_speedup", "exact_bb_speedup",
                         "pool_throughput", "solutions_pinned"},
            "serve": {"warm_vs_cold", "served_matches_direct",
                      "worker_scaling"},
            "anytime": {"monotone_and_pinned", "final_size_lp",
                        "preempt_vs_shed"},
        }
        data = runner.load_run(self.BASELINE)
        for suite, metrics in expected.items():
            assert set(data.summary["gate"][suite]) == metrics

    def test_root_shims_resolve_into_the_baseline(self):
        for name in ("anytime", "backend", "dynamic", "parallel", "serve"):
            shim = REPO_ROOT / f"BENCH_{name}.json"
            assert shim.exists(), shim
            payload = json.loads(shim.read_text())
            assert payload["bench"]


class TestCli:
    def test_bench_list(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in runner.suite_names():
            assert name in out

    def test_bench_unknown_suite(self, capsys):
        from repro.cli import main

        with pytest.raises(InvalidParameterError):
            main(["bench", "nope"])

    @pytest.mark.slow
    def test_bench_smoke_subprocess(self, tmp_path):
        """End-to-end: the real CLI on the cheapest real suite."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--smoke",
             "--run-id", "cli-smoke", "--results-dir", str(tmp_path),
             "table1"],
            capture_output=True, text=True, timeout=300,
            cwd=REPO_ROOT, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "cells ok" in proc.stdout
        run_dir = tmp_path / "cli-smoke"
        summary = json.loads((run_dir / "summary.json").read_text())
        assert summary["stats"]["cells_error"] == 0
        assert summary["gate"]["table1"]["registry_stable"]["value"] is True
