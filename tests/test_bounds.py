"""Tests for certified optimum upper bounds and comparison tooling."""

import pytest

from repro import Graph, find_disjoint_cliques
from repro.analysis import (
    approximation_certificate,
    compare_methods,
    optimum_upper_bounds,
)
from repro.core.exact import exact_optimum
from repro.graph.generators import (
    complete_graph,
    planted_clique_packing,
    ring_of_cliques,
)


class TestSoundness:
    @pytest.mark.parametrize("k", [3, 4])
    def test_bounds_dominate_opt(self, random_graphs, k):
        for g in random_graphs:
            if g.n > 18:
                continue
            opt = exact_optimum(g, k).size
            bounds = optimum_upper_bounds(g, k)
            assert bounds.node_bound >= opt
            assert bounds.count_bound >= opt
            assert bounds.component_bound >= opt
            assert bounds.best >= opt

    def test_planted_instance_tight(self):
        g, planted = planted_clique_packing(5, 3, seed=1)
        bounds = optimum_upper_bounds(g, 3)
        assert bounds.best == 5  # exactly the planted optimum

    def test_component_bound_beats_node_bound(self):
        # Two K3s plus one K2-with-pendant component: component bound
        # rounds down per component.
        g = Graph(
            8,
            [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (6, 7)],
        )
        bounds = optimum_upper_bounds(g, 3)
        assert bounds.node_bound == 2
        assert bounds.component_bound == 2

    def test_clique_free_graph(self):
        path = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        bounds = optimum_upper_bounds(path, 3)
        assert bounds.best == 0

    def test_complete_graph_bounds(self):
        g = complete_graph(10)
        bounds = optimum_upper_bounds(g, 3)
        assert bounds.best == 3  # 10 // 3

    def test_ring_of_cliques_certificate(self):
        g = ring_of_cliques(6, 3)
        lp = find_disjoint_cliques(g, 3, method="lp")
        cert = approximation_certificate(g, 3, lp.size)
        assert 1.0 <= cert <= 3.0  # far below the worst-case k


class TestCertificate:
    def test_empty_solution_on_cliquey_graph(self, triangle_pair):
        assert approximation_certificate(triangle_pair, 3, 0) == float("inf")

    def test_empty_solution_on_clique_free_graph(self):
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert approximation_certificate(path, 3, 0) == 0.0

    def test_certificate_at_least_one_for_valid_sizes(self, random_graphs):
        for g in random_graphs:
            lp = find_disjoint_cliques(g, 3, method="lp")
            if lp.size:
                assert approximation_certificate(g, 3, lp.size) >= 1.0


class TestCompareMethods:
    def test_rows_cover_methods(self, paper_graph):
        rows = compare_methods(paper_graph, 3, methods=("hg", "gc", "lp"))
        assert [r.method for r in rows] == ["hg", "gc", "lp"]
        for row in rows:
            assert row.size >= 2
            assert row.seconds >= 0
            assert 0 <= row.coverage <= 1
            assert row.certificate >= 1.0

    def test_gc_and_lp_rows_agree(self, paper_graph):
        rows = {r.method: r for r in compare_methods(paper_graph, 3, ("gc", "lp"))}
        assert rows["gc"].size == rows["lp"].size

    def test_zero_clique_instance(self):
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        rows = compare_methods(path, 3, methods=("lp",))
        assert rows[0].size == 0 and rows[0].certificate == 0.0
