"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSolve:
    def test_solve_dataset(self, capsys):
        assert main(["solve", "--dataset", "FTB", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "|S|=" in out and "coverage=" in out

    def test_solve_show(self, capsys):
        main(["solve", "--dataset", "FTB", "--k", "3", "--show", "2"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_solve_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "cliques.txt"
        main(["solve", "--dataset", "FTB", "--k", "3", "--output", str(out_file)])
        lines = out_file.read_text().strip().splitlines()
        assert lines and all(len(line.split()) == 3 for line in lines)

    def test_solve_edge_list_input(self, tmp_path, capsys):
        edges = tmp_path / "g.edges"
        edges.write_text("0 1\n0 2\n1 2\n3 4\n3 5\n4 5\n")
        main(["solve", "--input", str(edges), "--k", "3"])
        assert "|S|=2" in capsys.readouterr().out

    def test_missing_graph_source(self):
        with pytest.raises(SystemExit):
            main(["solve", "--k", "3"])


class TestSolveAnytime:
    def test_json_output(self, capsys):
        import json

        assert main(["solve", "--dataset", "FTB", "--k", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interrupted"] is False
        assert payload["size"] > 0 and payload["method"] == "lp"

    def test_anytime_runs_to_completion(self, capsys):
        import json

        assert main([
            "solve", "--dataset", "FTB", "--k", "3",
            "--anytime", "--progress-every", "10",
        ]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["interrupted"] is False
        assert payload["bound"] >= payload["size"] > 0
        assert payload["work"] > 0
        assert "anytime: |S|=" in captured.err

    def test_anytime_interrupt_returns_best_so_far(self, capsys):
        """SIGINT semantics via the driver: stop mid-run, keep the work."""
        import json

        from repro.cli import run_anytime
        from repro.core.session import Session
        from repro.graph import datasets
        from repro.core.result import verify_solution

        graph = datasets.load("FTB")
        task = Session(graph).task(3, "lp")
        calls = []
        interrupted, work = run_anytime(
            task,
            progress_every=5,
            should_stop=lambda: len(calls) >= 3,
            log=lambda *args: calls.append(args),
        )
        # stopped by the flag, not by completion, with usable work done
        assert interrupted is True
        assert not task.done
        assert work > 0
        verify_solution(graph, 3, task.best().cliques)

    def test_anytime_rejects_non_resumable_method(self):
        with pytest.raises(SystemExit, match="not resumable"):
            main(["solve", "--dataset", "FTB", "--k", "3",
                  "--method", "gc", "--anytime"])


class TestOtherCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "FTB", "--ks", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "3-cliques: 424" in out and "degeneracy=" in out

    def test_compare(self, capsys):
        assert main(["compare", "--dataset", "FTB", "--k", "3",
                     "--methods", "hg", "lp"]) == 0
        out = capsys.readouterr().out
        assert "hg" in out and "lp" in out and "certificate" in out

    def test_dynamic(self, capsys):
        assert main([
            "dynamic", "--dataset", "FTB", "--k", "3",
            "--workload", "deletion", "--count", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean-update=" in out and "drift" in out

    def test_dynamic_insertion(self, capsys):
        assert main([
            "dynamic", "--dataset", "FTB", "--k", "3",
            "--workload", "insertion", "--count", "10",
        ]) == 0
        assert "workload=insertion" in capsys.readouterr().out

    def test_dynamic_batched(self, capsys):
        assert main([
            "dynamic", "--dataset", "FTB", "--k", "3",
            "--workload", "mixed", "--count", "15",
            "--batch-size", "8", "--backend", "csr",
        ]) == 0
        out = capsys.readouterr().out
        assert "mode=batched(8,csr)" in out and "updates/s" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "FTB" in out and "OR" in out

    def test_experiments_passthrough(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
