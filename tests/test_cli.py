"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSolve:
    def test_solve_dataset(self, capsys):
        assert main(["solve", "--dataset", "FTB", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "|S|=" in out and "coverage=" in out

    def test_solve_show(self, capsys):
        main(["solve", "--dataset", "FTB", "--k", "3", "--show", "2"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_solve_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "cliques.txt"
        main(["solve", "--dataset", "FTB", "--k", "3", "--output", str(out_file)])
        lines = out_file.read_text().strip().splitlines()
        assert lines and all(len(line.split()) == 3 for line in lines)

    def test_solve_edge_list_input(self, tmp_path, capsys):
        edges = tmp_path / "g.edges"
        edges.write_text("0 1\n0 2\n1 2\n3 4\n3 5\n4 5\n")
        main(["solve", "--input", str(edges), "--k", "3"])
        assert "|S|=2" in capsys.readouterr().out

    def test_missing_graph_source(self):
        with pytest.raises(SystemExit):
            main(["solve", "--k", "3"])


class TestOtherCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "FTB", "--ks", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "3-cliques: 424" in out and "degeneracy=" in out

    def test_compare(self, capsys):
        assert main(["compare", "--dataset", "FTB", "--k", "3",
                     "--methods", "hg", "lp"]) == 0
        out = capsys.readouterr().out
        assert "hg" in out and "lp" in out and "certificate" in out

    def test_dynamic(self, capsys):
        assert main([
            "dynamic", "--dataset", "FTB", "--k", "3",
            "--workload", "deletion", "--count", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean-update=" in out and "drift" in out

    def test_dynamic_insertion(self, capsys):
        assert main([
            "dynamic", "--dataset", "FTB", "--k", "3",
            "--workload", "insertion", "--count", "10",
        ]) == 0
        assert "workload=insertion" in capsys.readouterr().out

    def test_dynamic_batched(self, capsys):
        assert main([
            "dynamic", "--dataset", "FTB", "--k", "3",
            "--workload", "mixed", "--count", "15",
            "--batch-size", "8", "--backend", "csr",
        ]) == 0
        out = capsys.readouterr().out
        assert "mode=batched(8,csr)" in out and "updates/s" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "FTB" in out and "OR" in out

    def test_experiments_passthrough(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
