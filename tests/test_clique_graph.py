"""Tests for the clique graph (Definition 2) and Theorem 2 bounds."""

import pytest

from repro.cliques import build_clique_graph, node_scores
from repro.core.scores import clique_key, clique_score, degree_bounds
from tests.conftest import PAPER_TRIANGLES


class TestPaperFig3:
    def test_clique_graph_structure(self, paper_graph):
        cg = build_clique_graph(paper_graph, 3)
        assert cg.num_cliques == 7
        index = {frozenset(c): i for i, c in enumerate(cg.cliques)}
        c1 = index[PAPER_TRIANGLES[0]]  # (v1, v3, v6)
        c2 = index[PAPER_TRIANGLES[1]]  # (v3, v5, v6)
        # Fig. 3 / Example 3: C1 is adjacent to exactly C2 and C3.
        assert cg.graph.has_edge(c1, c2)
        assert cg.degree_of(c1) == 2

    def test_edges_iff_overlap(self, paper_graph):
        cg = build_clique_graph(paper_graph, 3)
        for i, a in enumerate(cg.cliques):
            for j in range(i + 1, cg.num_cliques):
                b = cg.cliques[j]
                overlap = bool(set(a) & set(b))
                assert cg.graph.has_edge(i, j) == overlap

    def test_memory_cap(self, paper_graph):
        with pytest.raises(MemoryError):
            build_clique_graph(paper_graph, 3, max_cliques=3)


class TestTheorem2:
    @pytest.mark.parametrize("k", [3, 4])
    def test_bounds_hold_on_random_graphs(self, random_graphs, k):
        for g in random_graphs:
            cg = build_clique_graph(g, k)
            if not cg.num_cliques:
                continue
            scores = node_scores(g, k)
            for i, clique in enumerate(cg.cliques):
                lo, hi = degree_bounds(clique, scores, k)
                deg = cg.degree_of(i)
                assert lo <= deg <= hi, (clique, lo, deg, hi)

    def test_bounds_paper_example(self, paper_graph):
        scores = node_scores(paper_graph, 3)
        # C3 = (v5, v6, v8): score 9 -> bounds (9-3)/2=3 and 9-3=6; the
        # true degree in Fig. 3 is at least 3 (C2, C4, C5 overlap it).
        lo, hi = degree_bounds([4, 5, 7], scores, 3)
        assert lo == 3.0 and hi == 6

    def test_isolated_clique_bounds(self, triangle_pair):
        scores = node_scores(triangle_pair, 3)
        lo, hi = degree_bounds([0, 1, 2], scores, 3)
        assert lo == 0.0 and hi == 0


class TestCliqueKey:
    def test_key_orders_by_score_then_nodes(self):
        scores = [1, 2, 3, 4]
        low = clique_key([0, 1, 2], scores)
        high = clique_key([1, 2, 3], scores)
        assert low < high
        assert clique_key([0, 1, 2], scores) == (6, (0, 1, 2))

    def test_score_sum(self, paper_graph):
        scores = node_scores(paper_graph, 3)
        for clique in PAPER_TRIANGLES:
            assert clique_score(clique, scores) == sum(scores[u] for u in clique)
