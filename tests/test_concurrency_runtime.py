"""Tracked-lock runtime behaviour (``repro.concurrency``).

Tracking is decided at lock *creation*, so every test enables the env
var via monkeypatch before calling the factories, and wraps recording
in ``isolated_observations()`` so synthetic labels never leak into the
process-global set the tier-1 watchdog compares against the static
graph.
"""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import (
    TRACK_ENV,
    TrackedLock,
    TrackedRLock,
    isolated_observations,
    make_lock,
    make_rlock,
    observed_edges,
    reset_observed,
    tracking_enabled,
)


@pytest.fixture
def tracking(monkeypatch):
    monkeypatch.setenv(TRACK_ENV, "1")
    with isolated_observations() as edges:
        yield edges


class TestFactories:
    def test_disabled_by_default_returns_plain_primitives(self, monkeypatch):
        monkeypatch.delenv(TRACK_ENV, raising=False)
        assert not tracking_enabled()
        assert not isinstance(make_lock("X"), TrackedLock)
        assert not isinstance(make_rlock("X"), TrackedLock)

    def test_zero_value_disables(self, monkeypatch):
        monkeypatch.setenv(TRACK_ENV, "0")
        assert not tracking_enabled()

    def test_enabled_returns_tracked_wrappers(self, tracking):
        lock = make_lock("A")
        rlock = make_rlock("B")
        assert isinstance(lock, TrackedLock)
        assert isinstance(rlock, TrackedRLock)
        assert lock.label == "A" and rlock.label == "B"
        assert "A" in repr(lock)


class TestEdgeRecording:
    def test_nested_acquisition_records_edge(self, tracking):
        a, b = make_lock("A"), make_lock("B")
        with a:
            with b:
                pass
        assert ("A", "B") in observed_edges()
        assert ("B", "A") not in observed_edges()

    def test_disjoint_acquisitions_record_nothing(self, tracking):
        a, b = make_lock("A"), make_lock("B")
        with a:
            pass
        with b:
            pass
        assert observed_edges() == frozenset()

    def test_rlock_reentry_is_not_a_self_edge(self, tracking):
        r = make_rlock("R")
        with r:
            with r:
                pass
        assert observed_edges() == frozenset()

    def test_same_label_two_instances_skips_self_edge(self, tracking):
        a1, a2 = make_lock("A"), make_lock("A")
        with a1:
            with a2:
                pass
        assert observed_edges() == frozenset()

    def test_release_unwinds_held_stack(self, tracking):
        a, b, c = make_lock("A"), make_lock("B"), make_lock("C")
        with a:
            with b:
                pass
            # B released: only A is held now.
            with c:
                pass
        assert ("A", "C") in observed_edges()
        assert ("B", "C") not in observed_edges()

    def test_locked_reports_state(self, tracking):
        lock = make_lock("A")
        rlock = make_rlock("B")
        assert not lock.locked() and not rlock.locked()
        with lock, rlock:
            assert lock.locked() and rlock.locked()

    def test_reset_observed_clears(self, tracking):
        a, b = make_lock("A"), make_lock("B")
        with a:
            with b:
                pass
        assert observed_edges()
        reset_observed()
        assert observed_edges() == frozenset()

    def test_isolation_restores_outer_set(self, tracking):
        outer_before = observed_edges()
        with isolated_observations():
            x, y = make_lock("X"), make_lock("Y")
            with x:
                with y:
                    pass
            assert ("X", "Y") in observed_edges()
        assert observed_edges() == outer_before


class TestConditionCompatibility:
    def test_condition_over_tracked_rlock_waits_and_notifies(self, tracking):
        cond = threading.Condition(make_rlock("Cond"))
        ready = []

        def consumer():
            with cond:
                while not ready:
                    cond.wait(timeout=5)
                ready.append("seen")

        thread = threading.Thread(target=consumer)
        thread.start()
        with cond:
            ready.append("value")
            cond.notify_all()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert ready == ["value", "seen"]

    def test_wait_keeps_label_on_held_stack(self, tracking):
        # A lock acquired by the woken waiter right after wait() must
        # still see Cond as held: wait() releases the *inner* lock but
        # the label stays on the hierarchy.
        cond = threading.Condition(make_rlock("Cond"))
        inner = make_lock("Inner")
        edges = []

        def consumer():
            with cond:
                cond.wait(timeout=5)
                with inner:
                    pass
                edges.append(observed_edges())

        thread = threading.Thread(target=consumer)
        thread.start()
        with cond:
            cond.notify_all()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert ("Cond", "Inner") in edges[-1]


class TestRealWorkloadSubsetsStaticGraph:
    def test_session_solve_edges_are_in_static_graph(self, tracking, paper_graph):
        from tools.repro_lint.concurrency.lockorder import static_edge_set

        from repro.core.session import Session

        session = Session(paper_graph)
        session.solve(3, "l")
        session.fingerprint()
        observed = observed_edges()
        assert observed, "expected the solve to exercise nested locks"
        missing = observed - static_edge_set()
        assert not missing, sorted(missing)
