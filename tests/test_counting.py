"""Tests for node scores (per-node k-clique counts)."""

import numpy as np
import pytest

from repro import Graph
from repro.cliques import node_scores, total_cliques_from_scores, clique_profile
from repro.cliques.listing import count_cliques, iter_cliques
from repro.errors import InvalidParameterError
from repro.graph.generators import complete_graph


def brute_scores(graph, k):
    scores = np.zeros(graph.n, dtype=np.int64)
    for clique in iter_cliques(graph, k):
        for u in clique:
            scores[u] += 1
    return scores


class TestPaperExample3:
    def test_node_scores(self, paper_graph):
        scores = node_scores(paper_graph, 3)
        # Example 3: s_n(v6) = s_n(v5) = s_n(v8) = 3.
        assert scores[5] == 3 and scores[4] == 3 and scores[7] == 3

    def test_clique_score_c3(self, paper_graph):
        from repro.core.scores import clique_score

        scores = node_scores(paper_graph, 3)
        # C3 = (v5, v6, v8): s_c = 3 + 3 + 3 = 9.
        assert clique_score([4, 5, 7], scores) == 9


class TestConsistency:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_matches_brute_force(self, random_graphs, k):
        for g in random_graphs:
            assert node_scores(g, k).tolist() == brute_scores(g, k).tolist()

    @pytest.mark.parametrize("k", [3, 4])
    def test_score_sum_is_k_times_count(self, random_graphs, k):
        for g in random_graphs:
            scores = node_scores(g, k)
            assert total_cliques_from_scores(scores, k) == count_cliques(g, k)

    def test_orderings_agree(self, random_graphs):
        for g in random_graphs:
            a = node_scores(g, 3, "id")
            b = node_scores(g, 3, "degeneracy")
            assert a.tolist() == b.tolist()

    def test_k2_is_degree(self, paper_graph):
        assert node_scores(paper_graph, 2).tolist() == paper_graph.degrees.tolist()

    def test_k1_is_ones(self, paper_graph):
        assert node_scores(paper_graph, 1).tolist() == [1] * 9

    def test_complete_graph(self):
        from math import comb

        g = complete_graph(7)
        scores = node_scores(g, 4)
        assert all(s == comb(6, 3) for s in scores)


class TestErrors:
    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            node_scores(paper_graph, 0)

    def test_inconsistent_scores_rejected(self):
        with pytest.raises(InvalidParameterError):
            total_cliques_from_scores(np.array([1, 1]), 3)

    def test_profile(self, paper_graph):
        profile = clique_profile(paper_graph, ks=(3, 4))
        assert profile == {3: 7, 4: 0}
