"""Tests for the CSR adjacency view."""

import numpy as np
import pytest

from repro import Graph
from repro.cliques import node_scores
from repro.graph.csr import CSRAdjacency
from repro.graph.generators import complete_graph, erdos_renyi_gnp


class TestStructure:
    def test_rows_sorted_and_complete(self, paper_graph):
        csr = CSRAdjacency.from_graph(paper_graph)
        for u in paper_graph.nodes():
            row = csr.row(u)
            assert list(row) == sorted(paper_graph.neighbors(u))
            assert csr.degree(u) == paper_graph.degree(u)

    def test_degrees_array(self, paper_graph):
        csr = paper_graph.csr()
        assert csr.degrees().tolist() == paper_graph.degrees.tolist()

    def test_counts(self, paper_graph):
        csr = paper_graph.csr()
        assert csr.n == 9 and csr.m == 15

    def test_has_edge(self, paper_graph):
        csr = paper_graph.csr()
        for u, v in paper_graph.edges():
            assert csr.has_edge(u, v) and csr.has_edge(v, u)
        assert not csr.has_edge(0, 1)

    def test_empty_graph(self):
        csr = CSRAdjacency.from_graph(Graph(0))
        assert csr.n == 0 and csr.m == 0

    def test_isolated_nodes(self):
        csr = CSRAdjacency.from_graph(Graph(4, [(1, 2)]))
        assert csr.degree(0) == 0 and len(csr.row(0)) == 0


class TestTriangleCounting:
    def test_paper_example(self, paper_graph):
        counts = paper_graph.csr().triangle_count_per_node()
        expected = node_scores(paper_graph, 3)
        assert counts.tolist() == expected.tolist()

    def test_complete_graph(self):
        csr = complete_graph(6).csr()
        counts = csr.triangle_count_per_node()
        assert counts.tolist() == [10] * 6  # C(5, 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_matches_node_scores(self, seed):
        g = erdos_renyi_gnp(40, 0.25, seed=seed)
        counts = g.csr().triangle_count_per_node()
        assert counts.tolist() == node_scores(g, 3).tolist()

    def test_triangle_free(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        assert g.csr().triangle_count_per_node().sum() == 0
