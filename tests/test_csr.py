"""Tests for the CSR adjacency view and its sorted-array helpers."""

import numpy as np
import pytest

from repro import Graph
from repro.cliques import node_scores
from repro.graph.csr import CSRAdjacency, concat_rows, in_sorted, intersect_sorted
from repro.graph.generators import complete_graph, erdos_renyi_gnp


class TestStructure:
    def test_rows_sorted_and_complete(self, paper_graph):
        csr = CSRAdjacency.from_graph(paper_graph)
        for u in paper_graph.nodes():
            row = csr.row(u)
            assert list(row) == sorted(paper_graph.neighbors(u))
            assert csr.degree(u) == paper_graph.degree(u)

    def test_degrees_array(self, paper_graph):
        csr = paper_graph.csr()
        assert csr.degrees().tolist() == paper_graph.degrees.tolist()

    def test_counts(self, paper_graph):
        csr = paper_graph.csr()
        assert csr.n == 9 and csr.m == 15

    def test_has_edge(self, paper_graph):
        csr = paper_graph.csr()
        for u, v in paper_graph.edges():
            assert csr.has_edge(u, v) and csr.has_edge(v, u)
        assert not csr.has_edge(0, 1)

    def test_empty_graph(self):
        csr = CSRAdjacency.from_graph(Graph(0))
        assert csr.n == 0 and csr.m == 0

    def test_isolated_nodes(self):
        csr = CSRAdjacency.from_graph(Graph(4, [(1, 2)]))
        assert csr.degree(0) == 0 and len(csr.row(0)) == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_bulk_construction_matches_sorted_neighbors(self, seed):
        g = erdos_renyi_gnp(120, 0.1, seed=seed)
        csr = CSRAdjacency.from_graph(g)
        for u in g.nodes():
            assert csr.row(u).tolist() == sorted(g.neighbors(u))


class TestSortedArrayHelpers:
    def test_concat_rows(self, paper_graph):
        csr = paper_graph.csr()
        nodes = np.array([2, 0, 5], dtype=np.int64)
        owner_pos, vals = concat_rows(csr.indptr, csr.cols, nodes)
        expected_vals = [v for u in nodes for v in sorted(paper_graph.neighbors(u))]
        expected_pos = [i for i, u in enumerate(nodes) for _ in paper_graph.neighbors(u)]
        assert vals.tolist() == expected_vals
        assert owner_pos.tolist() == expected_pos

    def test_concat_rows_empty(self, paper_graph):
        csr = paper_graph.csr()
        owner_pos, vals = concat_rows(
            csr.indptr, csr.cols, np.empty(0, dtype=np.int64)
        )
        assert len(owner_pos) == 0 and len(vals) == 0

    def test_in_sorted(self):
        hay = np.array([1, 4, 7, 9], dtype=np.int64)
        values = np.array([0, 1, 5, 7, 9, 12], dtype=np.int64)
        assert in_sorted(hay, values).tolist() == [
            False, True, False, True, True, False,
        ]
        assert in_sorted(np.empty(0, dtype=np.int64), values).tolist() == [False] * 6

    @pytest.mark.parametrize("seed", range(5))
    def test_intersect_sorted_matches_set_intersection(self, seed):
        rng = np.random.default_rng(seed)
        a = np.unique(rng.integers(0, 60, size=rng.integers(0, 30)))
        b = np.unique(rng.integers(0, 60, size=rng.integers(0, 30)))
        expected = sorted(set(a.tolist()) & set(b.tolist()))
        assert intersect_sorted(a, b).tolist() == expected
        assert intersect_sorted(b, a).tolist() == expected


class TestTriangleCounting:
    def test_paper_example(self, paper_graph):
        counts = paper_graph.csr().triangle_count_per_node()
        expected = node_scores(paper_graph, 3)
        assert counts.tolist() == expected.tolist()

    def test_complete_graph(self):
        csr = complete_graph(6).csr()
        counts = csr.triangle_count_per_node()
        assert counts.tolist() == [10] * 6  # C(5, 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_matches_node_scores(self, seed):
        g = erdos_renyi_gnp(40, 0.25, seed=seed)
        counts = g.csr().triangle_count_per_node()
        assert counts.tolist() == node_scores(g, 3).tolist()

    def test_triangle_free(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        assert g.csr().triangle_count_per_node().sum() == 0
