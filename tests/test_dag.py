"""Tests for DAG orientation."""

import numpy as np

from repro import Graph
from repro.graph.dag import OrientedGraph


class TestOrientation:
    def test_out_neighbours_have_smaller_rank(self, random_graphs):
        for g in random_graphs:
            dag = OrientedGraph.orient(g, "degeneracy")
            for u in g.nodes():
                for v in dag.out[u]:
                    assert dag.rank[v] < dag.rank[u]

    def test_every_edge_oriented_once(self, paper_graph):
        dag = OrientedGraph.orient(paper_graph, "id")
        total = sum(len(s) for s in dag.out)
        assert total == paper_graph.m

    def test_id_order_matches_paper_example(self, paper_graph):
        # Fig. 4(a): under the id ordering, out-neighbours of v6 (node 5)
        # are v1, v3, v5 (nodes 0, 2, 4).
        dag = OrientedGraph.orient(paper_graph, "id")
        assert dag.out[5] == {0, 2, 4}
        # Only v6, v7, v8, v9 have >= 2 out-neighbours (paper Example 2).
        eligible = {u for u in paper_graph.nodes() if dag.out_degree(u) >= 2}
        assert eligible == {5, 6, 7, 8}

    def test_nodes_ascending(self, paper_graph):
        dag = OrientedGraph.orient(paper_graph, "id")
        assert dag.nodes_ascending() == list(range(9))
        rank = np.array([3, 1, 2, 0, 4, 5, 6, 7, 8])
        dag2 = OrientedGraph(paper_graph, rank)
        assert dag2.nodes_ascending()[:4] == [3, 1, 2, 0]

    def test_root_of(self, paper_graph):
        dag = OrientedGraph.orient(paper_graph, "id")
        assert dag.root_of([0, 2, 5]) == 5

    def test_max_out_degree_empty(self):
        dag = OrientedGraph.orient(Graph(0), "id")
        assert dag.max_out_degree() == 0
        assert dag.n == 0
