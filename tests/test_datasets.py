"""Tests for the dataset registry."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph import datasets


class TestRegistry:
    def test_table1_names_registered(self):
        for name in datasets.TABLE1_NAMES:
            assert name in datasets.names()

    def test_small_exact_names_registered(self):
        for name in datasets.SMALL_EXACT_NAMES:
            assert name in datasets.names()

    def test_specs_have_provenance(self):
        for spec in datasets.specs():
            assert spec.description
            assert spec.tier in {"tiny", "small", "medium", "large"}

    def test_tier_filter(self):
        tiny = datasets.specs(tier="tiny")
        assert tiny and all(s.tier == "tiny" for s in tiny)

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            datasets.spec("NOPE")
        with pytest.raises(InvalidParameterError):
            datasets.load("NOPE")

    def test_load_is_cached(self):
        a = datasets.load("FTB")
        b = datasets.load("FTB")
        assert a is b

    def test_deterministic_rebuild(self):
        spec = datasets.spec("FTB")
        assert spec.build() == spec.build()

    def test_ftb_matches_paper_scale(self):
        g = datasets.load("FTB")
        assert g.n == 115  # the paper's Football node count

    def test_register_custom(self):
        from repro.graph.datasets import DatasetSpec
        from repro.graph.graph import Graph

        datasets.register_dataset(
            DatasetSpec(
                name="_TESTONLY",
                description="unit-test entry",
                builder=lambda: Graph(3, [(0, 1)]),
                tier="tiny",
            )
        )
        try:
            assert datasets.load("_TESTONLY").m == 1
        finally:
            datasets._REGISTRY.pop("_TESTONLY", None)
            datasets._CACHE.pop("_TESTONLY", None)


class TestNetworkxClassics:
    def test_karate(self):
        pytest.importorskip("networkx")
        g = datasets.networkx_classic("karate")
        assert g.n == 34 and g.m == 78

    def test_les_miserables(self):
        pytest.importorskip("networkx")
        g = datasets.networkx_classic("les_miserables")
        assert g.n == 77

    def test_florentine(self):
        pytest.importorskip("networkx")
        g = datasets.networkx_classic("florentine")
        assert g.n == 15 and g.m == 20

    def test_unknown_classic(self):
        pytest.importorskip("networkx")
        with pytest.raises(InvalidParameterError):
            datasets.networkx_classic("facebook")
