"""Regression tests for defects surfaced by the repro-lint sweep.

Each class pins one fixed defect so it cannot silently return:

* numpy values (an ndarray ``order``, numpy stats scalars) reaching
  ``SolveTask.checkpoint`` made the checkpoint non-JSON-serialisable;
* the lazily built CSR/fingerprint memos were written without a lock,
  so concurrent first calls could build twice and hand different
  objects to different threads;
* ``Server`` flipped ``_shutting_down`` outside its lock.
"""

import json
import threading

import numpy as np
import pytest

from repro import Session
from repro.errors import InvalidParameterError
from repro.graph.generators import powerlaw_cluster, watts_strogatz
from repro.graph.dag import OrientedGraph
from repro.graph.graph import Graph
from repro.jsonsafe import json_safe
from repro.serve import Client, Server

TRIANGLES = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]


class TestJsonSafe:
    def test_passthrough_plain_values(self):
        for value in (None, True, 3, 2.5, "x"):
            assert json_safe(value) is value

    def test_numpy_scalars_become_python_scalars(self):
        out = json_safe(
            {"n": np.int64(7), "t": np.float64(0.5), "flag": np.bool_(True)}
        )
        assert out == {"n": 7, "t": 0.5, "flag": True}
        assert type(out["n"]) is int
        assert type(out["t"]) is float
        assert type(out["flag"]) is bool

    def test_ndarray_becomes_nested_lists(self):
        out = json_safe({"order": np.arange(6).reshape(2, 3)})
        assert out == {"order": [[0, 1, 2], [3, 4, 5]]}
        json.dumps(out)  # truly wire-safe

    def test_sets_sorted_and_tuples_listified(self):
        out = json_safe({"s": frozenset({3, 1, 2}), "t": (1, 2)})
        assert out == {"s": [1, 2, 3], "t": [1, 2]}

    def test_unencodable_type_raises_typeerror_naming_type(self):
        with pytest.raises(TypeError, match="object"):
            json_safe({"bad": object()})


class TestCheckpointNumpySafety:
    def test_ndarray_order_checkpoint_is_json_serialisable(self):
        """An array-valued ``order`` option must survive json.dumps."""
        make = lambda: powerlaw_cluster(150, 6, 0.7, seed=9)  # noqa: E731
        session = Session(make())
        rank = np.argsort(np.argsort(session.graph.degrees))
        task = session.task(4, "hg", order=rank)
        task.step(max_work=40)

        blob = json.loads(json.dumps(task.checkpoint()))

        restored = Session(make()).restore_task(blob)
        result = restored.run()
        reference = session.solve(4, "hg", order=rank)
        assert result.sorted_cliques() == reference.sorted_cliques()

    def test_finished_exact_bb_checkpoint_is_json_serialisable(self):
        session = Session(watts_strogatz(30, 6, 0.2, seed=3))
        task = session.task(3, "opt-bb")
        task.run()
        json.dumps(task.checkpoint())  # engine stats may hold numpy scalars


class ConcurrencyHarness:
    """Hammer one lazy memo from many threads; all must see one object."""

    THREADS = 8

    def hammer(self, fn):
        barrier = threading.Barrier(self.THREADS)
        results: list[object] = [None] * self.THREADS
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                barrier.wait()
                results[slot] = fn()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        return results


class TestLazyMemoThreadSafety(ConcurrencyHarness):
    def test_graph_csr_built_once_across_threads(self):
        graph = powerlaw_cluster(400, 5, 0.6, seed=11)
        results = self.hammer(graph.csr)
        assert all(r is results[0] for r in results)

    def test_oriented_csr_built_once_across_threads(self):
        graph = powerlaw_cluster(400, 5, 0.6, seed=12)
        oriented = OrientedGraph.orient(graph, "degeneracy")
        results = self.hammer(oriented.csr)
        assert all(r is results[0] for r in results)

    def test_session_fingerprint_stable_across_threads(self):
        session = Session(powerlaw_cluster(400, 5, 0.6, seed=13))
        results = self.hammer(session.fingerprint)
        assert len(set(results)) == 1
        assert results[0] == Session(
            powerlaw_cluster(400, 5, 0.6, seed=13)
        ).fingerprint()


class TestServerShutdownGuard:
    def test_concurrent_close_is_idempotent(self):
        server = Server(workers=2)
        server.register_graph("g", Graph.from_edges(TRIANGLES))
        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def closer() -> None:
            try:
                barrier.wait()
                server.close()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_shutdown_refuses_new_compute_requests(self):
        server = Server(workers=1)
        client = Client(server)
        server.register_graph("g", Graph.from_edges(TRIANGLES))
        client.shutdown()
        with pytest.raises(InvalidParameterError):
            client.ping()
        server.close()


class TestFeedClockOutsideLock:
    """The holdcalling sweep: ``DynamicFeed`` invoked its injected clock
    (an arbitrary user callable) while holding the feed lock. The fix
    samples the clock once per operation before acquiring the lock."""

    def _feed(self, clock):
        from repro.serve.feeds import DynamicFeed, FlushPolicy

        session = Session(Graph.from_edges(TRIANGLES))
        return DynamicFeed(
            session, 3, policy=FlushPolicy(max_updates=2, max_age=10.0), clock=clock
        )

    def test_clock_never_called_under_feed_lock(self):
        feed_holder: list = []

        def nosy_clock() -> float:
            if feed_holder:
                lock = feed_holder[0]._lock
                # A re-entrant acquire succeeding non-blockingly from
                # this thread proves the feed lock is NOT held here
                # (RLock: re-entry always succeeds if we held it, and
                # acquiring when free succeeds too — so instead assert
                # via the tracked wrapper when available).
                assert not getattr(lock, "_is_owned", lambda: False)(), (
                    "clock invoked while the feed lock is held"
                )
            return 0.0

        feed = self._feed(nosy_clock)
        feed_holder.append(feed)
        feed.push([("insert", 0, 3)])
        feed.flush()
        feed.maybe_flush()
        feed.solution()
        _ = feed.size

    def test_age_flush_uses_one_pre_lock_timestamp(self):
        ticks = iter([0.0, 100.0, 200.0, 300.0])
        feed = self._feed(lambda: next(ticks))
        feed.push([("insert", 0, 3)])  # buffers at t=0
        report = feed.maybe_flush()  # t=100 >= max_age -> flushes
        assert report is not None
        assert feed.stats["age_flushes"] == 1


class TestHarnessForkGuard:
    """The migration sweep: ``run_cell_subprocess`` ships a closure
    through ``Process(args=...)``, which only survives under the fork
    start method. Platforms without fork now fall back to in-process
    cooperative enforcement instead of crashing on pickling."""

    def test_falls_back_in_process_without_fork(self, monkeypatch):
        import multiprocessing

        from repro.bench import harness

        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )

        def boom(*args, **kwargs):  # pragma: no cover - must not be hit
            raise AssertionError("fork context requested without fork support")

        monkeypatch.setattr(multiprocessing, "get_context", boom)
        outcome = harness.run_cell_subprocess(lambda: 41 + 1, time_budget=5.0)
        assert outcome.value == 42

    def test_forked_path_still_used_when_available(self):
        from repro.bench import harness

        outcome = harness.run_cell_subprocess(lambda: "ok", time_budget=10.0)
        assert outcome.value == "ok"


class TestIterationOrderDefects:
    """The iterorder sweep (PR 10): order-bearing values must not inherit
    hash-table iteration order. Each test pins one fixed site."""

    def test_subgraph_edge_list_is_sorted(self):
        # graph/graph.py formerly aliased ``index.keys()`` and iterated
        # raw adjacency sets; the edge list is now lexicographically
        # sorted regardless of input order.
        graph = Graph(6, TRIANGLES)
        sub, mapping = graph.subgraph_with_mapping([5, 3, 4, 0, 2, 1])
        assert mapping == [0, 1, 2, 3, 4, 5]
        edges = [
            (u, v) for u in range(sub.n) for v in sorted(sub.neighbors(u)) if u < v
        ]
        assert edges == sorted(edges)
        # Scrambled input yields the identical subgraph.
        sub2, mapping2 = graph.subgraph_with_mapping([1, 0, 2, 5, 4, 3])
        assert mapping2 == mapping
        assert sorted(sub2.edges()) == sorted(sub.edges())

    def test_generator_edge_lists_are_canonical(self):
        from repro.graph.generators import erdos_renyi_gnm, watts_strogatz

        g1 = erdos_renyi_gnm(40, 120, seed=7)
        g2 = erdos_renyi_gnm(40, 120, seed=7)
        assert sorted(g1.edges()) == sorted(g2.edges())
        w1 = watts_strogatz(30, 4, 0.3, seed=3)
        w2 = watts_strogatz(30, 4, 0.3, seed=3)
        assert sorted(w1.edges()) == sorted(w2.edges())

    def test_mis_kernel_is_input_order_invariant(self):
        # mis/reductions.py formerly scanned ``list(alive)`` (set order);
        # both reduction loops now scan ascending, so the kernel is a
        # pure function of the graph.
        from repro.mis.reductions import reduce_mis

        graph = powerlaw_cluster(60, 3, 0.4, seed=11)
        k1 = reduce_mis(graph)
        k2 = reduce_mis(Graph(graph.n, sorted(graph.edges(), reverse=True)))
        assert k1.mapping == k2.mapping
        assert sorted(k1.forced) == sorted(k2.forced)
        assert sorted(k1.kernel.edges()) == sorted(k2.kernel.edges())

    def test_maintainer_snapshot_is_owner_sorted(self):
        # dynamic/maintainer.py formerly listed solution cliques in dict
        # insertion order (the update trajectory); snapshots are now
        # owner-sorted, so equivalent trajectories agree exactly.
        from repro.dynamic import DynamicDisjointCliques

        graph = powerlaw_cluster(80, 5, 0.5, seed=4)
        dyn = DynamicDisjointCliques(graph, 3)
        snapshot = dyn.solution()
        expected = [
            dyn.index.solution[owner] for owner in sorted(dyn.index.solution)
        ]
        assert list(snapshot.cliques) == expected

    def test_clique_graph_build_is_repeatable(self):
        # cliques/clique_graph.py now feeds Graph a sorted edge list, so
        # repeated builds are bit-identical structures.
        from repro.cliques.clique_graph import build_clique_graph

        graph = powerlaw_cluster(50, 4, 0.5, seed=9)
        a = build_clique_graph(graph, 3)
        b = build_clique_graph(graph, 3)
        assert a.cliques == b.cliques
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
