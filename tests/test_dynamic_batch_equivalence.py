"""Differential tests: batched vs per-edge dynamic maintenance.

For seeded random graphs under the paper's three Section VI-E workloads
(deletion / insertion / mixed), the batched path must end in a state
satisfying every Section V invariant **after every batch** (validity,
maximality, exact candidate index — ``check_invariants``), reach the
same final graph as per-edge application, and deliver a solution at
least as large as the per-edge trajectory (the batch path closes each
batch with a maximality sweep, so on these pinned seeds it never
trails; both trajectories are fully deterministic). Both refresh
backends are exercised and must produce *identical* solutions — batch
maintenance canonicalises discovery order, so ``"sets"`` and ``"csr"``
follow the same trajectory, not merely equally-good ones.
"""

import pytest

from repro import Session
from repro.dynamic import DynamicDisjointCliques, iter_batches, make_workload
from repro.graph.generators import erdos_renyi_gnm, powerlaw_cluster

WORKLOADS = ("deletion", "insertion", "mixed")


# (graph factory, k, update count); seeds below are pinned — both paths
# are deterministic, so the >=-size comparison is stable.
CASES = [
    pytest.param(lambda s: erdos_renyi_gnm(60, 260, seed=s), 3, 20, id="gnm-k3"),
    pytest.param(lambda s: powerlaw_cluster(90, 6, 0.5, seed=s), 3, 20, id="pl-k3"),
    pytest.param(lambda s: erdos_renyi_gnm(60, 300, seed=s), 4, 15, id="gnm-k4"),
]
SEEDS = (1, 2, 4, 5)


@pytest.mark.parametrize("backend", ["sets", "csr"])
@pytest.mark.parametrize("make_graph,k,count", CASES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_batch_matches_per_edge(make_graph, k, count, seed, workload, backend):
    graph = make_graph(seed)
    start, updates = make_workload(graph, workload, count, seed + 50)

    per_edge = DynamicDisjointCliques(start, k)
    per_edge.apply(updates)
    per_edge.check_invariants()

    for batch_size in (len(updates), 7):
        batched = DynamicDisjointCliques(start, k)
        for chunk in iter_batches(updates, batch_size):
            batched.apply_batch(chunk, backend=backend)
            batched.check_invariants()
        assert set(batched.graph.edges()) == set(per_edge.graph.edges())
        assert batched.size >= per_edge.size


@pytest.mark.parametrize("make_graph,k,count", CASES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_backends_identical_trajectories(make_graph, k, count, seed):
    """sets and csr refreshes yield the same solutions, not just sizes."""
    graph = make_graph(seed)
    start, updates = make_workload(graph, "mixed", count, seed + 50)
    results = {}
    for backend in ("sets", "csr"):
        dyn = DynamicDisjointCliques(start, k)
        dyn.apply(updates, batch_size=6, backend=backend)
        results[backend] = dyn.solution().sorted_cliques()
    assert results["sets"] == results["csr"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_apply_batch_single_shot_invariants(workload):
    """One whole workload as a single batch keeps every invariant."""
    graph = powerlaw_cluster(120, 5, 0.5, seed=3)
    start, updates = make_workload(graph, workload, 25, 9)
    dyn = DynamicDisjointCliques(start, 3)
    batch = dyn.apply_batch(updates)
    assert batch.effective + batch.nops == len(updates)
    dyn.check_invariants()


@pytest.mark.slow
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("backend", ["sets", "csr"])
def test_batch_matches_per_edge_larger(workload, backend):
    """The same differential contract at a larger, slower scale."""
    graph = powerlaw_cluster(400, 6, 0.6, seed=5)
    start, updates = make_workload(graph, workload, 60, 17)
    per_edge = DynamicDisjointCliques(start, 3)
    per_edge.apply(updates)
    batched = DynamicDisjointCliques(start, 3)
    for chunk in iter_batches(updates, 25):
        batched.apply_batch(chunk, backend=backend)
        batched.check_invariants()
    assert set(batched.graph.edges()) == set(per_edge.graph.edges())
    assert batched.size >= per_edge.size


class TestSessionDynamic:
    def test_session_dynamic_reuses_preprocessing(self):
        graph = powerlaw_cluster(150, 5, 0.5, seed=2)
        session = Session(graph)
        session.warm([3])
        passes_before = session.prep.stats["score_passes"]
        dyn = session.dynamic(3)
        # The initial solve went through the session cache: no extra
        # score pass was paid for it.
        assert session.prep.stats["score_passes"] == passes_before
        dyn.check_invariants()
        assert dyn.size == session.solve(3).size

    def test_session_dynamic_is_independent_of_session(self):
        graph = powerlaw_cluster(80, 4, 0.4, seed=1)
        session = Session(graph)
        dyn = session.dynamic(3)
        before = session.graph.m
        u, v = next(iter(dyn.graph.edges()))
        dyn.delete_edge(u, v)
        assert session.graph.m == before  # session snapshot untouched
        dyn.check_invariants()

    def test_session_dynamic_rejects_bad_k(self):
        from repro.errors import InvalidParameterError

        session = Session(erdos_renyi_gnm(10, 20, seed=0))
        with pytest.raises(InvalidParameterError):
            session.dynamic(1)

    def test_initial_solution_validated(self):
        from repro.core.result import CliqueSetResult
        from repro.errors import SolutionError

        graph = powerlaw_cluster(40, 4, 0.4, seed=4)
        # An empty "solution" is valid but not maximal on this graph.
        bogus = CliqueSetResult([], k=3, method="bogus")
        with pytest.raises(SolutionError):
            DynamicDisjointCliques(graph, 3, initial=bogus)
