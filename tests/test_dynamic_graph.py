"""Unit tests for the mutable DynamicGraph."""

import pytest

from repro import Graph
from repro.errors import GraphError
from repro.graph.dynamic import DynamicGraph


class TestMutation:
    def test_insert_and_delete(self):
        g = DynamicGraph(4)
        assert g.insert_edge(0, 1)
        assert not g.insert_edge(1, 0)  # duplicate
        assert g.m == 1
        assert g.delete_edge(0, 1)
        assert not g.delete_edge(0, 1)  # already gone
        assert g.m == 0

    def test_self_loop_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(GraphError):
            g.insert_edge(2, 2)

    def test_out_of_range_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(GraphError):
            g.insert_edge(0, 5)
        with pytest.raises(GraphError):
            g.delete_edge(0, 5)

    def test_add_node(self):
        g = DynamicGraph(2, [(0, 1)])
        new = g.add_node()
        assert new == 2 and g.n == 3
        g.insert_edge(2, 0)
        assert g.has_edge(0, 2)

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            DynamicGraph(-2)


class TestAccessors:
    def test_mirrors_static_api(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        dyn = DynamicGraph(4, edges)
        static = Graph(4, edges)
        assert dyn.n == static.n and dyn.m == static.m
        for u in range(4):
            assert dyn.neighbors(u) == static.neighbors(u)
            assert dyn.degree(u) == static.degree(u)
        assert sorted(dyn.edges()) == sorted(static.edges())
        assert dyn.is_clique([0, 1, 2]) and not dyn.is_clique([0, 1, 3])

    def test_has_edge_out_of_range(self):
        g = DynamicGraph(2, [(0, 1)])
        assert not g.has_edge(0, 9)

    def test_is_clique_rejects_duplicates(self):
        g = DynamicGraph(3, [(0, 1)])
        assert not g.is_clique([0, 0])

    def test_repr(self):
        assert repr(DynamicGraph(2, [(0, 1)])) == "DynamicGraph(n=2, m=1)"


class TestSnapshot:
    def test_snapshot_roundtrip(self, paper_graph):
        dyn = DynamicGraph.from_graph(paper_graph)
        assert dyn.snapshot() == paper_graph

    def test_snapshot_after_updates(self, paper_graph):
        dyn = DynamicGraph.from_graph(paper_graph)
        dyn.delete_edge(0, 2)
        dyn.insert_edge(0, 8)
        snap = dyn.snapshot()
        assert not snap.has_edge(0, 2) and snap.has_edge(0, 8)
        assert snap.m == paper_graph.m

    def test_snapshot_is_independent(self):
        dyn = DynamicGraph(3, [(0, 1)])
        snap = dyn.snapshot()
        dyn.insert_edge(1, 2)
        assert snap.m == 1
