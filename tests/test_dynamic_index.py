"""Tests for the candidate-clique index (Algorithm 5)."""

import pytest

from repro import Graph
from repro.dynamic.index import CandidateIndex
from repro.errors import SolutionError
from repro.graph.dynamic import DynamicGraph


def make_index(graph: Graph, k: int, solution) -> CandidateIndex:
    index = CandidateIndex(DynamicGraph.from_graph(graph), k)
    for clique in solution:
        index.add_solution_clique(frozenset(clique))
    index.build()
    return index


class TestPaperFig5:
    def test_candidates_of_g1(self, fig5_g1):
        # S = {C1=(v3,v4,v5), C2=(v9,v10,v11)}; C1's only candidate is
        # (v1,v2,v3); C2 has none (no neighbouring free nodes in a clique).
        index = make_index(fig5_g1, 3, [{2, 3, 4}, {8, 9, 10}])
        owners = {frozenset(c): o for c, o in index.owner_of_cand.items()}
        assert set(owners) == {frozenset({0, 1, 2})}
        assert index.num_candidates == 1
        index.check_consistency()

    def test_inserting_v5_v7_creates_candidate(self, fig5_g1):
        # Fig. 5(b): adding (v5, v7) forms the new candidate (v5, v6, v7).
        index = make_index(fig5_g1, 3, [{2, 3, 4}, {8, 9, 10}])
        index.graph.insert_edge(4, 6)
        report = index.discover_through_edge(4, 6)
        new = {c for cands in report.new_by_owner.values() for c in cands}
        assert frozenset({4, 5, 6}) in new
        index.check_consistency()


class TestClassify:
    def test_all_free(self, triangle_pair):
        index = make_index(triangle_pair, 3, [{0, 1, 2}])
        assert index.classify(frozenset({3, 4, 5})) == ("all_free", None)

    def test_candidate(self, paper_graph):
        index = make_index(paper_graph, 3, [{0, 2, 5}])  # C1
        kind, owner = index.classify(frozenset({2, 4, 5}))  # C2 shares v3, v6
        assert kind == "candidate" and owner in index.solution

    def test_invalid_two_owners(self, paper_graph):
        index = make_index(paper_graph, 3, [{0, 2, 5}, {6, 7, 8}])
        # C3 = (v5, v6, v8): v6 belongs to the first owner and v8 to the
        # second -> invalid candidate.
        assert index.classify(frozenset({4, 5, 7}))[0] == "invalid"

    def test_candidate_with_one_free_node(self, paper_graph):
        index = make_index(paper_graph, 3, [{0, 2, 5}, {6, 7, 8}])
        # C4 = (v5, v7, v8): v5 free, v7/v8 in the same owner -> candidate.
        kind, owner = index.classify(frozenset({4, 6, 7}))
        assert kind == "candidate"
        assert index.solution[owner] == frozenset({6, 7, 8})

    def test_invalid_fully_covered(self, triangle_pair):
        index = make_index(triangle_pair, 3, [{0, 1, 2}, {3, 4, 5}])
        assert index.classify(frozenset({0, 1, 2}))[0] == "invalid"


class TestBuildMatchesBruteForce:
    @pytest.mark.parametrize("k", [3, 4])
    def test_consistency_on_random_graphs(self, random_graphs, k):
        from repro import find_disjoint_cliques

        for g in random_graphs:
            solution = find_disjoint_cliques(g, k, method="lp").cliques
            index = make_index(g, k, solution)
            index.check_consistency()  # compares against from-scratch recompute

    def test_non_maximal_solution_rejected(self):
        # A free triangle {3,4,5} adjacent to the owner (all three are
        # neighbours of node 0, so it falls inside the Algorithm 5 pool)
        # proves S non-maximal; build must refuse.
        g = Graph(
            6,
            [(0, 1), (0, 2), (1, 2),
             (3, 4), (3, 5), (4, 5),
             (0, 3), (0, 4), (0, 5)],
        )
        index = CandidateIndex(DynamicGraph.from_graph(g), 3)
        index.add_solution_clique(frozenset({0, 1, 2}))
        with pytest.raises(SolutionError, match="not maximal"):
            index.build()


class TestSolutionBookkeeping:
    def test_overlapping_solution_rejected(self, paper_graph):
        index = CandidateIndex(DynamicGraph.from_graph(paper_graph), 3)
        index.add_solution_clique(frozenset({0, 2, 5}))
        with pytest.raises(SolutionError):
            index.add_solution_clique(frozenset({2, 4, 7}))

    def test_remove_returns_clique_and_frees_nodes(self, triangle_pair):
        index = make_index(triangle_pair, 3, [{0, 1, 2}, {3, 4, 5}])
        owner = index.owner_of[0]
        removed = index.remove_solution_clique(owner)
        assert removed == frozenset({0, 1, 2})
        assert all(index.is_free(u) for u in (0, 1, 2))

    def test_remove_candidates_with_edge(self, fig5_g1):
        index = make_index(fig5_g1, 3, [{2, 3, 4}, {8, 9, 10}])
        doomed = index.remove_candidates_with_edge(0, 1)  # kills (v1,v2,v3)
        assert doomed == {frozenset({0, 1, 2})}
        assert index.num_candidates == 0


class TestRefresh:
    def test_refresh_restores_exactness(self, paper_graph):
        # Start from C1 + C5 (a maximal solution), drop C5; the freed
        # nodes must re-expose every clique touching them.
        index = make_index(paper_graph, 3, [{0, 2, 5}, {6, 7, 8}])
        owner = index.owner_of[6]
        freed = index.remove_solution_clique(owner)
        report = index.refresh_nodes(freed)
        # C5=(v7,v8,v9) itself is now an uncovered triangle.
        assert frozenset({6, 7, 8}) in report.all_free
        # Re-add it; the index must return to a consistent state.
        index.add_solution_clique(frozenset({6, 7, 8}))
        index.refresh_nodes({6, 7, 8})
        index.check_consistency()

    def test_new_candidates_reported_once(self, fig5_g1):
        index = make_index(fig5_g1, 3, [{2, 3, 4}, {8, 9, 10}])
        report = index.refresh_nodes({0, 1})
        # (v1,v2,v3) already existed before the refresh -> not "new".
        assert not report.new_by_owner
        index.check_consistency()
