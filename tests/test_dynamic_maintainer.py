"""Tests for the dynamic maintainer (Algorithms 6 & 7)."""

import numpy as np
import pytest

from repro import Graph, find_disjoint_cliques
from repro.dynamic import DynamicDisjointCliques
from repro.errors import InvalidParameterError
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import (
    erdos_renyi_gnp,
    planted_clique_packing,
    powerlaw_cluster,
)


class TestConstruction:
    def test_from_static_graph(self, paper_graph):
        dyn = DynamicDisjointCliques(paper_graph, 3)
        dyn.check_invariants()
        assert dyn.size >= 2

    def test_from_dynamic_graph(self, paper_graph):
        source = DynamicGraph.from_graph(paper_graph)
        dyn = DynamicDisjointCliques(source, 3)
        source.delete_edge(0, 2)  # private copy: maintainer unaffected
        dyn.check_invariants()

    def test_invalid_inputs(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            DynamicDisjointCliques(paper_graph, 1)
        with pytest.raises(InvalidParameterError):
            DynamicDisjointCliques("nope", 3)

    def test_solution_snapshot(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        result = dyn.solution()
        assert result.size == 2 and result.method == "dynamic"
        assert dyn.free_nodes() == set()


class TestInsertionCases:
    def test_insert_existing_edge_is_noop(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        assert not dyn.insert_edge(0, 1)
        assert dyn.stats["insertions"] == 0

    def test_both_free_forms_new_clique(self):
        # One triangle in S; nodes 3,4,5 free with a path 3-4-5.
        g = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4), (4, 5)])
        dyn = DynamicDisjointCliques(g, 3)
        assert dyn.size == 1
        dyn.insert_edge(3, 5)  # closes the free triangle
        assert dyn.size == 2
        dyn.check_invariants()

    def test_one_free_triggers_swap(self, fig5_g1):
        dyn = DynamicDisjointCliques(fig5_g1, 3)
        start = dyn.size
        dyn.insert_edge(4, 6)  # the paper's (v5, v7) insertion
        assert dyn.size == start + 1  # swap gained one clique
        dyn.check_invariants()

    def test_both_covered_is_cheap_noop(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        dyn.insert_edge(0, 3)  # both endpoints covered
        assert dyn.size == 2
        dyn.check_invariants()

    def test_both_free_insertion_cascades_into_swap(self):
        # One triangle of the K4 {0,1,2,3} is in S; nodes 4, 5 are free
        # and adjacent to 0 and 1. Inserting (4,5) creates the candidates
        # {0,4,5} / {1,4,5}, and a swap can then split the solution into
        # two disjoint triangles covering all six nodes.
        g = Graph(
            6,
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
             (4, 0), (4, 1), (5, 0), (5, 1)],
        )
        dyn = DynamicDisjointCliques(g, 3)
        assert dyn.size == 1
        dyn.insert_edge(4, 5)
        assert dyn.size == 2
        assert dyn.stats["swaps"] >= 1
        dyn.check_invariants()


class TestDeletionCases:
    def test_delete_absent_edge_is_noop(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        assert not dyn.delete_edge(0, 3)
        assert dyn.stats["deletions"] == 0

    def test_delete_inside_solution_clique(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        dyn.delete_edge(0, 1)
        assert dyn.size == 1
        dyn.check_invariants()

    def test_delete_candidate_edge_only(self, fig5_g1):
        dyn = DynamicDisjointCliques(fig5_g1, 3)
        start = dyn.size
        dyn.delete_edge(0, 1)  # edge of candidate (v1,v2,v3) only
        assert dyn.size == start
        dyn.check_invariants()

    def test_destroyed_clique_recovered_from_candidates(self, paper_graph):
        # Whatever the initial S, breaking one of its cliques must leave
        # a maximal S (freed nodes re-covered where possible).
        dyn = DynamicDisjointCliques(paper_graph, 3)
        clique = sorted(next(iter(dyn.solution().cliques)))
        dyn.delete_edge(clique[0], clique[1])
        dyn.check_invariants()

    def test_paper_fig5_deletion(self, fig5_g1):
        # Build G2 = G1 + (v5,v7), then delete (v5,v7): the swap example
        # run backwards. Final S must again be maximal with 2 cliques
        # containing (v1,v2,v3) and (v9,v10,v11).
        g2 = fig5_g1.add_edges([(4, 6)])
        dyn = DynamicDisjointCliques(g2, 3)
        assert dyn.size == 3
        dyn.delete_edge(4, 6)
        assert dyn.size == 2
        solution = set(dyn.solution().cliques)
        assert frozenset({8, 9, 10}) in solution
        assert frozenset({0, 1, 2}) in solution
        dyn.check_invariants()


class TestApply:
    def test_apply_stream(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        dyn.apply([("delete", 0, 1), ("insert", 0, 1)])
        assert dyn.size == 2
        with pytest.raises(InvalidParameterError):
            dyn.apply([("frobnicate", 0, 1)])


class TestRandomStreams:
    @pytest.mark.parametrize("k", [3, 4])
    def test_invariants_under_random_updates(self, k):
        rng = np.random.default_rng(99)
        for trial in range(3):
            g = erdos_renyi_gnp(20, 0.35, seed=trial)
            dyn = DynamicDisjointCliques(g, k)
            for _ in range(40):
                if rng.random() < 0.5 and dyn.graph.m > 4:
                    edges = list(dyn.graph.edges())
                    u, v = edges[int(rng.integers(len(edges)))]
                    dyn.delete_edge(u, v)
                else:
                    u = int(rng.integers(20))
                    v = int(rng.integers(20))
                    if u != v and not dyn.graph.has_edge(u, v):
                        dyn.insert_edge(u, v)
                dyn.check_invariants()

    def test_solution_tracks_rebuild_quality(self):
        rng = np.random.default_rng(5)
        g = powerlaw_cluster(300, 5, 0.5, seed=8)
        dyn = DynamicDisjointCliques(g, 3)
        edges = list(g.edges())
        picks = rng.choice(len(edges), size=60, replace=False)
        for pick in picks:
            dyn.delete_edge(*edges[pick])
        rebuilt = find_disjoint_cliques(dyn.graph.snapshot(), 3, method="lp")
        # The paper's Table VIII drift is a fraction of a percent; allow
        # a small absolute band at this scale.
        assert abs(dyn.size - rebuilt.size) <= max(3, rebuilt.size // 20)

    def test_delete_everything(self, paper_graph):
        dyn = DynamicDisjointCliques(paper_graph, 3)
        for u, v in list(paper_graph.edges()):
            dyn.delete_edge(u, v)
        assert dyn.size == 0 and dyn.index_size == 0
        assert dyn.graph.m == 0
        dyn.check_invariants()

    def test_rebuild_everything(self, paper_graph):
        dyn = DynamicDisjointCliques(Graph(9), 3)
        for u, v in paper_graph.edges():
            dyn.insert_edge(u, v)
        assert dyn.size >= 2
        dyn.check_invariants()


class TestPlantedRecovery:
    def test_insertions_reassemble_planted_packing(self):
        g, planted = planted_clique_packing(4, 3, seed=21)
        # Remove one edge from each planted triangle, then re-add them.
        removed = [tuple(sorted(c))[:2] for c in planted]
        start = g.remove_edges(removed)
        dyn = DynamicDisjointCliques(start, 3)
        assert dyn.size == 0
        for u, v in removed:
            dyn.insert_edge(u, v)
        assert dyn.size == 4
        dyn.check_invariants()
