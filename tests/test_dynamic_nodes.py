"""Tests for node-level dynamic updates (bundled edge updates)."""

from repro import Graph
from repro.dynamic import DynamicDisjointCliques


class TestRemoveNode:
    def test_removing_clique_member_repairs(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        assert dyn.size == 2
        removed = dyn.remove_node(0)
        assert removed == 2
        assert dyn.size == 1
        assert dyn.graph.degree(0) == 0
        dyn.check_invariants()

    def test_removing_free_node(self):
        g = Graph(5, [(0, 1), (0, 2), (1, 2), (3, 0), (4, 0)])
        dyn = DynamicDisjointCliques(g, 3)
        removed = dyn.remove_node(3)
        assert removed == 1
        assert dyn.size == 1
        dyn.check_invariants()

    def test_removing_isolated_node(self, triangle_pair):
        g = Graph(7, list(triangle_pair.edges()))
        dyn = DynamicDisjointCliques(g, 3)
        assert dyn.remove_node(6) == 0
        dyn.check_invariants()

    def test_replacement_found_after_removal(self):
        # Triangle {0,1,2} with a spare node 3 adjacent to 1 and 2:
        # removing node 0 lets {1,2,3} take over.
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (3, 1), (3, 2)])
        dyn = DynamicDisjointCliques(g, 3)
        dyn.remove_node(0)
        assert dyn.size == 1
        assert dyn.solution().cliques[0] == frozenset({1, 2, 3})
        dyn.check_invariants()


class TestAddNode:
    def test_player_joining_forms_clique(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        dyn.delete_edge(3, 4)  # break second triangle: |S| = 1
        assert dyn.size == 1
        # The new player befriends 3 and 5 (who are already friends), so
        # {3, 5, new} forms a fresh clique.
        new = dyn.add_node(neighbors=[3, 5])
        assert new == 6
        assert dyn.size == 2
        assert frozenset({3, 5, 6}) in set(dyn.solution().cliques)
        dyn.check_invariants()

    def test_isolated_join(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        node = dyn.add_node()
        assert dyn.graph.degree(node) == 0
        assert dyn.size == 2
        dyn.check_invariants()

    def test_churn_cycle(self, triangle_pair):
        dyn = DynamicDisjointCliques(triangle_pair, 3)
        node = dyn.add_node(neighbors=[0, 1, 2])
        dyn.remove_node(node)
        assert dyn.size == 2
        dyn.check_invariants()
