"""Stateful hypothesis test: the maintainer under arbitrary update streams.

Models the dynamic maintainer as a state machine whose rules insert and
delete arbitrary edges — singly (Algorithms 6/7) or through
``apply_batch`` with arbitrary random batches, including empty and
self-cancelling insert+delete ones, so batched and per-edge maintenance
are fuzzed interleaved. After *every* rule the three Section V
invariants are checked: solution validity, maximality, and exact
candidate-index agreement with the from-scratch definition. A shadow
edge-set model additionally pins the graph state itself.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import Graph
from repro.core.result import is_maximal, verify_solution
from repro.dynamic import DynamicDisjointCliques

N = 12
K = 3

node = st.integers(0, N - 1)
edge = st.tuples(node, node).filter(lambda e: e[0] != e[1])
op = st.sampled_from(["insert", "delete"])
update = st.tuples(op, node, node).filter(lambda t: t[1] != t[2])
# Batches mix independent random updates with deliberate insert+delete
# pairs of one edge (which must coalesce to a no-op), in random order;
# empty batches are legal and must be no-ops too.
cancelling_pair = edge.flatmap(
    lambda e: st.permutations([("insert", e[0], e[1]), ("delete", e[0], e[1])])
)
batch = st.lists(
    st.one_of(update.map(lambda u: [u]), cancelling_pair),
    min_size=0,
    max_size=5,
).map(lambda groups: [u for group in groups for u in group])


class MaintainerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dyn = DynamicDisjointCliques(Graph(N), K)
        self.model_edges: set[tuple[int, int]] = set()

    @rule(u=node, v=node)
    def insert(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        applied = self.dyn.insert_edge(u, v)
        assert applied == (edge not in self.model_edges)
        self.model_edges.add(edge)

    @rule(u=node, v=node)
    def delete(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        applied = self.dyn.delete_edge(u, v)
        assert applied == (edge in self.model_edges)
        self.model_edges.discard(edge)

    @rule(updates=batch, backend=st.sampled_from(["sets", "csr", "auto"]))
    def apply_batch(self, updates, backend):
        planned = self.dyn.apply_batch(updates, backend=backend)
        assert planned.effective + planned.nops == len(updates)
        # The shadow model replays the stream sequentially; the planner's
        # last-op-wins coalescing must land on the same edge set.
        for op_name, u, v in updates:
            e = (min(u, v), max(u, v))
            if op_name == "insert":
                self.model_edges.add(e)
            else:
                self.model_edges.discard(e)

    @invariant()
    def graph_matches_model(self):
        assert set(self.dyn.graph.edges()) == self.model_edges

    @invariant()
    def solution_valid_and_maximal(self):
        solution = self.dyn.index.solution.values()
        verify_solution(self.dyn.graph, K, solution)
        assert is_maximal(self.dyn.graph, K, solution)

    @invariant()
    def index_exact(self):
        self.dyn.index.check_consistency()


MaintainerMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestMaintainerStateful = MaintainerMachine.TestCase
