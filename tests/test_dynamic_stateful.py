"""Stateful hypothesis test: the maintainer under arbitrary update streams.

Models the dynamic maintainer as a state machine whose rules insert and
delete arbitrary edges. After *every* rule the three Section V
invariants are checked: solution validity, maximality, and exact
candidate-index agreement with the from-scratch definition. A shadow
edge-set model additionally pins the graph state itself.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import Graph
from repro.core.result import is_maximal, verify_solution
from repro.dynamic import DynamicDisjointCliques

N = 12
K = 3


class MaintainerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dyn = DynamicDisjointCliques(Graph(N), K)
        self.model_edges: set[tuple[int, int]] = set()

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def insert(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        applied = self.dyn.insert_edge(u, v)
        assert applied == (edge not in self.model_edges)
        self.model_edges.add(edge)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def delete(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        applied = self.dyn.delete_edge(u, v)
        assert applied == (edge in self.model_edges)
        self.model_edges.discard(edge)

    @invariant()
    def graph_matches_model(self):
        assert set(self.dyn.graph.edges()) == self.model_edges

    @invariant()
    def solution_valid_and_maximal(self):
        solution = self.dyn.index.solution.values()
        verify_solution(self.dyn.graph, K, solution)
        assert is_maximal(self.dyn.graph, K, solution)

    @invariant()
    def index_exact(self):
        self.dyn.index.check_consistency()


MaintainerMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestMaintainerStateful = MaintainerMachine.TestCase
