"""Tests for swap operations (Algorithm 4)."""

from collections import deque

from repro.dynamic.index import CandidateIndex
from repro.dynamic.swap import select_disjoint, try_swap
from repro.graph.dynamic import DynamicGraph
from repro import Graph


class TestSelectDisjoint:
    def test_prefers_low_conflict_cliques(self):
        # The hub clique overlaps both others; local scoring ranks it last.
        cliques = [
            frozenset({0, 1, 2}),
            frozenset({2, 3, 4}),
            frozenset({0, 5, 6}),
        ]
        chosen = select_disjoint(cliques, 3)
        assert len(chosen) == 2
        assert frozenset({2, 3, 4}) in chosen and frozenset({0, 5, 6}) in chosen

    def test_deterministic_on_ties(self):
        cliques = [frozenset({0, 1, 2}), frozenset({3, 4, 5})]
        assert select_disjoint(cliques, 3) == select_disjoint(list(reversed(cliques)), 3)

    def test_empty(self):
        assert select_disjoint([], 3) == []

    def test_maximality(self):
        cliques = [frozenset({0, 1, 2}), frozenset({1, 3, 4}), frozenset({5, 6, 7})]
        chosen = select_disjoint(cliques, 3)
        used = set().union(*chosen)
        for c in cliques:
            assert c in chosen or (c & used)


class TestTrySwapFig5:
    def test_paper_swap_example(self, fig5_g1):
        """Fig. 5: after inserting (v5, v7), swapping C=(v3,v4,v5) for its
        two candidates (v1,v2,v3) and (v5,v6,v7) grows S from 2 to 3."""
        graph = DynamicGraph.from_graph(fig5_g1)
        index = CandidateIndex(graph, 3)
        owner_c = index.add_solution_clique(frozenset({2, 3, 4}))   # (v3,v4,v5)
        index.add_solution_clique(frozenset({8, 9, 10}))            # (v9,v10,v11)
        index.build()

        graph.insert_edge(4, 6)  # (v5, v7)
        index.discover_through_edge(4, 6)

        stats: dict[str, float] = {}
        created = try_swap(index, deque([owner_c]), stats)
        assert stats["swaps"] == 1
        assert len(index.solution) == 3
        solution = set(index.solution.values())
        assert frozenset({0, 1, 2}) in solution      # (v1,v2,v3)
        assert frozenset({4, 5, 6}) in solution      # (v5,v6,v7)
        assert frozenset({8, 9, 10}) in solution
        assert len(created) == 2
        index.check_consistency()

    def test_no_swap_with_single_candidate(self, fig5_g1):
        graph = DynamicGraph.from_graph(fig5_g1)
        index = CandidateIndex(graph, 3)
        owner_c = index.add_solution_clique(frozenset({2, 3, 4}))
        index.add_solution_clique(frozenset({8, 9, 10}))
        index.build()  # only candidate: (v1, v2, v3)

        stats: dict[str, float] = {}
        try_swap(index, deque([owner_c]), stats)
        assert stats["swaps"] == 0
        assert len(index.solution) == 2

    def test_popped_owner_no_longer_in_solution(self, fig5_g1):
        graph = DynamicGraph.from_graph(fig5_g1)
        index = CandidateIndex(graph, 3)
        owner_c = index.add_solution_clique(frozenset({2, 3, 4}))
        index.build()
        index.remove_solution_clique(owner_c)
        stats: dict[str, float] = {}
        try_swap(index, deque([owner_c]), stats)
        assert stats["pops"] == 0  # skipped silently


class TestSwapCascade:
    def test_swap_gain_counts(self):
        # A star of one chosen triangle surrounded by two disjoint
        # replacements on each side; one swap nets +1.
        g = Graph(
            9,
            [
                (0, 1), (1, 2), (0, 2),        # chosen triangle
                (0, 3), (3, 4), (0, 4),        # candidate A via node 0
                (2, 5), (5, 6), (2, 6),        # candidate B via node 2
                (7, 8),                        # filler
            ],
        )
        graph = DynamicGraph.from_graph(g)
        index = CandidateIndex(graph, 3)
        owner = index.add_solution_clique(frozenset({0, 1, 2}))
        index.build()
        stats: dict[str, float] = {}
        try_swap(index, deque([owner]), stats)
        assert len(index.solution) == 2
        assert stats["swap_gain"] == 1
        index.check_consistency()
