"""Exception-hierarchy contracts and cross-run determinism."""

import pytest

from repro import find_disjoint_cliques
from repro.errors import (
    BudgetExceededError,
    GraphError,
    InvalidParameterError,
    OutOfMemoryError,
    OutOfTimeError,
    ReproError,
    SolutionError,
)
from repro.graph.generators import powerlaw_cluster


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            GraphError,
            InvalidParameterError,
            SolutionError,
            BudgetExceededError,
            OutOfTimeError,
            OutOfMemoryError,
        ):
            assert issubclass(exc, ReproError)

    def test_budget_markers(self):
        assert issubclass(OutOfTimeError, BudgetExceededError)
        assert issubclass(OutOfMemoryError, BudgetExceededError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(InvalidParameterError, ValueError)

    def test_catchable_as_base(self):
        from repro import Graph

        with pytest.raises(ReproError):
            Graph(2, [(0, 0)])


class TestDeterminism:
    @pytest.fixture(scope="class")
    def graph(self):
        return powerlaw_cluster(150, 5, 0.5, seed=77)

    @pytest.mark.parametrize("method", ["hg", "gc", "l", "lp"])
    def test_repeated_runs_identical(self, graph, method):
        first = find_disjoint_cliques(graph, 3, method=method).sorted_cliques()
        second = find_disjoint_cliques(graph, 3, method=method).sorted_cliques()
        assert first == second

    @pytest.mark.parametrize("method", ["opt", "opt-bb"])
    def test_exact_solvers_deterministic(self, method):
        # Exponential solvers get a tiny instance (they would dominate
        # the suite's runtime on the 150-node fixture).
        small = powerlaw_cluster(40, 4, 0.5, seed=78)
        first = find_disjoint_cliques(small, 3, method=method).sorted_cliques()
        second = find_disjoint_cliques(small, 3, method=method).sorted_cliques()
        assert first == second

    def test_dynamic_runs_identical(self, graph):
        from repro.dynamic import DynamicDisjointCliques
        from repro.dynamic.workload import mixed_workload

        start, updates = mixed_workload(graph, 20, seed=5)
        results = []
        for _ in range(2):
            dyn = DynamicDisjointCliques(start, 3)
            dyn.apply(updates)
            results.append(dyn.solution().sorted_cliques())
        assert results[0] == results[1]

    def test_generator_registry_stable(self):
        from repro.graph import datasets

        spec = datasets.spec("HST")
        assert spec.build() == spec.build()
