"""Cross-validation of the two independent exact solvers."""

import pytest

from repro.core.exact import exact_optimum
from repro.core.exact_bb import exact_optimum_bb
from repro.core.result import is_maximal, verify_solution
from repro.errors import InvalidParameterError, OutOfMemoryError, OutOfTimeError
from repro.graph.generators import (
    erdos_renyi_gnp,
    planted_clique_packing,
    ring_of_cliques,
)
from tests.conftest import brute_force_max_disjoint


class TestAgreement:
    @pytest.mark.parametrize("k", [3, 4])
    def test_bb_matches_mis_based_opt(self, random_graphs, k):
        for g in random_graphs:
            mis_based = exact_optimum(g, k)
            bb = exact_optimum_bb(g, k)
            verify_solution(g, k, bb.cliques)
            assert bb.size == mis_based.size

    @pytest.mark.parametrize("k", [3, 4])
    def test_bb_matches_brute_force(self, random_graphs, k):
        for g in random_graphs:
            if g.n > 18:
                continue
            assert exact_optimum_bb(g, k).size == brute_force_max_disjoint(g, k)

    def test_paper_graph(self, paper_graph):
        result = exact_optimum_bb(paper_graph, 3)
        assert result.size == 3
        assert is_maximal(paper_graph, 3, result.cliques)

    def test_planted(self):
        g, planted = planted_clique_packing(6, 3, noise_edges=20, seed=4)
        assert exact_optimum_bb(g, 3).size >= len(planted)

    def test_ring_of_cliques(self):
        g = ring_of_cliques(7, 3)
        assert exact_optimum_bb(g, 3).size == 7

    @pytest.mark.parametrize("seed", range(4))
    def test_medium_random(self, seed):
        g = erdos_renyi_gnp(22, 0.3, seed=seed)
        assert exact_optimum_bb(g, 3).size == exact_optimum(g, 3).size


class TestBudgets:
    def test_time_budget(self):
        # Small-world graphs with heavily overlapping triangles are the
        # adversarial case for the capacity bound.
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(300, 10, 0.1, seed=1)
        with pytest.raises(OutOfTimeError):
            exact_optimum_bb(g, 3, time_budget=0.05)

    def test_clique_budget(self, paper_graph):
        with pytest.raises(OutOfMemoryError):
            exact_optimum_bb(paper_graph, 3, max_cliques=2)

    def test_invalid_k(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            exact_optimum_bb(paper_graph, 1)

    def test_stats(self, paper_graph):
        result = exact_optimum_bb(paper_graph, 3)
        assert result.stats["cliques_stored"] == 7
        assert result.stats["nodes_expanded"] >= 1
        assert result.method == "opt-bb"
