"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "static solvers" in out
        assert "dynamic maintenance" in out

    def test_teaming_event(self):
        out = run_example("teaming_event.py")
        assert "LP packing" in out
        assert "Figure 1(b)" in out

    def test_roommate_allocation(self):
        out = run_example("roommate_allocation.py")
        assert "LP packing" in out and "perfect" in out

    def test_dynamic_social_network(self):
        out = run_example("dynamic_social_network.py")
        assert "update latency" in out

    def test_serving_matchmaker(self):
        out = run_example("serving_matchmaker.py")
        assert "matchmaker feed open" in out
        assert "live-squads=" in out
        assert "scheduler:" in out and "feed closed" in out

    def test_community_analysis(self):
        pytest.importorskip("networkx")
        out = run_example("community_analysis.py")
        assert "Theorem 2" in out

    def test_all_examples_present(self):
        found = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "teaming_event.py",
            "roommate_allocation.py",
            "dynamic_social_network.py",
            "community_analysis.py",
            "serving_matchmaker.py",
        } <= found
