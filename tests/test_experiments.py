"""Integration tests for the experiment runners (tiny configurations)."""

import pytest

from repro.bench import experiments as exp


TINY = ["FTB"]
SMALL_PAIR = ["Swallow", "Tortoise"]
KS = (3, 4)


class TestTable1:
    def test_runs_and_reports(self):
        result = exp.run_table1(names=TINY, ks=KS)
        assert result.name == "table1"
        assert "FTB" in result.text
        assert result.data["FTB"]["n"] == 115
        assert result.data["FTB"]["k3"] == 424


class TestStaticSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return exp.run_static_sweep(names=TINY, ks=KS, time_budget=20)

    def test_grid_complete(self, sweep):
        for k in KS:
            for method in exp.STATIC_METHODS:
                assert ("FTB", k, method) in sweep

    def test_heuristics_succeed(self, sweep):
        for k in KS:
            for method in ("hg", "gc", "l", "lp"):
                assert sweep[("FTB", k, method)].ok

    def test_gc_equals_lp_sizes(self, sweep):
        for k in KS:
            assert sweep[("FTB", k, "gc")].value == sweep[("FTB", k, "lp")].value

    def test_fig6_table2_table3_render(self, sweep):
        fig6 = exp.run_fig6(sweep, names=TINY, ks=KS)
        t2 = exp.run_table2(sweep, names=TINY, ks=KS)
        t3 = exp.run_table3(sweep, names=TINY, ks=KS)
        assert "Figure 6(FTB)" in fig6.text
        assert "Table II" in t2.text and "+" in t2.text or "-" in t2.text
        assert "Table III" in t3.text


class TestTable4:
    def test_error_ratio_non_negative(self):
        result = exp.run_table4(names=SMALL_PAIR, ks=(3,), time_budget=30)
        for name in SMALL_PAIR:
            cell = result.data[name][3]
            if isinstance(cell["opt"], int):
                assert cell["lp"] <= cell["opt"]


class TestSyntheticSweep:
    def test_tables5_and_6(self):
        sweep = exp.run_synthetic_sweep(
            degrees=(8,), n=120, ks=(3,), time_budget=20
        )
        t5 = exp.run_table5(sweep, degrees=(8,), ks=(3,))
        t6 = exp.run_table6(sweep, degrees=(8,), ks=(3,))
        assert "Table V" in t5.text and "Table VI" in t6.text
        assert sweep[(8, 3, "hg")].ok


class TestDynamicExperiments:
    def test_table7(self):
        result = exp.run_table7(names=TINY, ks=(3,))
        assert result.data["FTB"][3]["index_size"] >= 0

    def test_fig7_and_table8(self):
        sweep = exp.run_dynamic_sweep(names=TINY, ks=(3,), count=15)
        fig7 = exp.run_fig7(sweep, names=TINY, ks=(3,))
        t8 = exp.run_table8(sweep, names=TINY, ks=(3,))
        assert "Figure 7(FTB)" in fig7.text
        assert "Table VIII" in t8.text
        for workload in ("deletion", "insertion", "mixed"):
            cell = sweep[("FTB", 3, workload)]
            assert cell["mean_seconds"] > 0
            assert abs(cell["size"] - cell["rebuild"]) <= 5


class TestAblations:
    def test_ordering_ablation(self):
        result = exp.run_ablation_ordering(names=TINY, k=3)
        assert "HG/degree" in result.text
        assert result.data["FTB"]["lp"] >= 0

    def test_pruning_ablation(self):
        result = exp.run_ablation_pruning(names=TINY, ks=(3,))
        assert "branches pruned" in result.text


class TestCLI:
    def test_main_selected(self, capsys):
        assert exp.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_main_unknown(self, capsys):
        assert exp.main(["tableX"]) == 2
