"""Tests for the seeded random-graph generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import generators as gen


class TestErdosRenyi:
    def test_gnm_exact_counts(self):
        g = gen.erdos_renyi_gnm(30, 100, seed=1)
        assert g.n == 30 and g.m == 100

    def test_gnm_dense_regime(self):
        g = gen.erdos_renyi_gnm(10, 40, seed=2)  # > half of 45
        assert g.m == 40

    def test_gnm_full(self):
        g = gen.erdos_renyi_gnm(6, 15, seed=3)
        assert g.m == 15 and g.complement().m == 0

    def test_gnm_too_many_edges(self):
        with pytest.raises(InvalidParameterError):
            gen.erdos_renyi_gnm(4, 10)

    def test_gnm_deterministic(self):
        a = gen.erdos_renyi_gnm(20, 50, seed=7)
        b = gen.erdos_renyi_gnm(20, 50, seed=7)
        assert a == b

    def test_gnp_extremes(self):
        assert gen.erdos_renyi_gnp(10, 0.0, seed=0).m == 0
        assert gen.erdos_renyi_gnp(6, 1.0, seed=0).m == 15

    def test_gnp_expected_density(self):
        g = gen.erdos_renyi_gnp(200, 0.1, seed=5)
        expected = 0.1 * 200 * 199 / 2
        assert 0.75 * expected < g.m < 1.25 * expected

    def test_gnp_invalid_p(self):
        with pytest.raises(InvalidParameterError):
            gen.erdos_renyi_gnp(5, 1.5)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        g = gen.watts_strogatz(20, 4, 0.0, seed=1)
        assert all(g.degree(u) == 4 for u in g.nodes())
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_edge_count_preserved(self):
        for p in (0.0, 0.3, 1.0):
            g = gen.watts_strogatz(50, 6, p, seed=2)
            assert g.m == 50 * 3

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            gen.watts_strogatz(10, 3, 0.1)  # odd degree
        with pytest.raises(InvalidParameterError):
            gen.watts_strogatz(4, 4, 0.1)  # degree >= n
        with pytest.raises(InvalidParameterError):
            gen.watts_strogatz(10, 4, 2.0)  # bad p

    def test_deterministic(self):
        assert gen.watts_strogatz(40, 6, 0.4, seed=3) == gen.watts_strogatz(
            40, 6, 0.4, seed=3
        )


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = gen.barabasi_albert(100, 3, seed=1)
        assert g.m <= 3 * 97 + 3  # m_attach per arriving node
        assert g.n == 100
        assert g.m >= 3 * 90  # nearly all attachments distinct

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            gen.barabasi_albert(5, 0)
        with pytest.raises(InvalidParameterError):
            gen.barabasi_albert(5, 5)

    def test_heavy_tail(self):
        g = gen.barabasi_albert(400, 2, seed=4)
        assert g.max_degree() > 4 * np.median(g.degrees)


class TestPowerlawCluster:
    def test_basic_shape(self):
        g = gen.powerlaw_cluster(200, 4, 0.5, seed=1)
        assert g.n == 200
        assert g.m >= 4 * 150

    def test_triangle_closure_increases_cliques(self):
        from repro.cliques import count_cliques

        low = gen.powerlaw_cluster(300, 4, 0.05, seed=2)
        high = gen.powerlaw_cluster(300, 4, 0.9, seed=2)
        assert count_cliques(high, 3) > count_cliques(low, 3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            gen.powerlaw_cluster(5, 0, 0.5)
        with pytest.raises(InvalidParameterError):
            gen.powerlaw_cluster(5, 2, 1.5)


class TestPlantedStructures:
    def test_planted_partition_shape(self):
        g = gen.planted_partition(60, 6, 0.8, 0.02, seed=1)
        assert g.n == 60
        # Intra-community density dominates.
        labels = np.arange(60) % 6
        intra = sum(1 for u, v in g.edges() if labels[u] == labels[v])
        assert intra > g.m / 2

    def test_planted_partition_validation(self):
        with pytest.raises(InvalidParameterError):
            gen.planted_partition(10, 0, 0.5, 0.1)

    def test_planted_clique_packing_ground_truth(self):
        g, planted = gen.planted_clique_packing(
            5, 4, extra_nodes=3, noise_edges=15, seed=6
        )
        assert g.n == 23 and len(planted) == 5
        for clique in planted:
            assert g.is_clique(clique)
        # Noise never lands inside a planted block.
        blocks = {u: u // 4 for u in range(20)}
        for u, v in g.edges():
            if u < 20 and v < 20 and blocks[u] == blocks[v]:
                assert frozenset({u, v}) <= planted[blocks[u]]

    def test_ring_of_cliques(self):
        g = gen.ring_of_cliques(4, 3)
        assert g.n == 12
        assert g.m == 4 * 3 + 4  # cliques + bridges
        for c in range(4):
            assert g.is_clique(range(c * 3, (c + 1) * 3))

    def test_complete_graph(self):
        g = gen.complete_graph(5)
        assert g.m == 10 and g.is_clique(range(5))
