"""Unit tests for the static Graph structure."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import GraphError


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0 and g.m == 0
        assert list(g.edges()) == []
        assert g.max_degree() == 0

    def test_isolated_nodes(self):
        g = Graph(5)
        assert g.n == 5 and g.m == 0
        assert all(g.degree(u) == 0 for u in g.nodes())

    def test_basic_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.m == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert g.neighbors(1) == {0, 2}

    def test_duplicate_edges_merged(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 3)])
        with pytest.raises(GraphError):
            Graph(3, [(-1, 0)])

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_from_edges_infers_n(self):
        g = Graph.from_edges([(0, 5), (2, 3)])
        assert g.n == 6 and g.m == 2

    def test_from_edges_explicit_n(self):
        g = Graph.from_edges([(0, 1)], n=10)
        assert g.n == 10


class TestAccessors:
    def test_degrees_array(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees.tolist() == [3, 1, 1, 1]
        assert g.max_degree() == 3

    def test_edges_each_once_canonical(self, paper_graph):
        edges = list(paper_graph.edges())
        assert len(edges) == paper_graph.m == 15
        assert len(set(edges)) == 15
        assert all(u < v for u, v in edges)

    def test_has_edge_out_of_range_is_false(self):
        g = Graph(3, [(0, 1)])
        assert not g.has_edge(0, 99)
        assert not g.has_edge(-1, 0)

    def test_contains_and_len(self):
        g = Graph(3)
        assert 2 in g and 3 not in g
        assert len(g) == 3

    def test_equality(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(0, 2)])
        assert a == b and a != c
        assert a != "not a graph" or True  # NotImplemented path exercised

    def test_repr(self):
        assert repr(Graph(2, [(0, 1)])) == "Graph(n=2, m=1)"


class TestIsClique:
    def test_clique_detection(self, paper_graph):
        assert paper_graph.is_clique([0, 2, 5])       # C1 = (v1, v3, v6)
        assert not paper_graph.is_clique([0, 1, 2])

    def test_duplicates_are_not_cliques(self, triangle_pair):
        assert not triangle_pair.is_clique([0, 0, 1])

    def test_single_node_is_clique(self, triangle_pair):
        assert triangle_pair.is_clique([3])


class TestDerived:
    def test_subgraph_relabels(self, paper_graph):
        sub, mapping = paper_graph.subgraph_with_mapping([2, 4, 5])  # v3, v5, v6
        assert sub.n == 3 and sub.m == 3  # triangle C2
        assert mapping == [2, 4, 5]

    def test_subgraph_empty(self, paper_graph):
        assert paper_graph.subgraph([]).n == 0

    def test_complement_of_triangle(self):
        g = Graph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.complement().m == 0

    def test_complement_roundtrip(self, random_graphs):
        for g in random_graphs:
            cc = g.complement().complement()
            assert cc == g

    def test_remove_nodes_keeps_ids(self, triangle_pair):
        g = triangle_pair.remove_nodes([0])
        assert g.n == 6
        assert g.degree(0) == 0
        assert g.has_edge(3, 4)
        assert not g.has_edge(0, 1)

    def test_remove_edges(self, triangle_pair):
        g = triangle_pair.remove_edges([(1, 0), (3, 4)])
        assert g.m == 4
        assert not g.has_edge(0, 1) and not g.has_edge(3, 4)

    def test_add_edges(self, triangle_pair):
        g = triangle_pair.add_edges([(0, 3), (0, 3)])
        assert g.m == 7 and g.has_edge(0, 3)

    def test_dynamic_roundtrip(self, paper_graph):
        from repro.graph.dynamic import DynamicGraph

        dyn = DynamicGraph.from_graph(paper_graph)
        assert Graph.from_dynamic(dyn) == paper_graph


class TestCSRCache:
    def test_csr_lazy_and_consistent(self, paper_graph):
        csr = paper_graph.csr()
        assert csr is paper_graph.csr()  # cached
        assert csr.n == paper_graph.n and csr.m == paper_graph.m
        for u in paper_graph.nodes():
            assert set(csr.row(u).tolist()) == paper_graph.neighbors(u)
            assert np.all(np.diff(csr.row(u)) > 0)
