"""Hash-randomization invariance: the runtime half of the determinism
rules (PR 10 tentpole, mirroring PR 7's tracked-locks validation).

``PYTHONHASHSEED`` only takes effect at interpreter startup, so these
tests shell out: the same pinned workload runs in two subprocesses under
two distinct seeds and every order-bearing output — solutions, stats,
mid-run checkpoint JSON bytes — must agree exactly. The static
``iterorder``/``rngflow``/``envdep`` rules claim this invariance; this
suite is what keeps that claim honest.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

SOLVE_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro import Session
from repro.graph.generators import erdos_renyi_gnm, powerlaw_cluster
from repro.jsonsafe import json_safe

graph = powerlaw_cluster(120, 5, 0.5, seed=3)
session = Session(graph)
lp = session.solve(3, "lp")

small = erdos_renyi_gnm(36, 120, seed=9)
bb = Session(small).solve(3, "opt-bb")

task = session.task(3, "lp")
task.step(max_work=4)
payload = {{
    "lp_solution": lp.sorted_cliques(),
    "lp_stats": json_safe(dict(lp.stats)),
    "bb_solution": bb.sorted_cliques(),
    "bb_stats": json_safe(dict(bb.stats)),
    "checkpoint": json_safe(task.checkpoint()),
}}
print(json.dumps(payload, sort_keys=True, separators=(",", ":")))
"""


def _run_under_seed(script: str, seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=ROOT,
        env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
class TestHashRandomizationInvariance:
    def test_pinned_solves_identical_under_two_seeds(self):
        script = SOLVE_SCRIPT.format(src=str(ROOT / "src"))
        out_a = _run_under_seed(script, "101")
        out_b = _run_under_seed(script, "202")
        # Byte-identical canonical JSON: solutions, stats AND the
        # checkpoint restore payload.
        assert out_a == out_b
        payload = json.loads(out_a)
        assert payload["lp_solution"], "pinned lp solve found no cliques"
        assert payload["bb_solution"], "pinned opt-bb solve found no cliques"
        assert payload["checkpoint"]

    def test_digest_tool_is_seed_invariant(self):
        cmd = [sys.executable, str(ROOT / "tools" / "determinism_digest.py"), "solve"]
        outputs = {}
        for seed in ("0", "424242"):
            proc = subprocess.run(
                cmd,
                capture_output=True,
                text=True,
                timeout=600,
                cwd=ROOT,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            outputs[seed] = proc.stdout
        assert outputs["0"] == outputs["424242"]
        assert "combined " in outputs["0"]
