"""Tests for k-uniform hypergraphs and the Theorem 1 reduction."""

import pytest

from repro.errors import InvalidParameterError
from repro.hypergraph import KUniformHypergraph, random_exact_cover_instance
from repro import find_disjoint_cliques


class TestConstruction:
    def test_valid(self):
        h = KUniformHypergraph.from_edges(6, 3, [(0, 1, 2), (3, 4, 5)])
        assert h.n == 6 and h.k == 3 and len(h.edges) == 2

    def test_rejects_wrong_size(self):
        with pytest.raises(InvalidParameterError):
            KUniformHypergraph.from_edges(6, 3, [(0, 1)])

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(InvalidParameterError):
            KUniformHypergraph.from_edges(6, 3, [(0, 0, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            KUniformHypergraph.from_edges(3, 3, [(0, 1, 5)])

    def test_rejects_small_k(self):
        with pytest.raises(InvalidParameterError):
            KUniformHypergraph.from_edges(3, 1, [(0,)])


class TestReduction:
    def test_each_hyperedge_becomes_clique(self):
        h = KUniformHypergraph.from_edges(6, 3, [(0, 1, 2), (2, 3, 4)])
        g = h.to_graph()
        assert g.is_clique([0, 1, 2]) and g.is_clique([2, 3, 4])
        assert g.m == 6  # two triangles sharing node 2

    def test_exact_cover_maps_to_full_packing(self):
        h = random_exact_cover_instance(groups=4, k=3, extra_edges=6, seed=5)
        assert h.has_exact_cover()
        g = h.to_graph()
        result = find_disjoint_cliques(g, 3, method="opt")
        # The reduction direction used in Theorem 1: a cover of all n
        # nodes exists, so the optimum covers all nodes with n/k cliques.
        assert result.size == h.n // 3

    def test_no_cover_when_indivisible(self):
        h = KUniformHypergraph.from_edges(4, 3, [(0, 1, 2)])
        assert not h.has_exact_cover()
        assert h.exact_cover() is None


class TestExactCoverSolver:
    def test_planted_cover_found(self):
        h = random_exact_cover_instance(groups=5, k=4, extra_edges=10, seed=2)
        cover = h.exact_cover()
        assert cover is not None
        covered = [u for edge in cover for u in edge]
        assert sorted(covered) == list(range(h.n))

    def test_cover_requires_distractor_avoidance(self):
        # Only one valid cover exists; the distractor (1,2,3) must be skipped.
        h = KUniformHypergraph.from_edges(
            6, 3, [(0, 1, 2), (3, 4, 5), (1, 2, 3)]
        )
        cover = h.exact_cover()
        assert cover is not None and len(cover) == 2

    def test_unsatisfiable(self):
        h = KUniformHypergraph.from_edges(6, 3, [(0, 1, 2), (1, 2, 3)])
        assert h.exact_cover() is None

    def test_max_matching_size(self):
        h = KUniformHypergraph.from_edges(
            9, 3, [(0, 1, 2), (2, 3, 4), (4, 5, 6), (6, 7, 8)]
        )
        assert h.max_matching_size() == 2
