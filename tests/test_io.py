"""Tests for edge-list I/O."""

import gzip

import pytest

from repro import Graph
from repro.errors import GraphError
from repro.graph import io


class TestParse:
    def test_parse_simple(self):
        g = io.parse_edge_list("0 1\n1 2\n")
        assert g.n == 3 and g.m == 2

    def test_comments_and_blanks(self):
        text = "% a KONECT header\n# hash comment\n\n0 1\n\n2 3\n"
        g = io.parse_edge_list(text)
        assert g.m == 2

    def test_extra_columns_ignored(self):
        g = io.parse_edge_list("0 1 5.0 1234567\n1 2 0.5\n")
        assert g.m == 2

    def test_commas_accepted(self):
        g = io.parse_edge_list("0,1\n1,2\n")
        assert g.m == 2

    def test_self_loops_dropped(self):
        g = io.parse_edge_list("0 0\n0 1\n")
        assert g.m == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError, match="line 1"):
            io.parse_edge_list("justonefield\n")

    def test_empty_input(self):
        assert io.parse_edge_list("").n == 0


class TestFiles:
    def test_roundtrip(self, tmp_path, paper_graph):
        path = tmp_path / "g.edges"
        io.write_edge_list(paper_graph, path, header="paper example")
        loaded, labels = io.read_edge_list(path)
        assert loaded.m == paper_graph.m and loaded.n == paper_graph.n
        # Relabelled graph is isomorphic via the label map.
        mapping = {int(lbl): new for lbl, new in labels.items()}
        for u, v in paper_graph.edges():
            assert loaded.has_edge(mapping[u], mapping[v])

    def test_read_string_labels(self, tmp_path):
        path = tmp_path / "named.edges"
        path.write_text("alice bob\nbob carol\ncarol alice\n")
        g, labels = io.read_edge_list(path)
        assert g.n == 3 and g.m == 3
        assert set(labels) == {"alice", "bob", "carol"}
        assert g.is_clique(range(3))

    def test_read_gzip(self, tmp_path):
        path = tmp_path / "g.edges.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("0 1\n1 2\n")
        g, _ = io.read_edge_list(path)
        assert g.m == 2

    def test_duplicate_and_loop_handling(self, tmp_path):
        path = tmp_path / "dirty.edges"
        path.write_text("0 1\n1 0\n0 0\n0 1\n")
        g, _ = io.read_edge_list(path)
        assert g.m == 1

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "h.edges"
        io.write_edge_list(Graph(2, [(0, 1)]), path, header="line1\nline2")
        lines = path.read_text().splitlines()
        assert lines[0] == "% line1" and lines[1] == "% line2"
        assert lines[2] == "0 1"
