"""Tests for k-core decomposition and clique-preserving pruning."""

import pytest

from repro import Graph, find_disjoint_cliques
from repro.cliques import list_cliques
from repro.graph.generators import complete_graph, erdos_renyi_gnp, powerlaw_cluster
from repro.graph.kcore import core_numbers, kcore_nodes, prune_for_cliques


class TestCoreNumbers:
    def test_complete_graph(self):
        assert core_numbers(complete_graph(6)).tolist() == [5] * 6

    def test_tree_has_core_one(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert core_numbers(g).tolist() == [1, 1, 1, 1, 1]

    def test_isolated_nodes_core_zero(self):
        g = Graph(3, [(0, 1)])
        assert core_numbers(g)[2] == 0

    def test_empty(self):
        assert core_numbers(Graph(0)).tolist() == []

    def test_against_networkx(self, random_graphs):
        nx = pytest.importorskip("networkx")
        for g in random_graphs:
            nxg = nx.Graph(list(g.edges()))
            nxg.add_nodes_from(range(g.n))
            expected = nx.core_number(nxg)
            got = core_numbers(g)
            assert all(got[u] == expected[u] for u in range(g.n))

    def test_kcore_nodes_monotone(self, random_graphs):
        for g in random_graphs:
            prev = set(range(g.n))
            for c in range(1, 5):
                current = set(kcore_nodes(g, c))
                assert current <= prev
                prev = current


class TestPruneForCliques:
    @pytest.mark.parametrize("k", [3, 4])
    def test_cliques_preserved_exactly(self, random_graphs, k):
        for g in random_graphs:
            pruned, mask = prune_for_cliques(g, k)
            assert {frozenset(c) for c in list_cliques(g, k)} == {
                frozenset(c) for c in list_cliques(pruned, k)
            }
            # Every surviving edge touches only core nodes.
            for u, v in pruned.edges():
                assert mask[u] and mask[v]

    @pytest.mark.parametrize("k", [3, 4])
    def test_solution_unchanged_under_pruning(self, k):
        # Node scores are clique-derived, so the GC/LP solution on the
        # pruned graph is identical (ids are preserved).
        for seed in range(4):
            g = erdos_renyi_gnp(30, 0.25, seed=seed)
            pruned, _ = prune_for_cliques(g, k)
            full = find_disjoint_cliques(g, k, method="lp").sorted_cliques()
            reduced = find_disjoint_cliques(pruned, k, method="lp").sorted_cliques()
            assert full == reduced

    def test_pruning_shrinks_sparse_graphs(self):
        # A BA tree-like graph has no 3-core at all: pruning for k=4
        # wipes it (and indeed it has no 4-cliques).
        from repro.graph.generators import barabasi_albert

        g = barabasi_albert(500, 2, seed=2)
        pruned, mask = prune_for_cliques(g, 4)
        assert pruned.m < g.m
        assert list_cliques(g, 4) == []

    def test_pruning_partial_on_mixed_graph(self):
        # Dense planted core + sparse periphery: the core survives, the
        # periphery is stripped.
        from repro.graph.generators import complete_graph

        core = complete_graph(6)
        edges = list(core.edges()) + [(5, 6), (6, 7), (7, 8)]
        g = Graph(9, edges)
        pruned, mask = prune_for_cliques(g, 4)
        assert pruned.m == core.m
        assert mask.sum() == 6

    def test_prune_keeps_node_universe(self, paper_graph):
        pruned, mask = prune_for_cliques(paper_graph, 3)
        assert pruned.n == paper_graph.n
        assert mask.sum() <= paper_graph.n
