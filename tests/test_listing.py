"""Tests for k-clique listing against brute force and networkx oracles."""

import pytest

from repro import Graph
from repro.cliques import (
    cliques_through_edge,
    cliques_through_node,
    count_cliques,
    iter_cliques,
    iter_cliques_in_nodes,
    list_cliques,
)
from repro.errors import InvalidParameterError
from repro.graph.generators import complete_graph
from tests.conftest import PAPER_TRIANGLES, brute_force_cliques


def canon(cliques) -> set[frozenset]:
    return {frozenset(c) for c in cliques}


class TestPaperExample:
    def test_seven_triangles(self, paper_graph):
        found = canon(iter_cliques(paper_graph, 3))
        assert found == set(PAPER_TRIANGLES)

    def test_counts_match(self, paper_graph):
        assert count_cliques(paper_graph, 3) == 7
        assert count_cliques(paper_graph, 2) == 15
        assert count_cliques(paper_graph, 1) == 9
        assert count_cliques(paper_graph, 4) == 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_random_graphs(self, random_graphs, k):
        for g in random_graphs:
            expected = brute_force_cliques(g, k)
            for order in ("id", "degree", "degeneracy"):
                assert canon(iter_cliques(g, k, order)) == expected
                assert count_cliques(g, k, order) == len(expected)

    def test_no_duplicates(self, random_graphs):
        for g in random_graphs:
            listed = list_cliques(g, 3)
            assert len(listed) == len(canon(listed))


class TestSpecialCases:
    def test_complete_graph_counts(self):
        from math import comb

        g = complete_graph(8)
        for k in range(1, 9):
            assert count_cliques(g, k) == comb(8, k)

    def test_k1_yields_nodes(self, triangle_pair):
        assert canon(iter_cliques(triangle_pair, 1)) == {
            frozenset((u,)) for u in range(6)
        }

    def test_k2_yields_edges(self, paper_graph):
        assert canon(iter_cliques(paper_graph, 2)) == {
            frozenset(e) for e in paper_graph.edges()
        }

    def test_k_larger_than_n(self, triangle_pair):
        assert list_cliques(triangle_pair, 7) == []

    def test_invalid_k(self, triangle_pair):
        with pytest.raises(InvalidParameterError):
            list_cliques(triangle_pair, 0)
        with pytest.raises(InvalidParameterError):
            count_cliques(triangle_pair, -1)

    def test_empty_graph(self):
        assert list_cliques(Graph(0), 3) == []
        assert count_cliques(Graph(0), 3) == 0


class TestLocalEnumeration:
    def test_through_node(self, paper_graph):
        through_v6 = canon(cliques_through_node(paper_graph, 5, 3))
        expected = {c for c in PAPER_TRIANGLES if 5 in c}
        assert through_v6 == expected
        assert len(expected) == 3  # s_n(v6) = 3 per Example 3

    def test_through_edge(self, paper_graph):
        through = canon(cliques_through_edge(paper_graph, 4, 5, 3))  # (v5, v6)
        assert through == {c for c in PAPER_TRIANGLES if {4, 5} <= c}

    def test_through_missing_edge(self, paper_graph):
        assert list(cliques_through_edge(paper_graph, 0, 1, 3)) == []

    def test_through_edge_k2(self, paper_graph):
        assert canon(cliques_through_edge(paper_graph, 0, 2, 2)) == {
            frozenset((0, 2))
        }

    def test_in_nodes(self, paper_graph):
        inside = canon(iter_cliques_in_nodes(paper_graph, [4, 5, 7, 2], 3))
        assert inside == {frozenset((2, 4, 5)), frozenset((4, 5, 7))}

    def test_against_networkx(self, random_graphs):
        nx = pytest.importorskip("networkx")
        for g in random_graphs:
            nxg = nx.Graph(list(g.edges()))
            nxg.add_nodes_from(range(g.n))
            for k in (3, 4):
                expected = {
                    frozenset(c)
                    for clique in nx.find_cliques(nxg)
                    for c in __import__("itertools").combinations(clique, k)
                }
                assert canon(iter_cliques(g, k)) == expected
