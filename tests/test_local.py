"""Tests for dynamic-local clique enumeration (must match static listing)."""

import pytest

from repro.cliques import listing as static_listing
from repro.dynamic import local
from repro.graph.dynamic import DynamicGraph


def canon(it):
    return {frozenset(c) for c in it}


class TestMatchesStaticListing:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_within_full_node_set(self, random_graphs, k):
        for g in random_graphs:
            expected = canon(static_listing.iter_cliques(g, k))
            got = canon(local.iter_cliques_within(g, range(g.n), k))
            assert got == expected

    @pytest.mark.parametrize("k", [3, 4])
    def test_through_node(self, random_graphs, k):
        for g in random_graphs:
            for u in range(0, g.n, 3):
                expected = canon(static_listing.cliques_through_node(g, u, k))
                got = canon(local.cliques_through_node(g, u, k))
                assert got == expected

    @pytest.mark.parametrize("k", [3, 4])
    def test_through_edge(self, random_graphs, k):
        for g in random_graphs:
            for u, v in list(g.edges())[:10]:
                expected = canon(static_listing.cliques_through_edge(g, u, v, k))
                got = canon(local.cliques_through_edge(g, u, v, k))
                assert got == expected


class TestOnDynamicGraph:
    def test_within_subset(self, paper_graph):
        dyn = DynamicGraph.from_graph(paper_graph)
        got = canon(local.iter_cliques_within(dyn, [2, 4, 5, 7], 3))
        assert got == {frozenset({2, 4, 5}), frozenset({4, 5, 7})}

    def test_reflects_mutation(self, paper_graph):
        dyn = DynamicGraph.from_graph(paper_graph)
        before = canon(local.cliques_through_node(dyn, 5, 3))
        dyn.delete_edge(4, 5)  # remove (v5, v6)
        after = canon(local.cliques_through_node(dyn, 5, 3))
        assert frozenset({2, 4, 5}) in before
        assert frozenset({2, 4, 5}) not in after

    def test_has_clique_within(self, triangle_pair):
        dyn = DynamicGraph.from_graph(triangle_pair)
        assert local.has_clique_within(dyn, [0, 1, 2], 3)
        assert not local.has_clique_within(dyn, [0, 1, 3], 3)


class TestEdgeCases:
    def test_k1(self, triangle_pair):
        assert canon(local.iter_cliques_within(triangle_pair, [0, 5], 1)) == {
            frozenset({0}),
            frozenset({5}),
        }

    def test_k0(self, triangle_pair):
        assert list(local.iter_cliques_within(triangle_pair, [0, 1], 0)) == []

    def test_through_missing_edge(self, triangle_pair):
        assert list(local.cliques_through_edge(triangle_pair, 0, 3, 3)) == []

    def test_through_edge_k2(self, triangle_pair):
        got = list(local.cliques_through_edge(triangle_pair, 0, 1, 2))
        assert got == [frozenset({0, 1})]

    def test_through_node_low_degree(self, triangle_pair):
        assert list(local.cliques_through_node(triangle_pair, 0, 4)) == []
