"""Tests for (1,2)-swap MIS local search."""

import pytest

from repro import Graph
from repro.graph.generators import erdos_renyi_gnp
from repro.mis import exact_mis, greedy_mis, is_independent_set
from repro.mis.local_search import one_two_swap


class TestOneTwoSwap:
    def test_stays_independent_and_maximal(self, random_graphs):
        for g in random_graphs:
            improved = one_two_swap(g)
            assert is_independent_set(g, improved)
            improved_set = set(improved)
            for u in g.nodes():
                if u not in improved_set:
                    assert g.neighbors(u) & improved_set

    def test_never_worse_than_greedy(self, random_graphs):
        for g in random_graphs:
            greedy = greedy_mis(g)
            improved = one_two_swap(g, initial=greedy)
            assert len(improved) >= len(greedy)

    def test_bounded_by_optimum(self, random_graphs):
        for g in random_graphs:
            if g.n > 18:
                continue
            assert len(one_two_swap(g)) <= len(exact_mis(g))

    def test_swap_fires_on_known_instance(self):
        # Star-of-paths: greedy from the hub is suboptimal; a (1,2)-swap
        # replaces the hub with two leaves.
        g = Graph(5, [(0, 1), (0, 2), (1, 3), (2, 4)])
        improved = one_two_swap(g, initial=[0, 3, 4])
        assert len(improved) >= 3
        assert is_independent_set(g, improved)

    def test_plain_insertion_keeps_maximality(self):
        g = Graph(4, [(0, 1)])
        improved = one_two_swap(g, initial=[0])
        assert set(improved) >= {2, 3}

    def test_empty_graph(self):
        assert one_two_swap(Graph(0)) == []

    def test_on_clique_graph_instances(self):
        # Quality reference on the structure OPT actually solves.
        from repro.cliques.clique_graph import build_clique_graph

        g = erdos_renyi_gnp(16, 0.4, seed=3)
        cg = build_clique_graph(g, 3)
        if cg.num_cliques:
            improved = one_two_swap(cg.graph)
            assert len(improved) <= len(exact_mis(cg.graph))
