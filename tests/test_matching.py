"""Tests for blossom maximum matching and greedy set packing."""

import pytest

from repro import Graph
from repro.graph.generators import complete_graph, erdos_renyi_gnp
from repro.matching import (
    greedy_set_packing,
    is_matching,
    local_search_packing,
    matching_size,
    maximum_matching,
)


class TestBlossom:
    def test_single_edge(self):
        assert maximum_matching(Graph(2, [(0, 1)])) == [(0, 1)]

    def test_path(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert matching_size(g) == 2

    def test_odd_cycle_needs_blossom(self):
        # C5 plus a pendant forces an augmenting path through a blossom.
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 5)])
        assert matching_size(g) == 3

    def test_petersen_graph(self):
        nx = pytest.importorskip("networkx")
        petersen = nx.petersen_graph()
        g = Graph(10, list(petersen.edges()))
        assert matching_size(g) == 5  # perfect matching

    def test_against_networkx_random(self):
        nx = pytest.importorskip("networkx")
        for seed in range(8):
            g = erdos_renyi_gnp(16, 0.25, seed=seed)
            nxg = nx.Graph(list(g.edges()))
            nxg.add_nodes_from(range(g.n))
            expected = len(nx.max_weight_matching(nxg, maxcardinality=True))
            matching = maximum_matching(g)
            assert is_matching(g, matching)
            assert len(matching) == expected

    def test_complete_graph(self):
        assert matching_size(complete_graph(9)) == 4

    def test_empty(self):
        assert maximum_matching(Graph(0)) == []
        assert maximum_matching(Graph(5)) == []


class TestIsMatching:
    def test_rejects_shared_node(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert not is_matching(g, [(0, 1), (1, 2)])

    def test_rejects_missing_edge(self):
        g = Graph(3, [(0, 1)])
        assert not is_matching(g, [(0, 2)])

    def test_rejects_self_loop(self):
        g = Graph(3, [(0, 1)])
        assert not is_matching(g, [(1, 1)])


class TestSetPacking:
    def test_first_fit(self):
        cliques = [(0, 1, 2), (2, 3, 4), (5, 6, 7)]
        result = greedy_set_packing(cliques, 3)
        assert result.size == 2

    def test_keyed_order_changes_result(self):
        cliques = [(0, 1, 2), (1, 3, 4), (2, 5, 6)]
        worst_first = greedy_set_packing(cliques, 3)
        assert worst_first.size == 1  # (0,1,2) blocks the other two
        best = greedy_set_packing(cliques, 3, key=lambda c: -c[0])
        assert best.size == 2

    def test_local_search_improves(self):
        # Choosing the hub clique first is suboptimal; a 1-to-2 swap fixes it.
        cliques = [(0, 1, 2), (1, 3, 4), (2, 5, 6)]
        improved = local_search_packing(cliques, 3, rounds=3)
        assert improved.size == 2

    def test_local_search_no_improvement_possible(self):
        cliques = [(0, 1, 2)]
        assert local_search_packing(cliques, 3).size == 1
