"""Tests for the MIS substrate: exact B&B, reductions, greedy."""

import itertools

import pytest

from repro import Graph
from repro.errors import OutOfTimeError
from repro.graph.generators import complete_graph, erdos_renyi_gnp
from repro.mis import exact_mis, greedy_mis, is_independent_set, max_clique, reduce_mis


def brute_mis_size(graph: Graph) -> int:
    best = 0
    for r in range(graph.n, 0, -1):
        if r <= best:
            break
        for combo in itertools.combinations(range(graph.n), r):
            combo_set = set(combo)
            if all(not (graph.neighbors(u) & combo_set) for u in combo):
                best = max(best, r)
                break
    return best


class TestExact:
    def test_against_brute_force(self, random_graphs):
        for g in random_graphs:
            if g.n > 18:
                continue
            solution = exact_mis(g)
            assert is_independent_set(g, solution)
            assert len(solution) == brute_mis_size(g)

    def test_empty_and_edgeless(self):
        assert exact_mis(Graph(0)) == []
        assert exact_mis(Graph(4)) == [0, 1, 2, 3]

    def test_complete_graph(self):
        assert len(exact_mis(complete_graph(7))) == 1

    def test_against_networkx_complement_clique(self, random_graphs):
        nx = pytest.importorskip("networkx")
        for g in random_graphs:
            nxg = nx.Graph(list(g.edges()))
            nxg.add_nodes_from(range(g.n))
            expected, _ = nx.max_weight_clique(nx.complement(nxg), weight=None)
            assert len(exact_mis(g)) == len(expected)

    def test_time_budget(self):
        g = erdos_renyi_gnp(120, 0.5, seed=3)
        with pytest.raises(OutOfTimeError):
            exact_mis(g, time_budget=1e-4)


class TestMaxClique:
    def test_triangle(self):
        g = Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        assert max_clique(g) == [0, 1, 2]

    def test_against_networkx(self, random_graphs):
        nx = pytest.importorskip("networkx")
        for g in random_graphs:
            nxg = nx.Graph(list(g.edges()))
            nxg.add_nodes_from(range(g.n))
            expected, _ = nx.max_weight_clique(nxg, weight=None)
            found = max_clique(g)
            assert len(found) == len(expected)
            assert g.is_clique(found)


class TestReductions:
    def test_isolated_nodes_forced(self):
        g = Graph(3, [(0, 1)])
        kernel = reduce_mis(g)
        assert 2 in kernel.forced

    def test_pendant_rule(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])  # path: MIS = {0, 2}
        kernel = reduce_mis(g)
        assert kernel.kernel.n == 0  # fully reduced
        assert len(kernel.forced) == 2

    def test_reduction_preserves_optimum(self, random_graphs):
        for g in random_graphs:
            if g.n > 18:
                continue
            kernel = reduce_mis(g)
            kernel_opt = exact_mis(kernel.kernel)
            lifted = kernel.lift(kernel_opt)
            assert is_independent_set(g, lifted)
            assert len(lifted) == brute_mis_size(g)


class TestGreedy:
    def test_greedy_is_independent_and_maximal(self, random_graphs):
        for g in random_graphs:
            chosen = greedy_mis(g)
            assert is_independent_set(g, chosen)
            chosen_set = set(chosen)
            for u in g.nodes():
                if u not in chosen_set:
                    assert g.neighbors(u) & chosen_set, "greedy MIS not maximal"

    def test_is_independent_set_rejects(self):
        g = Graph(3, [(0, 1)])
        assert not is_independent_set(g, [0, 1])
        assert not is_independent_set(g, [0, 0])
        assert is_independent_set(g, [0, 2])
