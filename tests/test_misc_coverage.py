"""Targeted tests for smaller paths not covered elsewhere."""

import pytest

from repro.bench import experiments as exp
from repro.bench.harness import CellOutcome
from repro.graph import datasets, io


class TestExperimentRendering:
    def test_fig6_includes_chart(self):
        sweep = {
            ("FTB", 3, m): CellOutcome(value=10, seconds=0.01)
            for m in exp.STATIC_METHODS
        }
        result = exp.run_fig6(sweep, names=["FTB"], ks=(3,))
        assert "log scale" in result.text

    def test_fig7_handles_missing_cells(self):
        sweep = {
            ("FTB", 3, "deletion"): {
                "mean_seconds": 1e-5, "size": 5, "rebuild": 5, "count": 10,
            }
        }
        result = exp.run_fig7(sweep, names=["FTB"], ks=(3, 4))
        assert "-" in result.text  # k=4 cells absent
        assert "10.0us" in result.text

    def test_table2_without_hg_reference(self):
        sweep = {("FTB", 3, "lp"): CellOutcome(value=7, seconds=0.01)}
        result = exp.run_table2(sweep, names=["FTB"], ks=(3,))
        assert "7" in result.text  # absolute size when HG missing


class TestCellOutcome:
    def test_extra_dict(self):
        cell = CellOutcome(value=3)
        cell.extra["size"] = 3
        assert cell.ok and cell.extra["size"] == 3

    def test_display_with_marker(self):
        assert CellOutcome(marker="OOM").display() == "OOM"


class TestIterEdgeLines:
    def test_direct_iteration(self):
        pairs = list(io.iter_edge_lines(["1 2", "% skip", "3 4 weight"]))
        assert pairs == [("1", "2"), ("3", "4")]


class TestDavisProjection:
    def test_davis_classic(self):
        pytest.importorskip("networkx")
        g = datasets.networkx_classic("davis")
        assert g.n == 18  # women projection
        assert g.m > 0


class TestResultStats:
    def test_solver_stats_round_trip(self, paper_graph):
        from repro import find_disjoint_cliques

        result = find_disjoint_cliques(paper_graph, 3, method="lp")
        assert result.stats["cliques_taken"] == result.size
        assert result.stats["heap_pushes"] >= result.stats["cliques_taken"]
