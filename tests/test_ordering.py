"""Tests for total node orderings and degeneracy computation."""

import numpy as np
import pytest

from repro import Graph
from repro.errors import InvalidParameterError
from repro.graph import ordering
from repro.graph.generators import erdos_renyi_gnp, complete_graph


def is_permutation(rank: np.ndarray, n: int) -> bool:
    return sorted(rank.tolist()) == list(range(n))


class TestBasicOrderings:
    def test_by_id(self, paper_graph):
        assert ordering.by_id(paper_graph).tolist() == list(range(9))

    def test_by_degree_is_permutation(self, paper_graph):
        rank = ordering.by_degree(paper_graph)
        assert is_permutation(rank, 9)

    def test_by_degree_respects_degree(self, random_graphs):
        for g in random_graphs:
            rank = ordering.by_degree(g)
            order = np.argsort(rank)
            degs = [g.degree(int(u)) for u in order]
            assert degs == sorted(degs)

    def test_by_degree_tiebreak_by_id(self):
        g = Graph(4, [(0, 1), (2, 3)])  # all degree 1
        rank = ordering.by_degree(g)
        assert rank.tolist() == [0, 1, 2, 3]

    def test_rank_from_sequence_inverse(self):
        rank = ordering.rank_from_sequence([2, 0, 1])
        assert rank.tolist() == [1, 2, 0]


class TestDegeneracy:
    def test_degeneracy_of_complete_graph(self):
        assert ordering.degeneracy(complete_graph(6)) == 5

    def test_degeneracy_of_tree(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert ordering.degeneracy(g) == 1

    def test_degeneracy_of_empty(self):
        assert ordering.degeneracy(Graph(0)) == 0
        assert ordering.degeneracy(Graph(4)) == 0

    def test_degeneracy_ordering_is_permutation(self, random_graphs):
        for g in random_graphs:
            assert is_permutation(ordering.by_degeneracy(g), g.n)

    def test_degeneracy_bounds_out_degree(self, random_graphs):
        # Out-degrees under the degeneracy ordering equal core numbers at
        # the peel point, so the max out-degree is exactly the degeneracy.
        for g in random_graphs:
            rank = ordering.by_degeneracy(g)
            d = ordering.degeneracy(g)
            for u in g.nodes():
                later = sum(1 for v in g.neighbors(u) if rank[v] > rank[u])
                assert later <= d

    def test_degeneracy_vs_networkx(self, random_graphs):
        nx = pytest.importorskip("networkx")
        for g in random_graphs:
            nxg = nx.Graph(list(g.edges()))
            nxg.add_nodes_from(range(g.n))
            expected = max(nx.core_number(nxg).values()) if g.n else 0
            assert ordering.degeneracy(g) == expected


class TestScoreOrdering:
    def test_by_score_ascending(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        rank = ordering.by_score(g, [5, 1, 7, 0])
        order = np.argsort(rank).tolist()
        assert order == [3, 1, 0, 2]

    def test_by_score_tiebreak_by_id(self):
        g = Graph(3, [(0, 1)])
        rank = ordering.by_score(g, [2, 2, 2])
        assert rank.tolist() == [0, 1, 2]

    def test_by_score_length_mismatch(self):
        g = Graph(3)
        with pytest.raises(InvalidParameterError):
            ordering.by_score(g, [1, 2])


class TestResolve:
    def test_resolve_names(self, paper_graph):
        for name in ("id", "degree", "degeneracy"):
            rank = ordering.resolve(name, paper_graph)
            assert is_permutation(rank, 9)

    def test_resolve_unknown_name(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            ordering.resolve("zorp", paper_graph)

    def test_resolve_array(self, paper_graph):
        rank = np.arange(9)[::-1].copy()
        assert ordering.resolve(rank, paper_graph).tolist() == rank.tolist()

    def test_resolve_bad_shape(self, paper_graph):
        with pytest.raises(InvalidParameterError):
            ordering.resolve(np.arange(5), paper_graph)

    def test_resolve_callable(self, paper_graph):
        rank = ordering.resolve(lambda g: np.arange(g.n), paper_graph)
        assert rank.tolist() == list(range(9))
